//! The simulated cluster: a fleet of [`SimNode`]s behind one non-blocking
//! switch (Marmot: "all nodes are connected to the same switch").
//!
//! Transfers serialise on the sender's outbound NIC and the receiver's
//! inbound NIC; the switch fabric itself is non-blocking, which matches a
//! single enterprise GigE switch at this node count.

use crate::node::{NodeSpec, SimNode};
use crate::time::SimTime;

/// A simulated cluster (homogeneous or heterogeneous).
#[derive(Debug, Clone)]
pub struct SimCluster {
    nodes: Vec<SimNode>,
    specs: Vec<NodeSpec>,
    /// `up[i]` — whether node `i` is still alive (fault injection marks
    /// crashed nodes down; a down node must not source or sink work).
    up: Vec<bool>,
    /// Membership epoch: bumped exactly once per liveness change
    /// ([`SimCluster::set_down`], and [`SimCluster::reset`] when it revives
    /// anything). Plan caches key on this — a plan computed at epoch `e`
    /// may route work to nodes that died at epoch `e + 1`.
    epoch: u64,
}

impl SimCluster {
    /// `n` identical nodes with the given spec.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn homogeneous(n: usize, spec: NodeSpec) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Self::heterogeneous(&vec![spec; n])
    }

    /// One node per spec — a heterogeneous fleet (mixed hardware
    /// generations, the environment Section IV-B's capability-proportional
    /// assignment targets).
    ///
    /// # Panics
    /// Panics on an empty spec list or an invalid spec.
    pub fn heterogeneous(specs: &[NodeSpec]) -> Self {
        assert!(!specs.is_empty(), "cluster needs at least one node");
        for s in specs {
            s.validate();
        }
        Self {
            nodes: specs.iter().map(|&s| SimNode::new(s)).collect(),
            specs: specs.to_vec(),
            up: vec![true; specs.len()],
            epoch: 0,
        }
    }

    /// Marmot-calibrated cluster of `n` nodes.
    pub fn marmot(n: usize) -> Self {
        Self::homogeneous(n, NodeSpec::marmot())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (≥1 node by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The spec shared by every node.
    ///
    /// # Panics
    /// Panics on a heterogeneous cluster — use [`SimCluster::spec_of`].
    pub fn spec(&self) -> &NodeSpec {
        assert!(
            self.specs.iter().all(|s| s == &self.specs[0]),
            "heterogeneous cluster has no single spec"
        );
        &self.specs[0]
    }

    /// Node `i`'s spec.
    pub fn spec_of(&self, i: usize) -> &NodeSpec {
        &self.specs[i]
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, i: usize) -> &mut SimNode {
        &mut self.nodes[i]
    }

    /// Read-only access to one node.
    pub fn node(&self, i: usize) -> &SimNode {
        &self.nodes[i]
    }

    /// Mark node `i` as crashed. Its timelines stop accepting work through
    /// [`SimCluster::transfer`]; the engine must stop routing tasks to it.
    /// Bumps the membership [epoch](SimCluster::epoch) if the node was up.
    pub fn set_down(&mut self, i: usize) {
        if self.up[i] {
            self.up[i] = false;
            self.epoch += 1;
        }
    }

    /// The membership epoch: how many liveness changes this cluster has
    /// seen. Any plan computed at an older epoch may reference nodes that
    /// have since died and must be revalidated before execution.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether node `i` is still alive.
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i]
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Transfer `bytes` from node `src` to node `dst`, ready at `ready`.
    /// Returns `(start, end)`. Local "transfers" (src == dst) are free —
    /// the engine models local disk I/O separately.
    ///
    /// # Panics
    /// Panics if either endpoint has been marked down.
    pub fn transfer(
        &mut self,
        src: usize,
        dst: usize,
        ready: SimTime,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        assert!(
            self.up[src] && self.up[dst],
            "transfer touches a crashed node ({src} -> {dst})"
        );
        if src == dst || bytes == 0 {
            return (ready, ready);
        }
        // A transfer runs at the slower endpoint's NIC rate.
        let rate = self.specs[src].nic_bps.min(self.specs[dst].nic_bps);
        let duration = SimTime::for_bytes(bytes, rate);
        // The transfer needs both NICs simultaneously: start when both are
        // free, then occupy both for the duration.
        let start = ready
            .max(self.nodes[src].nic_out().busy_until())
            .max(self.nodes[dst].nic_in().busy_until());
        let (_, end_out) = self.nodes[src].nic_out().reserve(start, duration);
        let (_, end_in) = self.nodes[dst].nic_in().reserve(start, duration);
        debug_assert_eq!(end_out, end_in);
        (start, end_out)
    }

    /// When the whole cluster is quiescent.
    pub fn quiescent_at(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.quiescent_at())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Reset every node to idle and alive. Reviving dead nodes is itself a
    /// membership change, so the epoch bumps once if anything was down.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.reset();
        }
        if self.up.iter().any(|&u| !u) {
            self.epoch += 1;
        }
        self.up.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimCluster {
        SimCluster::homogeneous(
            3,
            NodeSpec {
                disk_bps: 100,
                cpu_bps: 100,
                nic_bps: 100,
            },
        )
    }

    #[test]
    fn transfer_takes_bytes_over_nic_rate() {
        let mut c = tiny();
        let (s, e) = c.transfer(0, 1, SimTime::ZERO, 200);
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(e, SimTime::from_secs(2));
    }

    #[test]
    fn sender_nic_serialises_two_outgoing_transfers() {
        let mut c = tiny();
        c.transfer(0, 1, SimTime::ZERO, 100);
        let (s, e) = c.transfer(0, 2, SimTime::ZERO, 100);
        assert_eq!(s, SimTime::from_secs(1));
        assert_eq!(e, SimTime::from_secs(2));
    }

    #[test]
    fn receiver_nic_serialises_two_incoming_transfers() {
        let mut c = tiny();
        c.transfer(0, 2, SimTime::ZERO, 100);
        let (s, _) = c.transfer(1, 2, SimTime::ZERO, 100);
        assert_eq!(s, SimTime::from_secs(1));
    }

    #[test]
    fn disjoint_pairs_transfer_in_parallel() {
        let mut c = SimCluster::homogeneous(
            4,
            NodeSpec {
                disk_bps: 100,
                cpu_bps: 100,
                nic_bps: 100,
            },
        );
        let (_, e1) = c.transfer(0, 1, SimTime::ZERO, 100);
        let (_, e2) = c.transfer(2, 3, SimTime::ZERO, 100);
        // Non-blocking switch: both finish at t=1.
        assert_eq!(e1, SimTime::from_secs(1));
        assert_eq!(e2, SimTime::from_secs(1));
    }

    #[test]
    fn local_transfer_is_free() {
        let mut c = tiny();
        let (s, e) = c.transfer(1, 1, SimTime::from_secs(5), 1_000_000);
        assert_eq!(s, e);
        assert_eq!(e, SimTime::from_secs(5));
    }

    #[test]
    fn quiescence_tracks_all_nodes() {
        let mut c = tiny();
        c.node_mut(2).read_disk(SimTime::ZERO, 500);
        assert_eq!(c.quiescent_at(), SimTime::from_secs(5));
        c.reset();
        assert_eq!(c.quiescent_at(), SimTime::ZERO);
    }

    #[test]
    fn down_nodes_are_tracked_and_reset_revives() {
        let mut c = tiny();
        assert_eq!(c.alive_count(), 3);
        c.set_down(1);
        assert!(!c.is_up(1));
        assert!(c.is_up(0));
        assert_eq!(c.alive_count(), 2);
        c.reset();
        assert!(c.is_up(1));
        assert_eq!(c.alive_count(), 3);
    }

    #[test]
    fn membership_epoch_bumps_once_per_liveness_change() {
        let mut c = tiny();
        assert_eq!(c.epoch(), 0);
        c.set_down(1);
        assert_eq!(c.epoch(), 1);
        // Re-killing a dead node is not a membership change.
        c.set_down(1);
        assert_eq!(c.epoch(), 1);
        c.set_down(0);
        assert_eq!(c.epoch(), 2);
        // Reset revives two dead nodes: one membership change.
        c.reset();
        assert_eq!(c.epoch(), 3);
        // Reset with nothing down changes nothing.
        c.reset();
        assert_eq!(c.epoch(), 3);
    }

    #[test]
    #[should_panic]
    fn transfer_to_crashed_node_panics() {
        let mut c = tiny();
        c.set_down(2);
        c.transfer(0, 2, SimTime::ZERO, 100);
    }

    #[test]
    #[should_panic]
    fn empty_cluster_rejected() {
        SimCluster::homogeneous(0, NodeSpec::marmot());
    }

    #[test]
    fn heterogeneous_transfer_uses_slower_nic() {
        let fast = NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 200,
        };
        let slow = NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 50,
        };
        let mut c = SimCluster::heterogeneous(&[fast, slow]);
        let (_, end) = c.transfer(0, 1, SimTime::ZERO, 100);
        assert_eq!(end, SimTime::from_secs(2), "bounded by the 50 B/s NIC");
        assert_eq!(c.spec_of(0).nic_bps, 200);
    }

    #[test]
    #[should_panic]
    fn spec_of_heterogeneous_cluster_via_spec_panics() {
        let a = NodeSpec {
            disk_bps: 1,
            cpu_bps: 1,
            nic_bps: 1,
        };
        let b = NodeSpec {
            disk_bps: 2,
            cpu_bps: 2,
            nic_bps: 2,
        };
        let _ = SimCluster::heterogeneous(&[a, b]).spec();
    }
}
