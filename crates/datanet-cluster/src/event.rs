//! A deterministic time-ordered event queue.
//!
//! A thin wrapper over `BinaryHeap` that pops events in `(time, insertion
//! sequence)` order — two events at the same instant always pop in the
//! order they were scheduled, which keeps the whole simulation bitwise
//! reproducible.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of `(time, event)` pairs with FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper that excludes the payload from ordering (events need not be Ord).
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Reverse((time, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Pop the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn works_with_non_ord_payloads() {
        // f64 is not Ord; the queue must still order by time.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 2.5f64);
        q.push(SimTime::from_secs(1), 1.5f64);
        assert_eq!(q.pop().unwrap().1, 1.5);
    }
}
