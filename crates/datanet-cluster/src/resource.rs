//! Serially-reusable resources as busy-until timelines.
//!
//! A disk head, a NIC direction, or a dedicated core set serves one piece of
//! work at a time. [`Timeline::reserve`] implements the standard
//! resource-timeline DES pattern: work that becomes ready at `ready` starts
//! at `max(ready, busy_until)` and occupies the resource for its duration.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One serial resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    busy_until: SimTime,
    /// Total time the resource has actually worked (for utilisation stats).
    busy_time: SimTime,
}

impl Timeline {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `duration`, no earlier than `ready`.
    /// Returns `(start, end)`.
    pub fn reserve(&mut self, ready: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.busy_time += duration;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Utilisation in `[0, 1]` up to `horizon`.
    pub fn utilisation(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }

    /// Reset to idle (fresh experiment on the same node objects).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reservations_queue_up() {
        let mut t = Timeline::new();
        let (s1, e1) = t.reserve(SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!((s1, e1), (SimTime::ZERO, SimTime::from_secs(2)));
        // Ready at 1 but the resource is busy until 2.
        let (s2, e2) = t.reserve(SimTime::from_secs(1), SimTime::from_secs(3));
        assert_eq!((s2, e2), (SimTime::from_secs(2), SimTime::from_secs(5)));
        assert_eq!(t.busy_until(), SimTime::from_secs(5));
    }

    #[test]
    fn idle_gap_respected() {
        let mut t = Timeline::new();
        t.reserve(SimTime::ZERO, SimTime::from_secs(1));
        // Ready at 10, resource free since 1 → starts at 10.
        let (s, e) = t.reserve(SimTime::from_secs(10), SimTime::from_secs(1));
        assert_eq!((s, e), (SimTime::from_secs(10), SimTime::from_secs(11)));
        assert_eq!(t.busy_time(), SimTime::from_secs(2));
    }

    #[test]
    fn utilisation_accounts_only_busy_time() {
        let mut t = Timeline::new();
        t.reserve(SimTime::ZERO, SimTime::from_secs(2));
        t.reserve(SimTime::from_secs(8), SimTime::from_secs(2));
        assert!((t.utilisation(SimTime::from_secs(10)) - 0.4).abs() < 1e-12);
        assert_eq!(t.utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = Timeline::new();
        t.reserve(SimTime::ZERO, SimTime::from_secs(5));
        t.reset();
        assert_eq!(t.busy_until(), SimTime::ZERO);
        assert_eq!(t.busy_time(), SimTime::ZERO);
    }

    #[test]
    fn zero_duration_work_is_instant() {
        let mut t = Timeline::new();
        let (s, e) = t.reserve(SimTime::from_secs(3), SimTime::ZERO);
        assert_eq!(s, e);
        assert_eq!(t.busy_until(), SimTime::from_secs(3));
    }
}
