//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] scripts every failure of a run up front — node crashes at
//! fixed instants, transient slow-node windows (degraded disk/CPU, the
//! "limping node" failure mode), and permanent NIC degradation — so a
//! faulty execution is exactly as reproducible as a healthy one: the same
//! plan plus the same scheduler always yields bit-identical reports.
//!
//! Plans are either scripted explicitly (unit tests, targeted experiments)
//! or drawn from a seeded RNG ([`FaultPlan::random`]) for failure-rate
//! sweeps. The plan is pure data: the execution engine queries it and the
//! event queue carries its crash events; nothing here mutates during a run.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A transient slowdown window on one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Multiplier (> 1) applied to task durations started in the window.
    pub factor: f64,
}

/// A scripted set of failures for one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// `crash[n]` = the instant node `n` dies (fail-stop), if ever.
    crash: Vec<Option<SimTime>>,
    /// Transient slow windows per node.
    slow: Vec<Vec<SlowWindow>>,
    /// `nic[n]` = fraction of nominal NIC bandwidth node `n` actually
    /// delivers (1.0 = healthy, 0.25 = badly degraded link).
    nic: Vec<f64>,
}

impl FaultPlan {
    /// A fault-free plan for `nodes` nodes.
    pub fn none(nodes: usize) -> Self {
        Self {
            crash: vec![None; nodes],
            slow: vec![Vec::new(); nodes],
            nic: vec![1.0; nodes],
        }
    }

    /// Script a fail-stop crash of `node` at `at`. Later calls override
    /// earlier ones for the same node.
    ///
    /// # Panics
    /// Panics if `node` is outside the plan.
    pub fn crash(mut self, node: usize, at: SimTime) -> Self {
        self.crash[node] = Some(at);
        self
    }

    /// Script a transient slowdown of `node`: tasks *started* in
    /// `[from, until)` take `factor`× as long.
    ///
    /// # Panics
    /// Panics on an empty window or a factor below 1.
    pub fn slow(mut self, node: usize, from: SimTime, until: SimTime, factor: f64) -> Self {
        assert!(from < until, "empty slow window");
        assert!(
            factor.is_finite() && factor >= 1.0,
            "slowdown factor must be >= 1, got {factor}"
        );
        self.slow[node].push(SlowWindow {
            from,
            until,
            factor,
        });
        self
    }

    /// Script a permanently degraded NIC on `node`: transfers involving it
    /// run at `fraction` of nominal bandwidth.
    ///
    /// # Panics
    /// Panics unless `0 < fraction <= 1`.
    pub fn degrade_nic(mut self, node: usize, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "NIC fraction must be in (0, 1], got {fraction}"
        );
        self.nic[node] = fraction;
        self
    }

    /// A seeded random plan: each node crashes with probability
    /// `crash_rate`, at an instant uniform over `[0, horizon)`. Node 0 is
    /// never crashed so a run always retains at least one survivor.
    ///
    /// # Panics
    /// Panics if `crash_rate` is outside `[0, 1]` or `horizon` is zero.
    pub fn random(nodes: usize, seed: u64, crash_rate: f64, horizon: SimTime) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_rate),
            "crash rate must be a probability, got {crash_rate}"
        );
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        let mut plan = Self::none(nodes);
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || -> u64 {
            // SplitMix64: tiny, seedable, and good enough for scripting
            // failure times — keeps this crate free of the rand dependency.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for n in 1..nodes {
            let u = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < crash_rate {
                let at = ((next() as u128 * horizon.as_micros() as u128) >> 64) as u64;
                plan.crash[n] = Some(SimTime::from_micros(at));
            }
        }
        plan
    }

    /// Number of nodes the plan covers.
    pub fn nodes(&self) -> usize {
        self.crash.len()
    }

    /// When `node` crashes, if ever.
    pub fn crash_time(&self, node: usize) -> Option<SimTime> {
        self.crash[node]
    }

    /// Whether `node` is still up at `t` (crashing exactly at `t` counts as
    /// down — the crash event fires first).
    pub fn is_alive(&self, node: usize, t: SimTime) -> bool {
        self.crash[node].is_none_or(|c| t < c)
    }

    /// Duration multiplier for a task started on `node` at `t`:
    /// the product of every slow window covering `t` (1.0 when healthy).
    pub fn slow_factor(&self, node: usize, t: SimTime) -> f64 {
        self.slow[node]
            .iter()
            .filter(|w| w.from <= t && t < w.until)
            .map(|w| w.factor)
            .product()
    }

    /// Fraction of nominal NIC bandwidth `node` delivers.
    pub fn nic_fraction(&self, node: usize) -> f64 {
        self.nic[node]
    }

    /// All scripted crashes as `(time, node)` pairs, in time order (ties by
    /// node id) — ready to seed an event queue.
    pub fn crash_events(&self) -> Vec<(SimTime, usize)> {
        let mut ev: Vec<(SimTime, usize)> = self
            .crash
            .iter()
            .enumerate()
            .filter_map(|(n, c)| c.map(|t| (t, n)))
            .collect();
        ev.sort();
        ev
    }

    /// Number of scripted crashes.
    pub fn crash_count(&self) -> usize {
        self.crash.iter().filter(|c| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_is_inert() {
        let p = FaultPlan::none(4);
        assert_eq!(p.nodes(), 4);
        assert_eq!(p.crash_count(), 0);
        assert!(p.crash_events().is_empty());
        for n in 0..4 {
            assert!(p.is_alive(n, SimTime::from_secs(1_000)));
            assert_eq!(p.slow_factor(n, SimTime::ZERO), 1.0);
            assert_eq!(p.nic_fraction(n), 1.0);
        }
    }

    #[test]
    fn crash_boundary_is_exclusive() {
        let p = FaultPlan::none(2).crash(1, SimTime::from_secs(5));
        assert!(p.is_alive(1, SimTime::from_micros(4_999_999)));
        assert!(!p.is_alive(1, SimTime::from_secs(5)));
        assert_eq!(p.crash_time(1), Some(SimTime::from_secs(5)));
        assert_eq!(p.crash_time(0), None);
        assert_eq!(p.crash_events(), vec![(SimTime::from_secs(5), 1)]);
    }

    #[test]
    fn slow_windows_compound() {
        let p = FaultPlan::none(1)
            .slow(0, SimTime::from_secs(1), SimTime::from_secs(3), 2.0)
            .slow(0, SimTime::from_secs(2), SimTime::from_secs(4), 3.0);
        assert_eq!(p.slow_factor(0, SimTime::ZERO), 1.0);
        assert_eq!(p.slow_factor(0, SimTime::from_secs(1)), 2.0);
        assert_eq!(p.slow_factor(0, SimTime::from_secs(2)), 6.0);
        assert_eq!(p.slow_factor(0, SimTime::from_secs(3)), 3.0);
        assert_eq!(p.slow_factor(0, SimTime::from_secs(4)), 1.0);
    }

    #[test]
    fn random_plan_is_deterministic_and_spares_node_zero() {
        let h = SimTime::from_secs(100);
        let a = FaultPlan::random(16, 7, 0.5, h);
        let b = FaultPlan::random(16, 7, 0.5, h);
        assert_eq!(a, b);
        let c = FaultPlan::random(16, 8, 0.5, h);
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.crash_time(0).is_none(), "node 0 must survive");
        for (t, _) in a.crash_events() {
            assert!(t < h);
        }
    }

    #[test]
    fn random_rate_extremes() {
        let h = SimTime::from_secs(10);
        assert_eq!(FaultPlan::random(8, 1, 0.0, h).crash_count(), 0);
        assert_eq!(FaultPlan::random(8, 1, 1.0, h).crash_count(), 7);
    }

    #[test]
    fn overlapping_slow_windows_compose_order_independently() {
        // Same windows, opposite insertion order: the factor at every
        // instant must agree — composition is a product, not a stack.
        let a = FaultPlan::none(1)
            .slow(0, SimTime::from_secs(1), SimTime::from_secs(5), 2.0)
            .slow(0, SimTime::from_secs(3), SimTime::from_secs(7), 1.5)
            .slow(0, SimTime::from_secs(4), SimTime::from_secs(6), 4.0);
        let b = FaultPlan::none(1)
            .slow(0, SimTime::from_secs(4), SimTime::from_secs(6), 4.0)
            .slow(0, SimTime::from_secs(3), SimTime::from_secs(7), 1.5)
            .slow(0, SimTime::from_secs(1), SimTime::from_secs(5), 2.0);
        for us in (0..8_000_000u64).step_by(250_000) {
            let t = SimTime::from_micros(us);
            assert_eq!(a.slow_factor(0, t), b.slow_factor(0, t), "at {t}");
        }
        // Triple overlap at t=4s: 2.0 × 1.5 × 4.0.
        assert_eq!(a.slow_factor(0, SimTime::from_secs(4)), 12.0);
        // Window ends are exclusive, starts inclusive, even when nested.
        assert_eq!(a.slow_factor(0, SimTime::from_secs(5)), 6.0);
        assert_eq!(a.slow_factor(0, SimTime::from_micros(6_999_999)), 1.5);
        assert_eq!(a.slow_factor(0, SimTime::from_secs(7)), 1.0);
    }

    #[test]
    fn identical_duplicate_windows_square_the_factor() {
        let p = FaultPlan::none(1)
            .slow(0, SimTime::from_secs(1), SimTime::from_secs(2), 3.0)
            .slow(0, SimTime::from_secs(1), SimTime::from_secs(2), 3.0);
        assert_eq!(p.slow_factor(0, SimTime::from_secs(1)), 9.0);
    }

    #[test]
    fn random_rate_extremes_are_deterministic_across_seeds() {
        let h = SimTime::from_secs(10);
        for seed in [0, 1, 7, u64::MAX] {
            // Rate 0 crashes nobody; rate 1 crashes everyone but node 0.
            assert_eq!(FaultPlan::random(8, seed, 0.0, h).crash_count(), 0);
            let all = FaultPlan::random(8, seed, 1.0, h);
            assert_eq!(all.crash_count(), 7);
            assert!(all.crash_time(0).is_none(), "node 0 spared at rate 1");
            for (t, _) in all.crash_events() {
                assert!(t < h, "crash {t} beyond horizon");
            }
        }
        // Degenerate cluster sizes don't panic.
        assert_eq!(FaultPlan::random(1, 3, 1.0, h).crash_count(), 0);
        assert_eq!(FaultPlan::random(0, 3, 1.0, h).nodes(), 0);
    }

    #[test]
    fn is_alive_at_exact_crash_instant_is_dead_everywhere() {
        // The exclusive boundary holds at t=0 and at the horizon edge too:
        // a node crashing at the exact instant a query is made is already
        // down (crash events fire before same-time work events).
        let p = FaultPlan::none(3)
            .crash(1, SimTime::ZERO)
            .crash(2, SimTime::from_micros(1));
        assert!(!p.is_alive(1, SimTime::ZERO), "t=0 crash is immediate");
        assert!(p.is_alive(2, SimTime::ZERO));
        assert!(!p.is_alive(2, SimTime::from_micros(1)));
        assert_eq!(
            p.crash_events(),
            vec![(SimTime::ZERO, 1), (SimTime::from_micros(1), 2)]
        );
        // Re-scripting a crash overrides, never accumulates.
        let p = p.crash(2, SimTime::from_secs(9));
        assert!(p.is_alive(2, SimTime::from_micros(1)));
        assert_eq!(p.crash_count(), 2);
    }

    #[test]
    #[should_panic]
    fn sub_unity_slow_factor_rejected() {
        let _ = FaultPlan::none(1).slow(0, SimTime::ZERO, SimTime::from_secs(1), 0.5);
    }

    #[test]
    #[should_panic]
    fn zero_nic_fraction_rejected() {
        let _ = FaultPlan::none(1).degrade_nic(0, 0.0);
    }
}
