//! Simulated time as integer microseconds.
//!
//! Integer time makes the simulation exactly deterministic and totally
//! ordered — no accumulation of floating-point error across millions of
//! events — while one microsecond of resolution is far below any modelled
//! latency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// From fractional seconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        Self((s * 1e6).round() as u64)
    }

    /// Duration needed to move `bytes` at `bytes_per_sec` (rounded up to a
    /// whole microsecond so work never takes zero time).
    ///
    /// # Panics
    /// Panics if `bytes_per_sec == 0`.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "rate must be positive");
        if bytes == 0 {
            return Self::ZERO;
        }
        let us = (bytes as u128 * 1_000_000).div_ceil(bytes_per_sec as u128);
        Self(us as u64)
    }

    /// As microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction (durations never go negative).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics on underflow — subtracting a later time from an earlier one
    /// is always a logic error in the engine.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: rhs is later than lhs"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn bytes_at_rate() {
        // 100 MB at 100 MB/s = 1 s.
        let t = SimTime::for_bytes(100_000_000, 100_000_000);
        assert_eq!(t, SimTime::from_secs(1));
        // Rounds up: 1 byte at 1 GB/s is 1 µs, not 0.
        assert_eq!(SimTime::for_bytes(1, 1_000_000_000).as_micros(), 1);
        assert_eq!(SimTime::for_bytes(0, 100), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_micros(), 1_500_000);
        assert_eq!((a - b).as_micros(), 500_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 1_500_000);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "1.234s");
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        SimTime::for_bytes(10, 0);
    }
}
