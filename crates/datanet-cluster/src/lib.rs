//! A deterministic discrete-event cluster simulator — the testbed substrate
//! standing in for the paper's 128-node PRObE/Marmot cluster.
//!
//! The MapReduce engine (`datanet-mapreduce`) drives these primitives:
//!
//! * [`time::SimTime`] — integer microseconds; no floating-point
//!   drift, total order, exact determinism.
//! * [`event::EventQueue`] — a time-ordered queue with a
//!   deterministic FIFO tie-break.
//! * [`resource::Timeline`] — a serially-reusable resource (disk
//!   head, NIC, core set): reserving work returns exact start/end times.
//! * [`node::SimNode`] / [`cluster::SimCluster`] — a
//!   node bundles disk/CPU/NIC timelines; the cluster adds a
//!   shared-switch network transfer model calibrated to Marmot's hardware
//!   (SATA disk ≈ 80 MB/s, GigE ≈ 117 MB/s).
//!
//! The simulator models *where time goes* (I/O, compute, transfer,
//! synchronisation waits) rather than absolute hardware detail — the paper's
//! effects are scheduling effects, which survive this abstraction.

pub mod cluster;
pub mod detector;
pub mod event;
pub mod fault;
pub mod node;
pub mod resource;
pub mod time;

pub use cluster::SimCluster;
pub use detector::{
    suspicion_schedule, suspicion_schedule_traced, DetectorConfig, FailureDetector,
};
pub use event::EventQueue;
pub use fault::{FaultPlan, SlowWindow};
pub use node::{NodeSpec, SimNode};
pub use resource::Timeline;
pub use time::SimTime;
