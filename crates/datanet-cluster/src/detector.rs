//! Heartbeat-driven failure detection — suspicion instead of oracles.
//!
//! PR 1's fault engine told schedulers about crashes at the *exact* crash
//! instant, an oracle no real cluster has. Real masters learn about dead
//! workers the way Hadoop's JobTracker does: workers heartbeat on an
//! interval, the master keeps a per-worker estimate of the expected gap,
//! and a worker silent for several expected gaps becomes *suspected* and is
//! treated as dead. This module models that:
//!
//! * [`FailureDetector`] — per-node online detector: an EWMA of heartbeat
//!   inter-arrival times (the adaptive part of Chen et al.'s and the
//!   φ-accrual family of detectors, reduced to a deterministic threshold)
//!   with suspicion at `last + multiplier · EWMA`.
//! * [`suspicion_schedule`] — pure function from a [`FaultPlan`] to the
//!   times each crashed node becomes *suspected*, with heartbeats stretched
//!   by the plan's slow windows. The fault engine injects crash handling at
//!   these times instead of the oracle crash instants, so every recovery
//!   action pays a realistic detection latency.
//!
//! Everything is integer-time deterministic: same plan + config → same
//! schedule, bit for bit.

use crate::fault::FaultPlan;
use crate::time::SimTime;
use datanet_obs::{Category, Domain, Recorder, SpanCtx};

/// Failure-detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Nominal heartbeat interval workers aim for.
    pub heartbeat: SimTime,
    /// Silence tolerated before suspicion, in units of the expected gap.
    pub multiplier: f64,
    /// EWMA smoothing factor for inter-arrival times (0 < α ≤ 1); higher
    /// adapts faster but is jumpier.
    pub alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            heartbeat: SimTime::from_millis(100),
            multiplier: 3.0,
            alpha: 0.2,
        }
    }
}

impl DetectorConfig {
    fn validate(&self) {
        assert!(self.heartbeat > SimTime::ZERO, "heartbeat must be positive");
        assert!(
            self.multiplier >= 1.0 && self.multiplier.is_finite(),
            "multiplier must be >= 1"
        );
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
    }
}

/// Online per-node failure detector: feed it heartbeats, ask it who is
/// suspect. Suspicion is *unstable* by design — a late heartbeat clears it,
/// exactly like a worker rejoining after a GC pause.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    last: Option<SimTime>,
    /// EWMA of inter-arrival gaps, microseconds. 0 until the first gap.
    ewma_micros: f64,
    gaps: usize,
}

impl FailureDetector {
    /// A detector that has seen no heartbeats yet.
    ///
    /// # Panics
    /// Panics on an invalid config (non-positive heartbeat, multiplier < 1,
    /// α outside (0, 1]).
    pub fn new(cfg: DetectorConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            last: None,
            ewma_micros: 0.0,
            gaps: 0,
        }
    }

    /// Record a heartbeat at `at`.
    ///
    /// # Panics
    /// Panics if heartbeats arrive out of order — event delivery in the
    /// simulator is totally ordered, so that is always a harness bug.
    pub fn heartbeat(&mut self, at: SimTime) {
        if let Some(last) = self.last {
            assert!(at >= last, "heartbeats must arrive in time order");
            let gap = (at - last).as_micros() as f64;
            self.ewma_micros = if self.gaps == 0 {
                gap
            } else {
                self.cfg.alpha * gap + (1.0 - self.cfg.alpha) * self.ewma_micros
            };
            self.gaps += 1;
        }
        self.last = Some(at);
    }

    /// Current expected inter-arrival gap: the EWMA once at least one gap
    /// was observed, the nominal heartbeat interval before that.
    pub fn expected_gap(&self) -> SimTime {
        if self.gaps == 0 {
            self.cfg.heartbeat
        } else {
            SimTime::from_micros((self.ewma_micros.round() as u64).max(1))
        }
    }

    /// Instant at which continued silence turns into suspicion:
    /// `last + multiplier · expected_gap` (from time zero when no heartbeat
    /// was ever seen).
    pub fn suspicion_deadline(&self) -> SimTime {
        let horizon =
            SimTime::from_secs_f64(self.cfg.multiplier * self.expected_gap().as_secs_f64());
        self.last.unwrap_or(SimTime::ZERO) + horizon
    }

    /// Whether the node is suspected dead at `now`.
    pub fn suspects(&self, now: SimTime) -> bool {
        now >= self.suspicion_deadline()
    }

    /// The smoothed inter-arrival estimate, microseconds (0 until the first
    /// observed gap).
    pub fn ewma_micros(&self) -> f64 {
        self.ewma_micros
    }
}

/// When each crashed node of `plan` becomes *suspected*, sorted by time
/// (node index breaks ties). Pure and deterministic.
///
/// Each node heartbeats from `t = 0` at the nominal interval stretched by
/// the plan's slow windows (a struggling worker heartbeats late — which
/// also teaches the EWMA a longer gap, delaying suspicion: the classic
/// detection-latency vs. false-positive trade-off). The node's suspicion
/// instant is its detector's deadline after the final pre-crash heartbeat,
/// never earlier than the crash itself.
///
/// # Panics
/// Panics on an invalid `cfg` (see [`FailureDetector::new`]).
pub fn suspicion_schedule(plan: &FaultPlan, cfg: DetectorConfig) -> Vec<(SimTime, usize)> {
    suspicion_schedule_traced(plan, cfg, &Recorder::off())
}

/// [`suspicion_schedule`] with tracing: records one [`Category::Detection`]
/// span per crashed node covering the crash → suspicion window, a
/// `suspect` instant at its close, and the detection latency in the
/// `detection_us` histogram. Identical schedule to the untraced form.
///
/// # Panics
/// Panics on an invalid `cfg` (see [`FailureDetector::new`]).
pub fn suspicion_schedule_traced(
    plan: &FaultPlan,
    cfg: DetectorConfig,
    rec: &Recorder,
) -> Vec<(SimTime, usize)> {
    let mut schedule = Vec::new();
    for node in 0..plan.nodes() {
        let Some(crash) = plan.crash_time(node) else {
            continue;
        };
        let mut det = FailureDetector::new(cfg);
        let mut t = SimTime::ZERO;
        while plan.is_alive(node, t) {
            det.heartbeat(t);
            let stretched = cfg.heartbeat.as_secs_f64() * plan.slow_factor(node, t);
            t += SimTime::from_secs_f64(stretched).max(SimTime::from_micros(1));
        }
        let suspected = det.suspicion_deadline().max(crash);
        let span = rec.begin(
            Category::Detection,
            "detect",
            Domain::Sim,
            crash.as_micros(),
            SpanCtx::default().node(node),
        );
        rec.end(span, suspected.as_micros());
        rec.instant(
            Category::Detection,
            "suspect",
            Domain::Sim,
            suspected.as_micros(),
            SpanCtx::default().node(node),
        );
        rec.observe("detection_us", (suspected - crash).as_micros());
        schedule.push((suspected, node));
    }
    schedule.sort();
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn steady_heartbeats_keep_trust() {
        let mut det = FailureDetector::new(cfg());
        for i in 0..20u64 {
            det.heartbeat(SimTime::from_millis(100 * i));
        }
        let last = SimTime::from_millis(1900);
        assert!(!det.suspects(last + SimTime::from_millis(100)));
        assert!(!det.suspects(last + SimTime::from_millis(299)));
        // Three expected gaps of silence → suspect.
        assert!(det.suspects(last + SimTime::from_millis(300)));
        assert_eq!(det.expected_gap(), SimTime::from_millis(100));
    }

    #[test]
    fn no_heartbeat_node_is_suspected_from_nominal_interval() {
        let det = FailureDetector::new(cfg());
        assert!(!det.suspects(SimTime::from_millis(299)));
        assert!(det.suspects(SimTime::from_millis(300)));
    }

    #[test]
    fn ewma_adapts_to_slower_cadence() {
        let mut det = FailureDetector::new(cfg());
        det.heartbeat(SimTime::ZERO);
        det.heartbeat(SimTime::from_millis(100));
        assert_eq!(det.expected_gap(), SimTime::from_millis(100));
        // The cadence drops to 200 ms; the estimate moves toward it.
        let mut t = SimTime::from_millis(100);
        for _ in 0..40 {
            t += SimTime::from_millis(200);
            det.heartbeat(t);
        }
        let gap = det.expected_gap();
        assert!(gap > SimTime::from_millis(180), "gap {gap} too small");
        assert!(gap <= SimTime::from_millis(200), "gap {gap} overshoot");
    }

    #[test]
    fn late_heartbeat_clears_suspicion() {
        let mut det = FailureDetector::new(cfg());
        det.heartbeat(SimTime::ZERO);
        det.heartbeat(SimTime::from_millis(100));
        let silent = SimTime::from_millis(100) + SimTime::from_millis(350);
        assert!(det.suspects(silent), "long silence suspected");
        // The worker was only paused: its next heartbeat rehabilitates it
        // (and the EWMA remembers the scare as a longer expected gap).
        det.heartbeat(silent);
        assert!(!det.suspects(silent + SimTime::from_millis(100)));
        assert!(det.expected_gap() > SimTime::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_heartbeat_panics() {
        let mut det = FailureDetector::new(cfg());
        det.heartbeat(SimTime::from_millis(200));
        det.heartbeat(SimTime::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn invalid_multiplier_panics() {
        FailureDetector::new(DetectorConfig {
            multiplier: 0.5,
            ..cfg()
        });
    }

    #[test]
    fn schedule_pays_detection_latency_after_each_crash() {
        let plan = FaultPlan::none(6)
            .crash(2, SimTime::from_secs(3))
            .crash(4, SimTime::from_secs(1));
        let schedule = suspicion_schedule(&plan, cfg());
        assert_eq!(schedule.len(), 2);
        // Sorted by suspicion time, and every suspicion strictly follows
        // its crash (silence must accumulate first).
        assert_eq!(schedule[0].1, 4);
        assert_eq!(schedule[1].1, 2);
        for &(suspected, node) in &schedule {
            let crash = plan.crash_time(node).unwrap();
            assert!(suspected > crash, "node {node} suspected before dying");
            // With steady 100 ms heartbeats the latency is ~3 gaps.
            let latency = suspected - crash;
            assert!(latency <= SimTime::from_millis(400), "latency {latency}");
        }
        // Determinism: same plan, same schedule.
        assert_eq!(schedule, suspicion_schedule(&plan, cfg()));
    }

    #[test]
    fn crash_at_time_zero_is_still_detected() {
        let plan = FaultPlan::none(3).crash(1, SimTime::ZERO);
        let schedule = suspicion_schedule(&plan, cfg());
        // Never a single heartbeat: suspicion fires after the nominal
        // grace period from time zero.
        assert_eq!(schedule, vec![(SimTime::from_millis(300), 1)]);
    }

    #[test]
    fn slow_window_before_crash_delays_suspicion() {
        let crash = SimTime::from_secs(4);
        let baseline = FaultPlan::none(4).crash(1, crash);
        let slowed = FaultPlan::none(4).crash(1, crash).slow(
            1,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
            4.0,
        );
        let t_base = suspicion_schedule(&baseline, cfg())[0].0;
        let t_slow = suspicion_schedule(&slowed, cfg())[0].0;
        // Stretched heartbeats teach the EWMA a longer gap, so the detector
        // waits longer before declaring the node dead.
        assert!(t_slow > t_base, "{t_slow} vs {t_base}");
    }

    #[test]
    fn healthy_plan_yields_empty_schedule() {
        assert!(suspicion_schedule(&FaultPlan::none(8), cfg()).is_empty());
    }
}
