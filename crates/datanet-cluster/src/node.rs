//! Simulated compute/data nodes.
//!
//! A node owns three serial resources — disk, CPU (the task-slot core set)
//! and NIC (one timeline per direction) — plus rate parameters calibrated to
//! the paper's Marmot hardware (dual 1.6 GHz Opterons, 2 TB SATA disk,
//! Gigabit Ethernet).

use crate::resource::Timeline;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Static node performance parameters (bytes per second).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Sequential disk bandwidth.
    pub disk_bps: u64,
    /// Baseline CPU processing bandwidth: how many input bytes per second a
    /// map task with `compute_factor == 1.0` digests.
    pub cpu_bps: u64,
    /// NIC bandwidth per direction.
    pub nic_bps: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::marmot()
    }
}

impl NodeSpec {
    /// Marmot-like calibration: 80 MB/s SATA disk, 117 MB/s GigE (after
    /// protocol overhead), 200 MB/s of single-slot scan throughput on the
    /// 1.6 GHz Opterons.
    pub fn marmot() -> Self {
        Self {
            disk_bps: 80_000_000,
            cpu_bps: 200_000_000,
            nic_bps: 117_000_000,
        }
    }

    /// Validate rates.
    ///
    /// # Panics
    /// Panics if any rate is zero.
    pub fn validate(&self) {
        assert!(self.disk_bps > 0, "disk rate must be positive");
        assert!(self.cpu_bps > 0, "cpu rate must be positive");
        assert!(self.nic_bps > 0, "nic rate must be positive");
    }
}

/// Dynamic node state: the resource timelines.
#[derive(Debug, Clone)]
pub struct SimNode {
    spec: NodeSpec,
    disk: Timeline,
    cpu: Timeline,
    nic_out: Timeline,
    nic_in: Timeline,
}

impl SimNode {
    /// A fresh node.
    pub fn new(spec: NodeSpec) -> Self {
        spec.validate();
        Self {
            spec,
            disk: Timeline::new(),
            cpu: Timeline::new(),
            nic_out: Timeline::new(),
            nic_in: Timeline::new(),
        }
    }

    /// The node's rate parameters.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Read `bytes` from local disk, ready at `ready`. Returns `(start,
    /// end)`.
    pub fn read_disk(&mut self, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.disk
            .reserve(ready, SimTime::for_bytes(bytes, self.spec.disk_bps))
    }

    /// Write `bytes` to local disk.
    pub fn write_disk(&mut self, ready: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.read_disk(ready, bytes)
    }

    /// Process `bytes` of input on the CPU with a job-specific
    /// `compute_factor` (1.0 = baseline scan; Top-K similarity ≫ 1).
    ///
    /// # Panics
    /// Panics on a non-positive factor.
    pub fn compute(
        &mut self,
        ready: SimTime,
        bytes: u64,
        compute_factor: f64,
    ) -> (SimTime, SimTime) {
        assert!(
            compute_factor.is_finite() && compute_factor > 0.0,
            "compute factor must be positive, got {compute_factor}"
        );
        let effective = (bytes as f64 * compute_factor).ceil() as u64;
        self.cpu
            .reserve(ready, SimTime::for_bytes(effective, self.spec.cpu_bps))
    }

    /// Outbound NIC timeline (used by the cluster's transfer model).
    pub fn nic_out(&mut self) -> &mut Timeline {
        &mut self.nic_out
    }

    /// Inbound NIC timeline.
    pub fn nic_in(&mut self) -> &mut Timeline {
        &mut self.nic_in
    }

    /// When every resource on the node is idle again.
    pub fn quiescent_at(&self) -> SimTime {
        self.disk
            .busy_until()
            .max(self.cpu.busy_until())
            .max(self.nic_out.busy_until())
            .max(self.nic_in.busy_until())
    }

    /// Disk timeline (read-only view for stats).
    pub fn disk(&self) -> &Timeline {
        &self.disk
    }

    /// CPU timeline (read-only view for stats).
    pub fn cpu(&self) -> &Timeline {
        &self.cpu
    }

    /// Reset all timelines to idle.
    pub fn reset(&mut self) {
        self.disk.reset();
        self.cpu.reset();
        self.nic_out.reset();
        self.nic_in.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_read_time_matches_rate() {
        let mut n = SimNode::new(NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 100,
        });
        let (s, e) = n.read_disk(SimTime::ZERO, 200);
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(e, SimTime::from_secs(2));
    }

    #[test]
    fn compute_scales_with_factor() {
        let mut n = SimNode::new(NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 100,
        });
        let (_, e1) = n.compute(SimTime::ZERO, 100, 1.0);
        assert_eq!(e1, SimTime::from_secs(1));
        let mut n2 = SimNode::new(NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 100,
        });
        let (_, e5) = n2.compute(SimTime::ZERO, 100, 5.0);
        assert_eq!(e5, SimTime::from_secs(5));
    }

    #[test]
    fn disk_and_cpu_are_independent_resources() {
        let mut n = SimNode::new(NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 100,
        });
        let (_, de) = n.read_disk(SimTime::ZERO, 100);
        let (cs, _) = n.compute(SimTime::ZERO, 100, 1.0);
        // CPU can start while the disk is busy.
        assert_eq!(cs, SimTime::ZERO);
        assert_eq!(de, SimTime::from_secs(1));
    }

    #[test]
    fn same_resource_serialises() {
        let mut n = SimNode::new(NodeSpec {
            disk_bps: 100,
            cpu_bps: 100,
            nic_bps: 100,
        });
        n.read_disk(SimTime::ZERO, 100);
        let (s2, e2) = n.read_disk(SimTime::ZERO, 100);
        assert_eq!(s2, SimTime::from_secs(1));
        assert_eq!(e2, SimTime::from_secs(2));
        assert_eq!(n.quiescent_at(), SimTime::from_secs(2));
    }

    #[test]
    fn marmot_spec_sanity() {
        let s = NodeSpec::marmot();
        s.validate();
        assert!(s.nic_bps > s.disk_bps, "GigE outpaces one SATA disk");
    }

    #[test]
    fn reset_restores_idle() {
        let mut n = SimNode::new(NodeSpec::marmot());
        n.read_disk(SimTime::ZERO, 1_000_000);
        n.reset();
        assert_eq!(n.quiescent_at(), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_factor_rejected() {
        SimNode::new(NodeSpec::marmot()).compute(SimTime::ZERO, 10, 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_spec_rejected() {
        SimNode::new(NodeSpec {
            disk_bps: 0,
            cpu_bps: 1,
            nic_bps: 1,
        });
    }
}
