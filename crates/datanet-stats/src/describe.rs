//! Descriptive statistics used throughout the experiment harness
//! (min/avg/max bars in Figures 6, 7 and 10, std-dev in Figure 10).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample, computed in one pass with Welford's
/// algorithm (numerically stable for the large byte counts we feed it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarise a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "Summary only accepts finite values, got {v}");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another summary into this one (parallel reduction-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation.
    ///
    /// # Panics
    /// Panics on an empty summary.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "min of empty summary");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    /// Panics on an empty summary.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "max of empty summary");
        self.max
    }

    /// max / min, the straggler ratio the paper quotes ("some nodes carry a
    /// workload 4 to 6 times greater than others"). Returns `None` if the
    /// summary is empty or min is zero.
    pub fn spread_ratio(&self) -> Option<f64> {
        if self.count == 0 || self.min <= 0.0 {
            None
        } else {
            Some(self.max / self.min)
        }
    }

    /// Coefficient of variation (std dev / mean); `None` for zero mean.
    pub fn cv(&self) -> Option<f64> {
        if self.count == 0 || self.mean == 0.0 {
            None
        } else {
            Some(self.std_dev() / self.mean)
        }
    }
}

/// Gini coefficient of a non-negative sample — 0 for perfect equality,
/// →1 for total concentration. A compact scalar for workload-imbalance
/// reporting alongside max/avg (a Gini of 0.25+ across node workloads marks
/// the kind of skew the paper's Figure 1(b) shows).
///
/// # Panics
/// Panics on an empty slice or negative values.
pub fn gini(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gini of empty sample");
    assert!(
        values.iter().all(|&v| v >= 0.0 && v.is_finite()),
        "gini requires non-negative finite values"
    );
    let n = values.len() as f64;
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n, with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n * total)) - (n + 1.0) / n
}

/// Sorted-slice percentile (nearest-rank). `p` in `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.spread_ratio().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.spread_ratio().is_none());
        assert!(s.cv().is_none());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let whole = Summary::of(&data);
        let mut a = Summary::of(&data[..37]);
        let b = Summary::of(&data[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[5.0, 7.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn gini_extremes_and_midpoints() {
        // Perfect equality.
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        // Total concentration on one of n: G = (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.75).abs() < 1e-12, "got {g}");
        // A known hand-computed case: [1,2,3,4] → G = 0.25.
        assert!((gini(&[1.0, 2.0, 3.0, 4.0]) - 0.25).abs() < 1e-12);
        // All-zero workload counts as equal.
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // Order-invariant.
        assert_eq!(gini(&[4.0, 1.0, 3.0, 2.0]), gini(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    #[should_panic]
    fn gini_rejects_negative() {
        gini(&[1.0, -2.0]);
    }

    #[test]
    #[should_panic]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic]
    fn summary_rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }
}
