//! Fixed-bin histograms, used by the figure harness to print distribution
//! series (e.g. Figure 1(a): sub-dataset bytes per HDFS block index).

use serde::{Deserialize, Serialize};

/// A histogram with uniform bins over `[lo, hi)` plus an overflow bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty: [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            // Floating point can land exactly on len() when v is a hair
            // below hi; clamp defensively.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow + self.underflow
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Iterate `(bin_center, count)` pairs — convenient for printing series.
    pub fn series(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 55.0] {
            h.record(v);
        }
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.overflow(), 2); // 10.0, 55.0
        assert_eq!(h.underflow(), 1); // -0.1
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn series_centers() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(0.5);
        h.record(3.5);
        let s: Vec<_> = h.series().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (0.5, 1));
        assert_eq!(s[3], (3.5, 1));
    }

    #[test]
    fn boundary_just_below_hi() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.record(1.0 - 1e-16); // rounds to exactly 1.0 in the scaled space
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }
}
