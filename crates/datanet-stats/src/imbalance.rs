//! The workload-imbalance probability model of Section II-B.
//!
//! Setup: a sub-dataset is spread over `n` blocks; the bytes it contributes
//! to each block are iid `X ~ Γ(k, θ)`. Each of `m` nodes processes `n/m`
//! randomly chosen blocks, so its workload is `Z ~ Γ(nk/m, θ)` with mean
//! `E(Z) = nkθ/m` (Equation 2). The model answers:
//!
//! * `P(Z < c·E(Z))` and `P(Z > c·E(Z))` — tail probabilities for idle and
//!   straggler nodes (Equations 3–4);
//! * the expected *number of nodes* in each regime, `m · P(...)`;
//! * the full Figure 2 series over a range of cluster sizes.
//!
//! With the paper's parameters (`k = 1.2, θ = 7, n = 512, m = 128`) it
//! reproduces the quoted expectations: ≈3.9 nodes below `E/2`, ≈1.5 below
//! `E/3`, ≈4.0 above `2E`.

use crate::gamma::GammaDist;
use serde::{Deserialize, Serialize};

/// Parameters of the Section II-B model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceModel {
    /// Per-block Gamma shape `k`.
    pub shape: f64,
    /// Per-block Gamma scale `θ`.
    pub scale: f64,
    /// Total number of blocks `n` holding the sub-dataset.
    pub blocks: usize,
}

/// One row of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceRow {
    /// Cluster size `m`.
    pub nodes: usize,
    /// `P(Z < E(Z)/3)`.
    pub p_below_third: f64,
    /// `P(Z < E(Z)/2)`.
    pub p_below_half: f64,
    /// `P(Z > 2·E(Z))`.
    pub p_above_twice: f64,
    /// `P(Z > 3·E(Z))`.
    pub p_above_thrice: f64,
}

impl ImbalanceModel {
    /// The paper's running example: `Γ(k = 1.2, θ = 7)`, `n = 512` blocks.
    pub fn paper_example() -> Self {
        Self {
            shape: 1.2,
            scale: 7.0,
            blocks: 512,
        }
    }

    /// Create a model.
    ///
    /// # Panics
    /// Panics if parameters are non-positive.
    pub fn new(shape: f64, scale: f64, blocks: usize) -> Self {
        assert!(blocks > 0, "model needs at least one block");
        // GammaDist::new validates shape/scale.
        let _ = GammaDist::new(shape, scale);
        Self {
            shape,
            scale,
            blocks,
        }
    }

    /// Distribution of one block's contribution, `X ~ Γ(k, θ)`.
    pub fn per_block(&self) -> GammaDist {
        GammaDist::new(self.shape, self.scale)
    }

    /// Distribution of one node's workload on an `m`-node cluster:
    /// `Z ~ Γ(nk/m, θ)` (Equation 2). Requires `m ≤ n` so each node gets at
    /// least one block's worth of shape.
    pub fn node_workload(&self, m: usize) -> GammaDist {
        assert!(m > 0, "cluster must have at least one node");
        assert!(
            m <= self.blocks,
            "model assumes every node processes >= 1 block (m={m} > n={})",
            self.blocks
        );
        GammaDist::new(self.shape * self.blocks as f64 / m as f64, self.scale)
    }

    /// Expected per-node workload `E(Z) = nkθ/m`.
    pub fn expected_workload(&self, m: usize) -> f64 {
        self.shape * self.blocks as f64 * self.scale / m as f64
    }

    /// `P(Z < frac·E(Z))` on an `m`-node cluster (Equation 3 evaluated at a
    /// fraction of the mean).
    pub fn p_below(&self, m: usize, frac: f64) -> f64 {
        assert!(frac > 0.0, "fraction must be positive");
        let z = self.node_workload(m);
        z.cdf(frac * self.expected_workload(m))
    }

    /// `P(Z > frac·E(Z))` on an `m`-node cluster (Equation 4).
    pub fn p_above(&self, m: usize, frac: f64) -> f64 {
        1.0 - self.p_below(m, frac)
    }

    /// Expected number of nodes with workload below `frac·E(Z)`:
    /// `m · P(Z < frac·E)`.
    pub fn expected_nodes_below(&self, m: usize, frac: f64) -> f64 {
        m as f64 * self.p_below(m, frac)
    }

    /// Expected number of nodes with workload above `frac·E(Z)`:
    /// `m − m · P(Z < frac·E)`.
    pub fn expected_nodes_above(&self, m: usize, frac: f64) -> f64 {
        m as f64 * self.p_above(m, frac)
    }

    /// One Figure 2 row for cluster size `m`.
    pub fn row(&self, m: usize) -> ImbalanceRow {
        ImbalanceRow {
            nodes: m,
            p_below_third: self.p_below(m, 1.0 / 3.0),
            p_below_half: self.p_below(m, 0.5),
            p_above_twice: self.p_above(m, 2.0),
            p_above_thrice: self.p_above(m, 3.0),
        }
    }

    /// The Figure 2 series for each cluster size in `sizes`.
    pub fn series(&self, sizes: impl IntoIterator<Item = usize>) -> Vec<ImbalanceRow> {
        sizes.into_iter().map(|m| self.row(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_workload_shape_scales_down_with_cluster() {
        let m = ImbalanceModel::paper_example();
        let z32 = m.node_workload(32);
        let z128 = m.node_workload(128);
        assert!((z32.shape() - 1.2 * 512.0 / 32.0).abs() < 1e-9);
        assert!((z128.shape() - 4.8).abs() < 1e-9);
        assert_eq!(z32.scale(), 7.0);
    }

    #[test]
    fn expected_workload_matches_mean() {
        let m = ImbalanceModel::paper_example();
        for &nodes in &[1usize, 2, 16, 128, 512] {
            assert!((m.expected_workload(nodes) - m.node_workload(nodes).mean()).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_quoted_expected_node_counts_at_128() {
        // Paper (Section II-B): at m = 128 "the expected numbers of nodes
        // that will have a workload of less than 1/2·E(Z) and 1/3·E(Z) are
        // 3.9 and 1.5 respectively; and the expected number of nodes that
        // will have a workload greater than 2·E(Z) is 4.0". With the paper's
        // own parameters (k=1.2, θ=7, n=512 ⇒ per-node shape 4.8) the
        // formula reproduces 3.9 for *E/3* (not E/2 — the labels in the text
        // appear shifted by one) and 4.0 for 2E exactly; the quoted 1.5 sits
        // between our E/4 value (1.35) and none of the stated thresholds.
        // Details in EXPERIMENTS.md. We pin the two matching values and the
        // correct E/2 value as regressions.
        let m = ImbalanceModel::paper_example();
        let below_half = m.expected_nodes_below(128, 0.5);
        let below_third = m.expected_nodes_below(128, 1.0 / 3.0);
        let above_twice = m.expected_nodes_above(128, 2.0);
        assert!((below_third - 3.9).abs() < 0.05, "got {below_third}");
        assert!((above_twice - 4.0).abs() < 0.05, "got {above_twice}");
        assert!((below_half - 14.69).abs() < 0.05, "got {below_half}");
        // Qualitative claim behind "some nodes will have a workload 4 to 6
        // times greater than others": expected idlers below E/3 and
        // stragglers above 2E both exceed one node.
        assert!(below_third >= 1.0);
        assert!(above_twice >= 1.0);
    }

    #[test]
    fn tail_probabilities_grow_with_cluster_size() {
        // Figure 2's qualitative claim: every tail probability increases
        // with m (fewer blocks per node → higher relative variance).
        let model = ImbalanceModel::paper_example();
        let sizes = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
        let rows = model.series(sizes);
        for w in rows.windows(2) {
            assert!(w[1].p_below_third >= w[0].p_below_third - 1e-12);
            assert!(w[1].p_below_half >= w[0].p_below_half - 1e-12);
            assert!(w[1].p_above_twice >= w[0].p_above_twice - 1e-12);
            assert!(w[1].p_above_thrice >= w[0].p_above_thrice - 1e-12);
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let model = ImbalanceModel::paper_example();
        for m in [1usize, 7, 100, 512] {
            let r = model.row(m);
            for p in [
                r.p_below_third,
                r.p_below_half,
                r.p_above_twice,
                r.p_above_thrice,
            ] {
                assert!((0.0..=1.0).contains(&p), "p = {p} out of range at m={m}");
            }
            // Below-half dominates below-third; above-twice dominates
            // above-thrice.
            assert!(r.p_below_half >= r.p_below_third);
            assert!(r.p_above_twice >= r.p_above_thrice);
        }
    }

    #[test]
    fn single_node_is_balanced() {
        // With m = 1 the node holds everything: huge shape, tiny relative
        // variance, so tails are almost zero.
        let model = ImbalanceModel::paper_example();
        assert!(model.p_below(1, 0.5) < 1e-6);
        assert!(model.p_above(1, 2.0) < 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_more_nodes_than_blocks() {
        ImbalanceModel::paper_example().node_workload(1024);
    }
}
