//! The Gamma distribution `Γ(k, θ)` (shape/scale parameterisation, as used by
//! the paper: `X ~ Γ(k, θ)` with `E[X] = kθ`).

use crate::special::{ln_gamma, reg_lower_gamma};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Gamma distribution with shape `k` and scale `θ`.
///
/// The paper models the per-block size of a sub-dataset as `Γ(k=1.2, θ=7)`
/// and the per-node workload over `n/m` blocks as `Γ(nk/m, θ)` (sums of iid
/// Gammas with common scale add their shapes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaDist {
    shape: f64,
    scale: f64,
}

impl GammaDist {
    /// Create a `Γ(shape, scale)` distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Gamma shape must be positive and finite, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "Gamma scale must be positive and finite, got {scale}"
        );
        Self { shape, scale }
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Distribution of the sum of `n` iid copies of this variable:
    /// `Γ(nk, θ)`. This is exactly the paper's step from per-block `X` to
    /// per-node `Z` when a node processes `n` blocks.
    pub fn sum_of(&self, n: usize) -> Self {
        assert!(n > 0, "sum over zero variables is degenerate");
        Self::new(self.shape * n as f64, self.scale)
    }

    /// Probability density function (Equation 2 of the paper).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Density at 0 is 0 for k > 1, θ⁻¹ for k = 1, +∞ for k < 1;
            // return 0 to stay finite (the CDF at 0 is 0 regardless).
            return if (self.shape - 1.0).abs() < f64::EPSILON {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * x.ln() - x / t - ln_gamma(k) - k * t.ln()).exp()
    }

    /// Cumulative distribution function `P(X ≤ x)` (Equation 3).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.shape, x / self.scale)
    }

    /// Survival function `P(X > x)` (Equation 4).
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Draw one sample using Marsaglia–Tsang (2000). For `k < 1` the usual
    /// boosting identity `Γ(k) = Γ(k+1) · U^{1/k}` is applied.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * sample_standard(self.shape, rng)
    }

    /// Draw `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Sample from `Γ(k, 1)` via Marsaglia–Tsang squeeze.
fn sample_standard<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: if Y ~ Γ(k+1, 1) and U ~ U(0,1) then Y·U^{1/k} ~ Γ(k, 1).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_standard(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (kept local so the crate does not
        // depend on rand_distr).
        let (mut x, mut v);
        loop {
            x = box_muller(rng);
            v = 1.0 + c * x;
            if v > 0.0 {
                break;
            }
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Squeeze check first (cheap), then the full acceptance test.
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// One standard-normal deviate via the Box–Muller transform.
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let g = GammaDist::new(1.2, 7.0);
        assert!((g.mean() - 8.4).abs() < 1e-12);
        assert!((g.variance() - 58.8).abs() < 1e-12);
    }

    #[test]
    fn sum_adds_shape() {
        let g = GammaDist::new(1.2, 7.0);
        let s = g.sum_of(16);
        assert!((s.shape() - 19.2).abs() < 1e-12);
        assert!((s.scale() - 7.0).abs() < 1e-12);
        assert!((s.mean() - 16.0 * g.mean()).abs() < 1e-9);
    }

    #[test]
    fn cdf_limits() {
        let g = GammaDist::new(1.2, 7.0);
        assert_eq!(g.cdf(-1.0), 0.0);
        assert_eq!(g.cdf(0.0), 0.0);
        assert!(g.cdf(1e6) > 1.0 - 1e-12);
        assert!((g.cdf(5.0) + g.sf(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid-integrate the pdf and compare with the cdf.
        let g = GammaDist::new(2.5, 3.0);
        let mut acc = 0.0;
        let dx = 1e-3;
        let mut x = 0.0;
        while x < 20.0 {
            acc += 0.5 * (g.pdf(x) + g.pdf(x + dx)) * dx;
            x += dx;
        }
        assert!(
            (acc - g.cdf(20.0)).abs() < 1e-5,
            "integral {acc} vs cdf {}",
            g.cdf(20.0)
        );
    }

    #[test]
    fn exponential_special_case() {
        // Γ(1, θ) is Exponential(θ): cdf = 1 − e^{-x/θ}.
        let g = GammaDist::new(1.0, 2.0);
        for &x in &[0.1, 1.0, 4.0] {
            assert!((g.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_moments() {
        let g = GammaDist::new(1.2, 7.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = g.sample_n(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(
            (mean - g.mean()).abs() < 0.1,
            "sample mean {mean} vs {}",
            g.mean()
        );
        assert!(
            (var - g.variance()).abs() < 2.0,
            "sample var {var} vs {}",
            g.variance()
        );
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn sampling_small_shape() {
        // Exercise the boost branch (k < 1).
        let g = GammaDist::new(0.4, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean = g.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 0.4).abs() < 0.02, "sample mean {mean} vs 0.4");
    }

    #[test]
    fn sampling_ks_against_cdf() {
        // Coarse Kolmogorov–Smirnov check: empirical CDF within 2% of the
        // analytic CDF at a grid of points.
        let g = GammaDist::new(1.2, 7.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut samples = g.sample_n(&mut rng, n);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[2.0, 5.0, 10.0, 20.0, 40.0] {
            let emp = samples.partition_point(|&s| s <= q) as f64 / n as f64;
            let the = g.cdf(q);
            assert!(
                (emp - the).abs() < 0.02,
                "at {q}: empirical {emp} vs analytic {the}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_shape() {
        GammaDist::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_scale() {
        GammaDist::new(1.0, -2.0);
    }
}
