//! Zipf-distributed sampling over ranks `1..=n`.
//!
//! Sub-dataset popularity (movies, GitHub event types) is heavy-tailed; the
//! workload generators draw the *identity* of each record's sub-dataset from
//! a Zipf law so that a few sub-datasets dominate — the "content clustering"
//! precondition of the paper.
//!
//! Implementation: exact inverse-CDF sampling over a precomputed cumulative
//! table. O(n) setup, O(log n) per sample; n here is the number of distinct
//! sub-datasets (≤ millions), which is fine for a generator that runs once
//! per experiment.

use rand::Rng;

/// Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(rank = r) ∝ r^{-s}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[r-1] = P(rank ≤ r)`.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Build a Zipf sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution, which is useful for
    /// ablations that remove popularity skew.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be >= 0, got {s}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (n ≥ 1 by construction); provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability mass of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.len()).contains(&r), "rank {r} out of range");
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry ≥ u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(50, 0.8);
        for r in 1..50 {
            assert!(z.pmf(r) >= z.pmf(r + 1));
        }
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            assert!((1..=1000).contains(&r));
            counts[r - 1] += 1;
        }
        // Rank 1 should be sampled far more than rank 100.
        assert!(counts[0] > 10 * counts[99].max(1));
        // Empirical frequency of rank 1 close to pmf(1).
        let emp = counts[0] as f64 / 100_000.0;
        assert!((emp - z.pmf(1)).abs() < 0.01, "{emp} vs {}", z.pmf(1));
    }

    #[test]
    fn single_rank_always_one() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_exponent() {
        Zipf::new(10, -0.5);
    }
}
