//! Special functions needed by the Gamma distribution: `ln Γ(x)` and the
//! regularized incomplete gamma functions.
//!
//! Implemented from scratch (no external math crates): the Lanczos
//! approximation for `ln Γ`, the standard power-series expansion of the lower
//! incomplete gamma for `x < a + 1`, and the Lentz continued-fraction
//! evaluation of the upper incomplete gamma otherwise (the split keeps both
//! expansions in their fast-converging regimes).

/// Lanczos coefficients for g = 7, n = 9 (Godfrey's set). Accurate to ~15
/// significant digits over the positive real axis.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the reproduction never needs the reflected branch).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        // ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x)
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The Gamma function `Γ(x)` for `x > 0`.
pub fn gamma_fn(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)` for
/// `a > 0, x >= 0`. `P` is the CDF of `Γ(a, 1)`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;

/// Series expansion of P(a, x), converges quickly for x < a + 1:
/// P(a,x) = x^a e^{-x} / Γ(a) · Σ_{n≥0} x^n / (a (a+1) ⋯ (a+n)).
fn lower_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a))
        .exp()
        .clamp(0.0, 1.0)
}

/// Modified Lentz evaluation of the continued fraction for Q(a, x),
/// converges quickly for x ≥ a + 1.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π, Γ(3/2) = √π / 2
        let sqrt_pi = std::f64::consts::PI.sqrt();
        close(gamma_fn(0.5), sqrt_pi, 1e-12);
        close(gamma_fn(1.5), sqrt_pi / 2.0, 1e-12);
        close(gamma_fn(2.5), 3.0 * sqrt_pi / 4.0, 1e-12);
    }

    #[test]
    fn gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 0.9, 1.7, 3.21, 7.5, 12.0] {
            close(
                gamma_fn(x + 1.0),
                x * gamma_fn(x),
                gamma_fn(x + 1.0) * 1e-12,
            );
        }
    }

    #[test]
    fn incomplete_gamma_is_exponential_cdf_for_a_one() {
        // P(1, x) = 1 − e^{-x}
        for &x in &[0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.2, 2.0, 5.5, 20.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 40.0] {
                close(reg_lower_gamma(a, x) + reg_upper_gamma(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn p_is_monotone_in_x() {
        let a = 1.2;
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.25;
            let p = reg_lower_gamma(a, x);
            assert!(p >= prev - 1e-15, "P(a,x) must be nondecreasing");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn p_known_values() {
        // Reference values computed with high-precision tools:
        // P(1.2, 1.2·7 / 7) = P(1.2, 1.2) — median-ish point of Γ(1.2, 1).
        close(reg_lower_gamma(0.5, 0.5), 0.682_689_492_137_085_9, 1e-10);
        close(reg_lower_gamma(2.0, 2.0), 0.593_994_150_290_161_6, 1e-10);
        close(reg_lower_gamma(5.0, 5.0), 0.559_506_714_934_788, 1e-9);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    #[should_panic]
    fn reg_lower_rejects_negative_x() {
        reg_lower_gamma(1.0, -1.0);
    }
}
