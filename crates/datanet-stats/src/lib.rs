//! Statistical substrate for the DataNet reproduction.
//!
//! The paper (Section II-B) models the amount of a sub-dataset contained in
//! one HDFS block as a Gamma random variable `X ~ Γ(k, θ)` and derives the
//! per-node workload `Z ~ Γ(nk/m, θ)` when each of `m` nodes processes `n/m`
//! random blocks. This crate provides, from scratch:
//!
//! * Gamma-family special functions ([`special`]): `ln Γ`, the regularized
//!   incomplete gamma functions `P(a, x)` / `Q(a, x)`.
//! * The [`gamma::GammaDist`] distribution (pdf, cdf, moments, sampling via
//!   Marsaglia–Tsang).
//! * A [`zipf::Zipf`] sampler used by the workload generators for sub-dataset
//!   popularity.
//! * Descriptive statistics ([`describe`]) and histograms ([`histogram`])
//!   used by the experiment harness.
//! * The workload-imbalance probability model ([`imbalance`]) that
//!   regenerates Figure 2 of the paper.

pub mod describe;
pub mod gamma;
pub mod histogram;
pub mod imbalance;
pub mod special;
pub mod zipf;

pub use describe::{gini, percentile, Summary};
pub use gamma::GammaDist;
pub use histogram::Histogram;
pub use imbalance::ImbalanceModel;
pub use zipf::Zipf;
