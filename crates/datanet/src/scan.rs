//! Single-scan construction of the per-block ElasticMap array
//! (Section III-B: "only a single scan of the raw data is needed for the
//! meta-data construction").
//!
//! Each block's ElasticMap is independent, so the scan parallelises
//! trivially across blocks with Rayon — total work stays O(records), wall
//! time divides by the core count.

use crate::distribution::SubDatasetView;
use crate::elasticmap::{ElasticMap, Separation, SizeInfo, BLOOM_EPSILON};
use datanet_dfs::{BlockId, Dfs, SubDatasetId};
use datanet_obs::{Category, Domain, Recorder, SpanCtx};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The DataNet meta-data structure over all blocks (the paper's Figure 3:
/// an array with one ElasticMap pointer per block file).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticMapArray {
    maps: Vec<ElasticMap>,
    policy: Separation,
}

impl ElasticMapArray {
    /// Build the array with one parallel scan over the DFS blocks.
    pub fn build(dfs: &Dfs, policy: &Separation) -> Self {
        Self::build_traced(dfs, policy, &Recorder::off())
    }

    /// [`ElasticMapArray::build`] with a [`Recorder`] attached: one
    /// wall-clock `build` span around the whole parallel scan, one `scan`
    /// span per block (emitted concurrently from the Rayon workers — the
    /// recorder is `Sync`), and gauges for the resulting meta-data memory
    /// footprint and the bloom design false-positive rate. With a disabled
    /// recorder this is exactly [`ElasticMapArray::build`].
    pub fn build_traced(dfs: &Dfs, policy: &Separation, rec: &Recorder) -> Self {
        let build = rec.begin(
            Category::Build,
            "build",
            Domain::Wall,
            rec.wall_us(),
            SpanCtx::default().note(format!("{} blocks", dfs.block_count())),
        );
        let maps: Vec<ElasticMap> = dfs
            .blocks()
            .par_iter()
            .map(|b| {
                let span = rec.begin(
                    Category::Scan,
                    "scan",
                    Domain::Wall,
                    rec.wall_us(),
                    SpanCtx::default().block(b.id().index() as u64),
                );
                let map = ElasticMap::build(b, policy);
                rec.end(span, rec.wall_us());
                map
            })
            .collect();
        rec.end(build, rec.wall_us());
        rec.add("blocks_scanned", maps.len() as u64);
        let out = Self {
            maps,
            policy: policy.clone(),
        };
        rec.gauge(
            "elasticmap_memory_bytes",
            Domain::Wall,
            rec.wall_us(),
            out.memory_bytes() as f64,
        );
        rec.gauge(
            "bloom_design_fpr",
            Domain::Wall,
            rec.wall_us(),
            BLOOM_EPSILON,
        );
        out
    }

    /// Sequential build (for benchmarking the parallel speedup).
    pub fn build_sequential(dfs: &Dfs, policy: &Separation) -> Self {
        let maps = dfs
            .blocks()
            .iter()
            .map(|b| ElasticMap::build(b, policy))
            .collect();
        Self {
            maps,
            policy: policy.clone(),
        }
    }

    /// The separation policy the array was built with.
    pub fn policy(&self) -> &Separation {
        &self.policy
    }

    /// Number of per-block maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The map for one block.
    pub fn map(&self, b: BlockId) -> &ElasticMap {
        &self.maps[b.index()]
    }

    /// All per-block maps in block order.
    pub fn maps(&self) -> &[ElasticMap] {
        &self.maps
    }

    /// Query one `(block, sub-dataset)` cell.
    pub fn query(&self, b: BlockId, s: SubDatasetId) -> SizeInfo {
        self.map(b).query(s)
    }

    /// Collect the distribution view of one sub-dataset across all blocks:
    /// τ₁ (exact blocks with sizes), τ₂ (bloom-only blocks) and δ.
    pub fn view(&self, s: SubDatasetId) -> SubDatasetView {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        for m in &self.maps {
            match m.query(s) {
                SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                SizeInfo::Approximate => {
                    bloom.push(m.block());
                    delta_hint = delta_hint.min(m.bloom_delta_hint());
                }
                SizeInfo::Absent => {}
            }
        }
        SubDatasetView::new(s, exact, bloom, delta_hint)
    }

    /// Total measured meta-data bytes across all blocks.
    pub fn memory_bytes(&self) -> usize {
        self.maps.iter().map(|m| m.memory_bytes()).sum()
    }

    /// Raw-data : meta-data ratio measured on the actual structures (the
    /// empirical counterpart of Table II's "representation ratio").
    pub fn representation_ratio(&self, dfs: &Dfs) -> f64 {
        let meta = self.memory_bytes();
        assert!(meta > 0, "meta-data must be non-empty");
        dfs.total_bytes() as f64 / meta as f64
    }

    /// The paper's overall accuracy metric χ (Section V-B): compares the
    /// Equation 6 estimate of *every* sub-dataset (via the union view) with
    /// the raw data size:
    /// `χ = 1 − |Σ_s estimate(s) − raw| / raw`.
    pub fn accuracy(&self, dfs: &Dfs) -> f64 {
        let raw = dfs.total_bytes();
        assert!(raw > 0, "accuracy undefined on an empty dataset");
        // Estimated total = Σ over blocks of (Σ exact entries + δ·bloom_len).
        let est: f64 = self
            .maps
            .iter()
            .map(|m| {
                let exact: u64 = m.exact_entries().map(|(_, s)| s).sum();
                let delta = m.bloom_delta_hint();
                exact as f64 + delta as f64 * m.bloom_len() as f64
            })
            .sum();
        1.0 - (est - raw as f64).abs() / raw as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{DfsConfig, Record, Topology};

    /// 12 blocks; sub-dataset 7 is heavily clustered in the first blocks.
    fn clustered_dfs() -> Dfs {
        let mut recs = Vec::new();
        for i in 0..3000u64 {
            // Sub-dataset 7 dominates early timestamps, then tapers off.
            let s = if i % 3 == 0 && i < 900 {
                7
            } else {
                i % 40 + 10
            };
            recs.push(Record::new(SubDatasetId(s), i, 100, i));
        }
        let cfg = DfsConfig {
            block_size: 25_000,
            replication: 3,
            topology: Topology::single_rack(8),
            seed: 5,
        };
        Dfs::write_random(cfg, recs)
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let dfs = clustered_dfs();
        let par = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let seq = ElasticMapArray::build_sequential(&dfs, &Separation::Alpha(0.3));
        assert_eq!(par.len(), seq.len());
        for b in dfs.blocks() {
            for s in 0..60u64 {
                assert_eq!(
                    par.query(b.id(), SubDatasetId(s)),
                    seq.query(b.id(), SubDatasetId(s))
                );
            }
        }
    }

    #[test]
    fn view_partitions_blocks() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let v = arr.view(SubDatasetId(7));
        // τ1 and τ2 are disjoint and within the block range.
        for (b, _) in v.exact() {
            assert!(!v.bloom().contains(b));
            assert!(b.index() < dfs.block_count());
        }
        // Sub-dataset 7 exists: the view must see it somewhere.
        assert!(!v.exact().is_empty() || !v.bloom().is_empty());
    }

    #[test]
    fn all_policy_view_matches_ground_truth_exactly() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        for s in [7u64, 10, 25, 49] {
            let v = arr.view(SubDatasetId(s));
            assert_eq!(v.estimated_total(), dfs.subdataset_total(SubDatasetId(s)));
            assert!(v.bloom().is_empty());
        }
    }

    #[test]
    fn accuracy_is_perfect_under_all_policy() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let chi = arr.accuracy(&dfs);
        assert!((chi - 1.0).abs() < 1e-9, "χ = {chi}");
    }

    #[test]
    fn accuracy_degrades_and_ratio_grows_as_alpha_drops() {
        // Table II's two trends, measured on real structures.
        let dfs = clustered_dfs();
        let hi = ElasticMapArray::build(&dfs, &Separation::Alpha(0.51));
        let lo = ElasticMapArray::build(&dfs, &Separation::Alpha(0.21));
        assert!(hi.accuracy(&dfs) >= lo.accuracy(&dfs));
        assert!(hi.representation_ratio(&dfs) <= lo.representation_ratio(&dfs));
        for arr in [&hi, &lo] {
            let chi = arr.accuracy(&dfs);
            assert!((0.0..=1.0 + 1e-9).contains(&chi), "χ = {chi}");
        }
    }

    #[test]
    fn measured_bloom_fpr_stays_within_twice_design_rate() {
        use crate::elasticmap::BLOOM_EPSILON;
        let dfs = clustered_dfs();
        // A low α pushes most sub-datasets into the bloom tail, so truth-0
        // blocks really are bloom probes.
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.21));
        let mut false_positives = 0.0;
        let mut negatives = 0.0;
        // Present ids (10..50) measure FPR over the blocks that miss them;
        // absent ids (1000..1100) are all-negative probes.
        for s in (10..50u64).chain(1000..1100) {
            let truth = dfs.subdataset_distribution(SubDatasetId(s));
            let view = arr.view(SubDatasetId(s));
            let n = truth.iter().filter(|&&t| t == 0).count() as f64;
            if let Some(fpr) = view.measured_bloom_fpr(&truth) {
                false_positives += fpr * n;
                negatives += n;
            }
        }
        assert!(negatives > 500.0, "need a real probe population");
        let measured = false_positives / negatives;
        assert!(
            measured <= 2.0 * BLOOM_EPSILON,
            "measured bloom FPR {measured} exceeds twice the design rate {BLOOM_EPSILON}"
        );
    }

    #[test]
    fn traced_build_matches_untraced_and_records_scans() {
        use datanet_obs::Recorder;
        let dfs = clustered_dfs();
        let rec = Recorder::new();
        let traced = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(0.3), &rec);
        let plain = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        for b in dfs.blocks() {
            for s in 0..60u64 {
                assert_eq!(
                    traced.query(b.id(), SubDatasetId(s)),
                    plain.query(b.id(), SubDatasetId(s))
                );
            }
        }
        let data = rec.take();
        assert_eq!(data.unclosed_spans(), 0);
        let scans = data.spans.iter().filter(|s| s.name == "scan").count();
        assert_eq!(scans, dfs.block_count(), "one scan span per block");
        assert_eq!(data.counters["blocks_scanned"], dfs.block_count() as u64);
        assert!(data
            .gauges
            .iter()
            .any(|g| g.name == "elasticmap_memory_bytes" && g.value > 0.0));
    }

    #[test]
    fn absent_subdataset_views_empty() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let v = arr.view(SubDatasetId(999_999));
        assert!(v.exact().is_empty());
        // Bloom false positives are possible but rare: allow ≤ 2 blocks.
        assert!(v.bloom().len() <= 2);
    }
}
