//! Single-scan construction of the per-block ElasticMap array
//! (Section III-B: "only a single scan of the raw data is needed for the
//! meta-data construction").
//!
//! Each block's ElasticMap is independent, so the scan parallelises
//! trivially across blocks. The build is **sharded**: blocks are split
//! into fixed-size chunks, each worker builds a partial map vector plus a
//! chunk-local [`SymbolTable`] of the dominant ids it saw, and the shards
//! are merged lock-free at the end by simple concatenation in chunk order.
//! Because symbols are assigned in first-appearance order and chunks are
//! merged in block order, the sharded build is byte-identical to the
//! serial one — no worker count or scheduling order leaks into the output.

use crate::distribution::SubDatasetView;
use crate::elasticmap::{ElasticMap, Separation, SizeInfo, BLOOM_EPSILON};
use crate::symbol::SymbolTable;
use datanet_dfs::{Block, BlockId, Dfs, SubDatasetId};
use datanet_obs::{Category, Domain, Recorder, SpanCtx};
use rayon::prelude::*;
use serde::{DeError, Deserialize, Serialize, Value};

/// Blocks per build shard. Small enough to load-balance across workers,
/// large enough that the per-shard symbol tables amortise their merge.
pub(crate) const SHARD_BLOCKS: usize = 16;

/// The DataNet meta-data structure over all blocks (the paper's Figure 3:
/// an array with one ElasticMap pointer per block file).
#[derive(Debug, Clone)]
pub struct ElasticMapArray {
    maps: Vec<ElasticMap>,
    policy: Separation,
    /// Every **dominant** (exactly-stored) sub-dataset id, interned in
    /// block-major first-appearance order. Bloom-tail ids are not listed —
    /// a bloom filter cannot be enumerated. Lets planner-side code test
    /// "does this id have exact bytes anywhere?" without touching a map.
    symbols: SymbolTable,
}

impl ElasticMapArray {
    /// Build the array with one sharded parallel scan over the DFS blocks.
    pub fn build(dfs: &Dfs, policy: &Separation) -> Self {
        Self::build_traced(dfs, policy, &Recorder::off())
    }

    /// [`ElasticMapArray::build`] with a [`Recorder`] attached: one
    /// wall-clock `build` span around the whole sharded scan, one `scan`
    /// span per block (emitted concurrently from the workers — the
    /// recorder is `Sync`), and gauges for the resulting meta-data memory
    /// footprint and the bloom design false-positive rate. With a disabled
    /// recorder this is exactly [`ElasticMapArray::build`].
    pub fn build_traced(dfs: &Dfs, policy: &Separation, rec: &Recorder) -> Self {
        let build = rec.begin(
            Category::Build,
            "build",
            Domain::Wall,
            rec.wall_us(),
            SpanCtx::default().note(format!("{} blocks", dfs.block_count())),
        );
        let chunks: Vec<&[Block]> = dfs.blocks().chunks(SHARD_BLOCKS).collect();
        let shards: Vec<(Vec<ElasticMap>, SymbolTable)> = chunks
            .par_iter()
            .map(|chunk| {
                let mut maps = Vec::with_capacity(chunk.len());
                let mut symbols = SymbolTable::new();
                for b in chunk.iter() {
                    let span = rec.begin(
                        Category::Scan,
                        "scan",
                        Domain::Wall,
                        rec.wall_us(),
                        SpanCtx::default().block(b.id().index() as u64),
                    );
                    let map = ElasticMap::build(b, policy);
                    rec.end(span, rec.wall_us());
                    for (id, _) in map.exact_entries() {
                        symbols.intern(id);
                    }
                    maps.push(map);
                }
                (maps, symbols)
            })
            .collect();
        // Lock-free merge: shard results arrive fully built; concatenating
        // them in chunk order reproduces the serial first-appearance order.
        let mut maps = Vec::with_capacity(dfs.block_count());
        let mut symbols = SymbolTable::new();
        for (shard_maps, shard_symbols) in shards {
            maps.extend(shard_maps);
            for &id in shard_symbols.ids() {
                symbols.intern(id);
            }
        }
        rec.end(build, rec.wall_us());
        rec.add("blocks_scanned", maps.len() as u64);
        let out = Self {
            maps,
            policy: policy.clone(),
            symbols,
        };
        rec.gauge(
            "elasticmap_memory_bytes",
            Domain::Wall,
            rec.wall_us(),
            out.memory_bytes() as f64,
        );
        rec.gauge(
            "bloom_design_fpr",
            Domain::Wall,
            rec.wall_us(),
            BLOOM_EPSILON,
        );
        rec.gauge(
            "symbol_table_len",
            Domain::Wall,
            rec.wall_us(),
            out.symbols.len() as f64,
        );
        out
    }

    /// Assemble an array from already-built per-block maps (block order).
    /// The symbol table is re-interned from the maps' exact entries in
    /// block-major first-appearance order, exactly as deserialization does,
    /// so an array assembled from incrementally-sealed maps is
    /// indistinguishable — bytes and symbols — from a from-scratch build
    /// that produced the same maps.
    pub fn from_maps(maps: Vec<ElasticMap>, policy: Separation) -> Self {
        let mut symbols = SymbolTable::new();
        for m in &maps {
            for (id, _) in m.exact_entries() {
                symbols.intern(id);
            }
        }
        Self {
            maps,
            policy,
            symbols,
        }
    }

    /// Strictly sequential build (for benchmarking the sharded speedup).
    pub fn build_sequential(dfs: &Dfs, policy: &Separation) -> Self {
        let mut symbols = SymbolTable::new();
        let maps: Vec<ElasticMap> = dfs
            .blocks()
            .iter()
            .map(|b| {
                let map = ElasticMap::build(b, policy);
                for (id, _) in map.exact_entries() {
                    symbols.intern(id);
                }
                map
            })
            .collect();
        Self {
            maps,
            policy: policy.clone(),
            symbols,
        }
    }

    /// The separation policy the array was built with.
    pub fn policy(&self) -> &Separation {
        &self.policy
    }

    /// The interned dominant-id table (block-major first-appearance order).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of per-block maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The map for one block.
    pub fn map(&self, b: BlockId) -> &ElasticMap {
        &self.maps[b.index()]
    }

    /// All per-block maps in block order.
    pub fn maps(&self) -> &[ElasticMap] {
        &self.maps
    }

    /// Query one `(block, sub-dataset)` cell.
    pub fn query(&self, b: BlockId, s: SubDatasetId) -> SizeInfo {
        self.map(b).query(s)
    }

    /// Batched [`ElasticMapArray::query`] against one block: one answer per
    /// input id, in input order (see [`ElasticMap::query_batch`]).
    pub fn query_batch(&self, b: BlockId, ids: &[SubDatasetId]) -> Vec<SizeInfo> {
        self.map(b).query_batch(ids)
    }

    /// Collect the distribution view of one sub-dataset across all blocks:
    /// τ₁ (exact blocks with sizes), τ₂ (bloom-only blocks) and δ.
    pub fn view(&self, s: SubDatasetId) -> SubDatasetView {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        for m in &self.maps {
            match m.query(s) {
                SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                SizeInfo::Approximate => {
                    bloom.push(m.block());
                    delta_hint = delta_hint.min(m.bloom_delta_hint());
                }
                SizeInfo::Absent => {}
            }
        }
        SubDatasetView::new(s, exact, bloom, delta_hint)
    }

    /// Batched [`ElasticMapArray::view`]: one view per input id, in input
    /// order, bit-identical to N single `view` calls. Instead of walking
    /// the whole array once per id, this walks it **once total**, feeding
    /// each block's map a sorted id list so the exact side resolves by
    /// merge-join ([`ElasticMap::query_batch`]) — the amortisation the
    /// planner batch entry points rely on.
    pub fn views(&self, ids: &[SubDatasetId]) -> Vec<SubDatasetView> {
        // Sort the probe list once (tracking input positions) so every
        // per-map batch query takes the merge-join fast path.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by_key(|&i| ids[i]);
        let sorted: Vec<SubDatasetId> = order.iter().map(|&i| ids[i]).collect();
        let mut exact: Vec<Vec<(BlockId, u64)>> = vec![Vec::new(); ids.len()];
        let mut bloom: Vec<Vec<BlockId>> = vec![Vec::new(); ids.len()];
        let mut delta: Vec<u64> = vec![u64::MAX; ids.len()];
        for m in &self.maps {
            for (k, info) in m.query_batch(&sorted).into_iter().enumerate() {
                let i = order[k];
                match info {
                    SizeInfo::Exact(sz) => exact[i].push((m.block(), sz)),
                    SizeInfo::Approximate => {
                        bloom[i].push(m.block());
                        delta[i] = delta[i].min(m.bloom_delta_hint());
                    }
                    SizeInfo::Absent => {}
                }
            }
        }
        let mut views = Vec::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            views.push(SubDatasetView::new(
                id,
                std::mem::take(&mut exact[i]),
                std::mem::take(&mut bloom[i]),
                delta[i],
            ));
        }
        views
    }

    /// Total measured meta-data bytes across all blocks.
    pub fn memory_bytes(&self) -> usize {
        self.maps.iter().map(|m| m.memory_bytes()).sum()
    }

    /// Raw-data : meta-data ratio measured on the actual structures (the
    /// empirical counterpart of Table II's "representation ratio").
    pub fn representation_ratio(&self, dfs: &Dfs) -> f64 {
        let meta = self.memory_bytes();
        assert!(meta > 0, "meta-data must be non-empty");
        dfs.total_bytes() as f64 / meta as f64
    }

    /// The paper's overall accuracy metric χ (Section V-B): compares the
    /// Equation 6 estimate of *every* sub-dataset (via the union view) with
    /// the raw data size:
    /// `χ = 1 − |Σ_s estimate(s) − raw| / raw`.
    pub fn accuracy(&self, dfs: &Dfs) -> f64 {
        let raw = dfs.total_bytes();
        assert!(raw > 0, "accuracy undefined on an empty dataset");
        // Estimated total = Σ over blocks of (Σ exact entries + δ·bloom_len).
        let est: f64 = self
            .maps
            .iter()
            .map(|m| {
                let exact: u64 = m.exact_entries().map(|(_, s)| s).sum();
                let delta = m.bloom_delta_hint();
                exact as f64 + delta as f64 * m.bloom_len() as f64
            })
            .sum();
        1.0 - (est - raw as f64).abs() / raw as f64
    }
}

// The symbol table is derived data (rebuildable from the maps), so the
// serialized form stays exactly the PR 2 shape — `{maps, policy}` — and
// old stores load without a migration: the table is re-interned on decode.
impl Serialize for ElasticMapArray {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("maps".to_string(), self.maps.to_value()),
            ("policy".to_string(), self.policy.to_value()),
        ])
    }
}

impl Deserialize for ElasticMapArray {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("elastic map array object", v));
        }
        let maps = Vec::<ElasticMap>::from_value(
            v.get("maps")
                .ok_or_else(|| DeError::msg("elastic map array missing field `maps`"))?,
        )?;
        let policy = Separation::from_value(
            v.get("policy")
                .ok_or_else(|| DeError::msg("elastic map array missing field `policy`"))?,
        )?;
        let mut symbols = SymbolTable::new();
        for m in &maps {
            for (id, _) in m.exact_entries() {
                symbols.intern(id);
            }
        }
        Ok(Self {
            maps,
            policy,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{DfsConfig, Record, Topology};

    /// 12 blocks; sub-dataset 7 is heavily clustered in the first blocks.
    fn clustered_dfs() -> Dfs {
        let mut recs = Vec::new();
        for i in 0..3000u64 {
            // Sub-dataset 7 dominates early timestamps, then tapers off.
            let s = if i % 3 == 0 && i < 900 {
                7
            } else {
                i % 40 + 10
            };
            recs.push(Record::new(SubDatasetId(s), i, 100, i));
        }
        let cfg = DfsConfig {
            block_size: 25_000,
            replication: 3,
            topology: Topology::single_rack(8),
            seed: 5,
        };
        Dfs::write_random(cfg, recs)
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let dfs = clustered_dfs();
        let par = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let seq = ElasticMapArray::build_sequential(&dfs, &Separation::Alpha(0.3));
        assert_eq!(par.len(), seq.len());
        for b in dfs.blocks() {
            for s in 0..60u64 {
                assert_eq!(
                    par.query(b.id(), SubDatasetId(s)),
                    seq.query(b.id(), SubDatasetId(s))
                );
            }
        }
    }

    #[test]
    fn sharded_build_is_byte_identical_to_sequential() {
        let dfs = clustered_dfs();
        let par = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let seq = ElasticMapArray::build_sequential(&dfs, &Separation::Alpha(0.3));
        assert_eq!(
            serde_json::to_string(&par).unwrap(),
            serde_json::to_string(&seq).unwrap()
        );
        assert_eq!(par.symbols(), seq.symbols());
    }

    #[test]
    fn symbol_table_lists_exactly_the_dominant_ids() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        // Every exact entry's id is interned; bloom-only ids are not
        // guaranteed to be (and an id exact in no block must not be).
        for m in arr.maps() {
            for (id, _) in m.exact_entries() {
                assert!(arr.symbols().lookup(id).is_some(), "{id} missing");
            }
        }
        assert!(arr.symbols().lookup(SubDatasetId(999_999)).is_none());
        // Serde round-trip re-derives the same table.
        let json = serde_json::to_string(&arr).unwrap();
        let back: ElasticMapArray = serde_json::from_str(&json).unwrap();
        assert_eq!(arr.symbols(), back.symbols());
    }

    #[test]
    fn view_partitions_blocks() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let v = arr.view(SubDatasetId(7));
        // τ1 and τ2 are disjoint and within the block range.
        for (b, _) in v.exact() {
            assert!(!v.bloom().contains(b));
            assert!(b.index() < dfs.block_count());
        }
        // Sub-dataset 7 exists: the view must see it somewhere.
        assert!(!v.exact().is_empty() || !v.bloom().is_empty());
    }

    #[test]
    fn batched_views_match_single_views_bit_for_bit() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        // Unsorted, with duplicates, with absent ids.
        let ids: Vec<SubDatasetId> = [49u64, 7, 10, 999_999, 7, 25, 0]
            .iter()
            .map(|&i| SubDatasetId(i))
            .collect();
        let batch = arr.views(&ids);
        assert_eq!(batch.len(), ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let single = arr.view(id);
            assert_eq!(
                serde_json::to_string(&batch[i]).unwrap(),
                serde_json::to_string(&single).unwrap(),
                "view mismatch for {id}"
            );
        }
        assert!(arr.views(&[]).is_empty());
    }

    #[test]
    fn all_policy_view_matches_ground_truth_exactly() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        for s in [7u64, 10, 25, 49] {
            let v = arr.view(SubDatasetId(s));
            assert_eq!(v.estimated_total(), dfs.subdataset_total(SubDatasetId(s)));
            assert!(v.bloom().is_empty());
        }
    }

    #[test]
    fn accuracy_is_perfect_under_all_policy() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::All);
        let chi = arr.accuracy(&dfs);
        assert!((chi - 1.0).abs() < 1e-9, "χ = {chi}");
    }

    #[test]
    fn accuracy_degrades_and_ratio_grows_as_alpha_drops() {
        // Table II's two trends, measured on real structures.
        let dfs = clustered_dfs();
        let hi = ElasticMapArray::build(&dfs, &Separation::Alpha(0.51));
        let lo = ElasticMapArray::build(&dfs, &Separation::Alpha(0.21));
        assert!(hi.accuracy(&dfs) >= lo.accuracy(&dfs));
        assert!(hi.representation_ratio(&dfs) <= lo.representation_ratio(&dfs));
        for arr in [&hi, &lo] {
            let chi = arr.accuracy(&dfs);
            assert!((0.0..=1.0 + 1e-9).contains(&chi), "χ = {chi}");
        }
    }

    #[test]
    fn measured_bloom_fpr_stays_within_twice_design_rate() {
        use crate::elasticmap::BLOOM_EPSILON;
        let dfs = clustered_dfs();
        // A low α pushes most sub-datasets into the bloom tail, so truth-0
        // blocks really are bloom probes.
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.21));
        let mut false_positives = 0.0;
        let mut negatives = 0.0;
        // Present ids (10..50) measure FPR over the blocks that miss them;
        // absent ids (1000..1100) are all-negative probes.
        for s in (10..50u64).chain(1000..1100) {
            let truth = dfs.subdataset_distribution(SubDatasetId(s));
            let view = arr.view(SubDatasetId(s));
            let n = truth.iter().filter(|&&t| t == 0).count() as f64;
            if let Some(fpr) = view.measured_bloom_fpr(&truth) {
                false_positives += fpr * n;
                negatives += n;
            }
        }
        assert!(negatives > 500.0, "need a real probe population");
        let measured = false_positives / negatives;
        assert!(
            measured <= 2.0 * BLOOM_EPSILON,
            "measured bloom FPR {measured} exceeds twice the design rate {BLOOM_EPSILON}"
        );
    }

    #[test]
    fn traced_build_matches_untraced_and_records_scans() {
        use datanet_obs::Recorder;
        let dfs = clustered_dfs();
        let rec = Recorder::new();
        let traced = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(0.3), &rec);
        let plain = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        for b in dfs.blocks() {
            for s in 0..60u64 {
                assert_eq!(
                    traced.query(b.id(), SubDatasetId(s)),
                    plain.query(b.id(), SubDatasetId(s))
                );
            }
        }
        let data = rec.take();
        assert_eq!(data.unclosed_spans(), 0);
        let scans = data.spans.iter().filter(|s| s.name == "scan").count();
        assert_eq!(scans, dfs.block_count(), "one scan span per block");
        assert_eq!(data.counters["blocks_scanned"], dfs.block_count() as u64);
        assert!(data
            .gauges
            .iter()
            .any(|g| g.name == "elasticmap_memory_bytes" && g.value > 0.0));
        assert!(data
            .gauges
            .iter()
            .any(|g| g.name == "symbol_table_len" && g.value > 0.0));
    }

    #[test]
    fn absent_subdataset_views_empty() {
        let dfs = clustered_dfs();
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.3));
        let v = arr.view(SubDatasetId(999_999));
        assert!(v.exact().is_empty());
        // Bloom false positives are possible but rare: allow ≤ 2 blocks.
        assert!(v.bloom().len() <= 2);
    }
}
