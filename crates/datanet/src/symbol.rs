//! Interned sub-dataset symbols and the fast integer hasher used on the
//! metadata hot path.
//!
//! Sub-dataset identifiers arrive as sparse 64-bit values ([`SubDatasetId`]
//! wraps whatever the workload generator hands out — movie ids, event-type
//! codes, URL hashes). The scan/build/query path touches them millions of
//! times, and Rust's default `HashMap` runs every touch through SipHash-1-3,
//! a keyed hash whose DoS resistance buys nothing here: the ids come from
//! our own storage layer, not an adversary. Two fixes, composed:
//!
//! * [`FxHasher64`] — the Firefox/rustc multiply-rotate hash (a single
//!   multiply per word instead of SipHash's rounds). [`FastMap`] is a
//!   drop-in `HashMap` alias using it.
//! * [`SymbolTable`] — interns the sparse ids into dense `u32` [`Sym`]s in
//!   deterministic first-appearance order, so planner-side structures can
//!   index arrays instead of hashing at all.

use datanet_dfs::SubDatasetId;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash: the rustc/Firefox hash. One `wrapping_mul` + rotate per 8 bytes;
/// ~10× cheaper than SipHash on integer keys and plenty well-distributed
/// for non-adversarial ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

/// The Fx multiplier: 2^64 / φ, an odd constant that spreads consecutive
/// integers across the whole word.
const FX_SEED: u64 = 0x517C_C1B7_2722_0A95;

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed by the fast integer hash — the hot-path replacement
/// for `std::collections::HashMap`'s SipHash default.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A dense interned handle for one sub-dataset: an index into the
/// [`SymbolTable`] that assigned it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// Bidirectional intern table: sparse [`SubDatasetId`] ⇄ dense [`Sym`].
///
/// Symbols are assigned in **first-appearance order**, so two builds that
/// present the same ids in the same order produce identical tables — the
/// property the sharded ElasticMap build relies on for byte-identical
/// output (chunk results are merged in block order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    /// `ids[sym.0]` — symbol to id.
    ids: Vec<SubDatasetId>,
    /// Id to symbol.
    index: FastMap<SubDatasetId, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Intern `id`, returning its (new or existing) symbol.
    ///
    /// # Panics
    /// Panics beyond `u32::MAX` distinct ids.
    pub fn intern(&mut self, id: SubDatasetId) -> Sym {
        if let Some(&sym) = self.index.get(&id) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.ids.len()).expect("more than u32::MAX sub-datasets"));
        self.ids.push(id);
        self.index.insert(id, sym);
        sym
    }

    /// The symbol of an already-interned id.
    pub fn lookup(&self, id: SubDatasetId) -> Option<Sym> {
        self.index.get(&id).copied()
    }

    /// The id behind a symbol.
    ///
    /// # Panics
    /// Panics if `sym` was minted by a different table.
    pub fn resolve(&self, sym: Sym) -> SubDatasetId {
        self.ids[sym.0 as usize]
    }

    /// All interned ids in symbol order.
    pub fn ids(&self) -> &[SubDatasetId] {
        &self.ids
    }

    /// Approximate heap footprint: the id vector plus the index entries.
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * (std::mem::size_of::<SubDatasetId>() + 12)
    }
}

// The table is fully determined by the id list (symbols are positions), so
// it serializes as a bare array and rebuilds the index on the way in.
impl Serialize for SymbolTable {
    fn to_value(&self) -> Value {
        Value::Array(self.ids.iter().map(|id| Value::U64(id.0)).collect())
    }
}

impl Deserialize for SymbolTable {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let raw = Vec::<u64>::from_value(v)?;
        let mut table = Self::new();
        for id in raw {
            table.intern(SubDatasetId(id));
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern(SubDatasetId(1_000_000));
        let b = t.intern(SubDatasetId(7));
        let a2 = t.intern(SubDatasetId(1_000_000));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1), "symbols are dense, first-appearance");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), SubDatasetId(1_000_000));
        assert_eq!(t.lookup(SubDatasetId(7)), Some(b));
        assert_eq!(t.lookup(SubDatasetId(8)), None);
    }

    #[test]
    fn first_appearance_order_is_deterministic() {
        let ids = [5u64, 3, 5, 99, 3, 0];
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        for &i in &ids {
            t1.intern(SubDatasetId(i));
        }
        for &i in &ids {
            t2.intern(SubDatasetId(i));
        }
        assert_eq!(t1, t2);
        assert_eq!(
            t1.ids(),
            &[
                SubDatasetId(5),
                SubDatasetId(3),
                SubDatasetId(99),
                SubDatasetId(0)
            ]
        );
    }

    #[test]
    fn serde_roundtrip_preserves_symbols() {
        let mut t = SymbolTable::new();
        for i in [9u64, 2, 77, 2, 13] {
            t.intern(SubDatasetId(i));
        }
        let json = serde_json::to_string(&t).unwrap();
        let back: SymbolTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.lookup(SubDatasetId(77)), Some(Sym(2)));
    }

    #[test]
    fn fast_hasher_distributes_and_agrees_with_itself() {
        // Same key, same hash; different keys, (almost certainly) different
        // buckets — a smoke test, not a statistical claim.
        let mut m: FastMap<SubDatasetId, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(SubDatasetId(i * 0x9E37_79B9), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&SubDatasetId(i * 0x9E37_79B9)), Some(&i));
        }
    }
}
