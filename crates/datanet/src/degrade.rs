//! The metadata degradation ladder: what schedulers fall back to when a
//! block's ElasticMap is unreadable.
//!
//! The paper's scheduler is only as good as its meta-data (Section V-B-1
//! anticipates it "distributed among multiple machines" — exactly where
//! loss and corruption live). Rather than fail the whole selection when a
//! shard dies, DataNet steps down a ladder, per block:
//!
//! 1. **Exact** — the shard is readable; τ₁ blocks carry exact
//!    `|s ∩ b|` sizes (Equation 6's first term).
//! 2. **Bloom** — only approximate membership is known: either the block
//!    sat on the bloom side of a healthy shard (normal τ₂ operation), or
//!    the full shard is lost and a bloom-only *summary sidecar* answered
//!    instead. Weighted by δ (Equation 6's `δ·|τ₂|` term).
//! 3. **Fallback** — shard *and* summary are gone: membership itself is
//!    unknown, so the block cannot be skipped and is scheduled by the
//!    locality baseline.
//!
//! [`MetaHealth`] carries the accounting into execution reports: every
//! quarantined shard and every rung-2/rung-3 block shows up there, never
//! silently.

use crate::distribution::SubDatasetView;
use datanet_dfs::BlockId;
use serde::{Deserialize, Serialize};

/// Which rung of the degradation ladder served a block's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rung {
    /// Rung 1: exact hash-map size (τ₁).
    Exact,
    /// Rung 2: bloom membership only, weighted by δ (τ₂) — from a healthy
    /// shard's bloom side or a summary sidecar of a lost shard.
    Bloom,
    /// Rung 3: metadata unavailable; locality-baseline placement.
    Fallback,
}

/// Where each shard's metadata came from when assembling a degraded view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardSource {
    /// The full shard was readable (possibly after replica failover).
    Full,
    /// Every full copy failed; the bloom-only summary sidecar answered.
    Summary,
    /// Shard and summary both lost: its blocks dropped to rung 3.
    Lost,
}

/// Per-rung block counts, the `Report` breakdown the ladder promises.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RungCounts {
    /// Blocks with exact sizes (rung 1).
    pub exact: usize,
    /// Blocks with bloom-only membership (rung 2).
    pub bloom: usize,
    /// Blocks with no metadata at all (rung 3).
    pub fallback: usize,
}

impl RungCounts {
    /// Total blocks the ladder had to place.
    pub fn total(&self) -> usize {
        self.exact + self.bloom + self.fallback
    }

    /// Whether any block fell below rung 1.
    pub fn any_degraded(&self) -> bool {
        self.bloom > 0 || self.fallback > 0
    }
}

/// A sub-dataset view assembled under metadata failures.
///
/// The inner [`SubDatasetView`] holds everything rungs 1–2 know (τ₁ exact
/// sizes, τ₂ bloom membership, δ); `unknown` lists the rung-3 blocks whose
/// shards were irrecoverable — membership there is unknowable, so a correct
/// selection must still scan them.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedView {
    view: SubDatasetView,
    unknown: Vec<BlockId>,
    sources: Vec<ShardSource>,
}

impl DegradedView {
    /// Assemble from the parts a degraded store read produced.
    pub fn new(view: SubDatasetView, mut unknown: Vec<BlockId>, sources: Vec<ShardSource>) -> Self {
        unknown.sort_unstable();
        unknown.dedup();
        Self {
            view,
            unknown,
            sources,
        }
    }

    /// The rung-1/rung-2 view (τ₁ + τ₂ + δ).
    pub fn view(&self) -> &SubDatasetView {
        &self.view
    }

    /// Rung-3 blocks: shards lost beyond repair, membership unknown.
    pub fn unknown_blocks(&self) -> &[BlockId] {
        &self.unknown
    }

    /// Per-shard provenance, indexed by shard.
    pub fn shard_sources(&self) -> &[ShardSource] {
        &self.sources
    }

    /// Which rung a block's metadata came from; `None` when the block is
    /// known not to contain the sub-dataset (skippable).
    pub fn rung_of(&self, b: BlockId) -> Option<Rung> {
        if self
            .view
            .exact()
            .binary_search_by_key(&b, |&(blk, _)| blk)
            .is_ok()
        {
            return Some(Rung::Exact);
        }
        if self.view.bloom().binary_search(&b).is_ok() {
            return Some(Rung::Bloom);
        }
        if self.unknown.binary_search(&b).is_ok() {
            return Some(Rung::Fallback);
        }
        None
    }

    /// Block counts per rung.
    pub fn rung_counts(&self) -> RungCounts {
        RungCounts {
            exact: self.view.exact().len(),
            bloom: self.view.bloom().len(),
            fallback: self.unknown.len(),
        }
    }

    /// Whether every shard answered in full (pure rung-1 view).
    pub fn is_healthy(&self) -> bool {
        self.sources.iter().all(|s| *s == ShardSource::Full)
    }
}

/// Metadata-plane health accounting, carried into execution reports.
///
/// All-zero ([`MetaHealth::default`]) means the metadata plane never
/// degraded: every shard read exactly, nothing scrubbed, repaired or
/// quarantined.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaHealth {
    /// Shards examined by `scrub()` passes.
    pub shards_scrubbed: usize,
    /// Bad shard copies rewritten from a healthy replica.
    pub shards_repaired: usize,
    /// Shards with no healthy full copy anywhere (reads fail fast).
    pub shards_quarantined: usize,
    /// Bad summary sidecar copies rewritten from a healthy replica.
    pub summaries_repaired: usize,
    /// Reads rejected by CRC verification.
    pub checksum_failures: usize,
    /// Reads that failed at the I/O or decode layer.
    pub io_failures: usize,
    /// Same-replica retry attempts after a failed read.
    pub retries: usize,
    /// Fail-overs to another replica directory.
    pub failovers: usize,
    /// Blocks scheduled per ladder rung during the last selection.
    pub rungs: RungCounts,
    /// `|estimate − actual| / actual` of the (possibly degraded) Equation 6
    /// estimate driving the scheduler; compare against a healthy run's
    /// error to isolate the degradation-attributable part.
    pub est_error: f64,
}

impl MetaHealth {
    /// Whether the metadata plane saw any trouble at all.
    pub fn any(&self) -> bool {
        self.shards_repaired > 0
            || self.shards_quarantined > 0
            || self.summaries_repaired > 0
            || self.checksum_failures > 0
            || self.io_failures > 0
            || self.retries > 0
            || self.failovers > 0
            || self.rungs.any_degraded()
    }

    /// Fold another accounting (e.g. a store's counters) into this one.
    /// Rung counts and estimator error are taken from `other` when it has
    /// any (the store knows reads; the engine knows scheduling).
    pub fn absorb(&mut self, other: &MetaHealth) {
        self.shards_scrubbed += other.shards_scrubbed;
        self.shards_repaired += other.shards_repaired;
        self.shards_quarantined += other.shards_quarantined;
        self.summaries_repaired += other.summaries_repaired;
        self.checksum_failures += other.checksum_failures;
        self.io_failures += other.io_failures;
        self.retries += other.retries;
        self.failovers += other.failovers;
        if other.rungs.total() > 0 {
            self.rungs = other.rungs;
        }
        if other.est_error != 0.0 {
            self.est_error = other.est_error;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::SubDatasetId;

    fn degraded() -> DegradedView {
        let view = SubDatasetView::new(
            SubDatasetId(1),
            vec![(BlockId(0), 500), (BlockId(2), 900)],
            vec![BlockId(4), BlockId(5)],
            u64::MAX,
        );
        DegradedView::new(
            view,
            vec![BlockId(7), BlockId(6), BlockId(7)],
            vec![ShardSource::Full, ShardSource::Summary, ShardSource::Lost],
        )
    }

    #[test]
    fn rung_classification() {
        let d = degraded();
        assert_eq!(d.rung_of(BlockId(0)), Some(Rung::Exact));
        assert_eq!(d.rung_of(BlockId(2)), Some(Rung::Exact));
        assert_eq!(d.rung_of(BlockId(4)), Some(Rung::Bloom));
        assert_eq!(d.rung_of(BlockId(6)), Some(Rung::Fallback));
        assert_eq!(d.rung_of(BlockId(7)), Some(Rung::Fallback));
        assert_eq!(d.rung_of(BlockId(1)), None, "known-absent is skippable");
        assert!(!d.is_healthy());
    }

    #[test]
    fn unknown_blocks_are_deduped_and_sorted() {
        let d = degraded();
        assert_eq!(d.unknown_blocks(), &[BlockId(6), BlockId(7)]);
        let c = d.rung_counts();
        assert_eq!((c.exact, c.bloom, c.fallback), (2, 2, 2));
        assert_eq!(c.total(), 6);
        assert!(c.any_degraded());
    }

    #[test]
    fn health_accounting_absorbs() {
        let mut a = MetaHealth::default();
        assert!(!a.any());
        let b = MetaHealth {
            shards_repaired: 2,
            failovers: 1,
            rungs: RungCounts {
                exact: 3,
                bloom: 1,
                fallback: 0,
            },
            ..MetaHealth::default()
        };
        a.absorb(&b);
        assert!(a.any());
        assert_eq!(a.shards_repaired, 2);
        assert_eq!(a.rungs.bloom, 1);
        // Absorbing an empty accounting changes nothing.
        let before = a.clone();
        a.absorb(&MetaHealth::default());
        assert_eq!(a, before);
    }

    #[test]
    fn serde_roundtrip() {
        let h = MetaHealth {
            shards_quarantined: 1,
            est_error: 0.25,
            rungs: RungCounts {
                exact: 5,
                bloom: 2,
                fallback: 1,
            },
            ..MetaHealth::default()
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: MetaHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
