//! The bipartite distribution graph `G = (CN, B, E)` of Section IV-A.
//!
//! Vertices are cluster nodes and block files; an edge `(cn_i, b_j)` exists
//! iff node `cn_i` holds a replica of `b_j`, weighted by `|b_j ∩ s|` — the
//! sub-dataset bytes the ElasticMap attributes to that block. Algorithm 1
//! consumes the graph destructively: assigning a block removes all of its
//! edges.

use crate::distribution::SubDatasetView;
use datanet_dfs::{BlockId, NameNode, NodeId};

/// Mutable bipartite graph between cluster nodes and (not-yet-assigned)
/// blocks, weighted by sub-dataset content.
#[derive(Debug, Clone)]
pub struct DistributionGraph {
    /// `adj_node[n]` = blocks adjacent to node `n` (still unassigned).
    adj_node: Vec<Vec<BlockId>>,
    /// `holders[b]` = nodes adjacent to block `b`; `None` once removed or
    /// never in scope.
    holders: Vec<Option<Vec<NodeId>>>,
    /// `weight[b]` = `|b ∩ s|` as known to the meta-data.
    weight: Vec<u64>,
    /// Scope blocks sorted lightest-first (weight asc, ties → lowest id).
    /// Removed blocks stay in place; `cur_asc` skips past them lazily, so
    /// [`DistributionGraph::lightest`] is amortized O(1) over a plan where
    /// a full `remaining_blocks()` scan was O(total blocks) per request.
    order_asc: Vec<(u64, u32)>,
    cur_asc: usize,
    /// The same blocks sorted heaviest-first (weight desc, ties → lowest
    /// id), consumed by `cur_desc` for [`DistributionGraph::heaviest`].
    order_desc: Vec<(u64, u32)>,
    cur_desc: usize,
    /// Blocks still in the graph.
    remaining: usize,
}

impl DistributionGraph {
    /// Build the graph for the blocks in `view` (τ₁ ∪ τ₂), using the
    /// NameNode's replica map for edges and the view's weights.
    pub fn from_view(namenode: &NameNode, view: &SubDatasetView) -> Self {
        Self::build(namenode, view.blocks().map(|b| (b, view.weight(b))))
    }

    /// Build the graph over an explicit `(block, weight)` scope. Blocks
    /// must be distinct.
    pub fn build(namenode: &NameNode, scope: impl IntoIterator<Item = (BlockId, u64)>) -> Self {
        let total_blocks = namenode.block_count();
        let mut holders: Vec<Option<Vec<NodeId>>> = vec![None; total_blocks];
        let mut weight = vec![0u64; total_blocks];
        let mut adj_node = vec![Vec::new(); namenode.node_count()];
        let mut order_asc = Vec::new();
        let mut remaining = 0;
        for (b, w) in scope {
            assert!(b.index() < total_blocks, "block {b} unknown to NameNode");
            assert!(holders[b.index()].is_none(), "duplicate block {b} in scope");
            let nodes = namenode.replicas(b).to_vec();
            for &n in &nodes {
                adj_node[n.index()].push(b);
            }
            holders[b.index()] = Some(nodes);
            weight[b.index()] = w;
            order_asc.push((w, b.0));
            remaining += 1;
        }
        order_asc.sort_unstable();
        let mut order_desc = order_asc.clone();
        order_desc.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        Self {
            adj_node,
            holders,
            weight,
            order_asc,
            cur_asc: 0,
            order_desc,
            cur_desc: 0,
            remaining,
        }
    }

    /// Blocks still unassigned that are local to `n` — the paper's `d_i`.
    /// May contain already-removed blocks lazily; use
    /// [`DistributionGraph::local_blocks`] for the filtered view.
    pub fn local_blocks(&self, n: NodeId) -> impl Iterator<Item = BlockId> + '_ {
        self.adj_node[n.index()]
            .iter()
            .copied()
            .filter(|b| self.contains(*b))
    }

    /// Nodes holding block `b`, if it is still in the graph.
    pub fn holders(&self, b: BlockId) -> Option<&[NodeId]> {
        self.holders[b.index()].as_deref()
    }

    /// Whether block `b` is still unassigned and in scope.
    pub fn contains(&self, b: BlockId) -> bool {
        self.holders[b.index()].is_some()
    }

    /// The weight `|b ∩ s|` of a block (0 if out of scope).
    pub fn weight(&self, b: BlockId) -> u64 {
        self.weight[b.index()]
    }

    /// Number of blocks still in the graph.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// All blocks still in the graph.
    pub fn remaining_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.holders
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_some())
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Total weight still unassigned.
    pub fn remaining_weight(&self) -> u64 {
        self.remaining_blocks().map(|b| self.weight(b)).sum()
    }

    /// The heaviest remaining block (ties → lowest id), amortized O(1) —
    /// the per-request "global heaviest" candidate of Algorithm 1's paced
    /// policy, which would otherwise rescan every block per assignment.
    /// `&mut` because the skip-cursor advances past removed entries.
    pub fn heaviest(&mut self) -> Option<BlockId> {
        while let Some(&(_, b)) = self.order_desc.get(self.cur_desc) {
            if self.holders[b as usize].is_some() {
                return Some(BlockId(b));
            }
            self.cur_desc += 1;
        }
        None
    }

    /// The lightest remaining block (ties → lowest id), amortized O(1) —
    /// the overshoot-minimising fallback pick of Algorithm 1.
    pub fn lightest(&mut self) -> Option<BlockId> {
        while let Some(&(_, b)) = self.order_asc.get(self.cur_asc) {
            if self.holders[b as usize].is_some() {
                return Some(BlockId(b));
            }
            self.cur_asc += 1;
        }
        None
    }

    /// Number of cluster nodes.
    pub fn node_count(&self) -> usize {
        self.adj_node.len()
    }

    /// Remove block `b` and all of its edges (lines 18–20 of Algorithm 1).
    ///
    /// # Panics
    /// Panics if `b` was already removed or never in scope.
    pub fn remove_block(&mut self, b: BlockId) {
        assert!(
            self.holders[b.index()].take().is_some(),
            "block {b} not in graph"
        );
        // The weight-order vectors are untouched: the skip-cursors step
        // over the dead entry the next time they reach it.
        self.remaining -= 1;
        // adj_node lists are cleaned lazily by the `contains` filter; a
        // periodic compaction keeps them from growing stale.
    }

    /// Put a previously removed block back, with an explicit holder set —
    /// fault recovery re-enqueues a crashed node's blocks against their
    /// *surviving* replicas. The block's weight is retained from the
    /// original scope.
    ///
    /// # Panics
    /// Panics if `b` is still in the graph or `holders` is empty.
    pub fn reinsert(&mut self, b: BlockId, holders: Vec<NodeId>) {
        assert!(
            self.holders[b.index()].is_none(),
            "block {b} is already in the graph"
        );
        assert!(!holders.is_empty(), "a reinserted block needs a holder");
        // The new holder set is authoritative: stale adjacency entries from
        // the original build would otherwise pass the `contains` filter
        // again and revive edges to nodes that lost their replica.
        for (n, adj) in self.adj_node.iter_mut().enumerate() {
            if holders.iter().any(|h| h.index() == n) {
                if !adj.contains(&b) {
                    adj.push(b);
                }
            } else {
                adj.retain(|&x| x != b);
            }
        }
        self.holders[b.index()] = Some(holders);
        let w = self.weight[b.index()];
        // Make sure the order vectors cover the block (they always do when
        // it came from the original scope), then rewind the skip-cursors:
        // the revived entry may sit before either cursor. Reinsertion is a
        // rare fault-recovery path, so the O(n) re-skip is irrelevant.
        if let Err(pos) = self.order_asc.binary_search(&(w, b.0)) {
            self.order_asc.insert(pos, (w, b.0));
            let pos = self
                .order_desc
                .binary_search_by(|e| e.0.cmp(&w).reverse().then(e.1.cmp(&b.0)))
                .unwrap_err();
            self.order_desc.insert(pos, (w, b.0));
        }
        self.cur_asc = 0;
        self.cur_desc = 0;
        self.remaining += 1;
    }

    /// Drop every edge to node `n` (it crashed): blocks whose only holder
    /// was `n` stay in the graph but become remote-only.
    pub fn remove_node(&mut self, n: NodeId) {
        self.adj_node[n.index()].clear();
        for h in self.holders.iter_mut().flatten() {
            h.retain(|&x| x != n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::SubDatasetId;

    fn namenode() -> NameNode {
        let mut nn = NameNode::new(3);
        nn.register(BlockId(0), vec![NodeId(0), NodeId(1)]);
        nn.register(BlockId(1), vec![NodeId(1), NodeId(2)]);
        nn.register(BlockId(2), vec![NodeId(0), NodeId(2)]);
        nn.register(BlockId(3), vec![NodeId(2)]);
        nn
    }

    fn graph() -> DistributionGraph {
        DistributionGraph::build(
            &namenode(),
            vec![(BlockId(0), 100), (BlockId(1), 50), (BlockId(3), 10)],
        )
    }

    #[test]
    fn scope_controls_membership() {
        let g = graph();
        assert!(g.contains(BlockId(0)));
        assert!(!g.contains(BlockId(2))); // not in scope
        assert_eq!(g.remaining(), 3);
        assert_eq!(g.remaining_weight(), 160);
        assert_eq!(g.weight(BlockId(2)), 0);
    }

    #[test]
    fn adjacency_mirrors_replicas() {
        let g = graph();
        let d0: Vec<_> = g.local_blocks(NodeId(0)).collect();
        assert_eq!(d0, vec![BlockId(0)]);
        let d2: Vec<_> = g.local_blocks(NodeId(2)).collect();
        assert_eq!(d2, vec![BlockId(1), BlockId(3)]);
        assert_eq!(g.holders(BlockId(1)).unwrap(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn removal_deletes_all_edges() {
        let mut g = graph();
        g.remove_block(BlockId(1));
        assert!(!g.contains(BlockId(1)));
        assert_eq!(g.remaining(), 2);
        assert!(g.local_blocks(NodeId(1)).all(|b| b != BlockId(1)));
        assert!(g.local_blocks(NodeId(2)).all(|b| b != BlockId(1)));
        assert!(g.holders(BlockId(1)).is_none());
    }

    #[test]
    fn from_view_uses_view_weights() {
        let nn = namenode();
        let view = SubDatasetView::new(
            SubDatasetId(5),
            vec![(BlockId(0), 777)],
            vec![BlockId(3)],
            u64::MAX,
        );
        let g = DistributionGraph::from_view(&nn, &view);
        assert_eq!(g.weight(BlockId(0)), 777);
        assert_eq!(g.weight(BlockId(3)), 777); // δ = min exact = 777
        assert!(!g.contains(BlockId(1)));
    }

    #[test]
    fn reinsert_restores_block_with_surviving_holders() {
        let mut g = graph();
        g.remove_block(BlockId(0));
        assert!(!g.contains(BlockId(0)));
        // Back with only node 1 surviving.
        g.reinsert(BlockId(0), vec![NodeId(1)]);
        assert!(g.contains(BlockId(0)));
        assert_eq!(g.remaining(), 3);
        assert_eq!(g.weight(BlockId(0)), 100, "weight survives the round trip");
        assert_eq!(g.holders(BlockId(0)).unwrap(), &[NodeId(1)]);
        // Node 1 sees it locally; node 0 no longer does.
        assert!(g.local_blocks(NodeId(1)).any(|b| b == BlockId(0)));
        assert!(g.local_blocks(NodeId(0)).all(|b| b != BlockId(0)));
    }

    #[test]
    fn remove_node_strips_edges_but_keeps_blocks() {
        let mut g = graph();
        g.remove_node(NodeId(2));
        assert_eq!(g.remaining(), 3, "blocks are not lost with the node");
        assert_eq!(g.local_blocks(NodeId(2)).count(), 0);
        assert_eq!(g.holders(BlockId(1)).unwrap(), &[NodeId(1)]);
        assert!(
            g.holders(BlockId(3)).unwrap().is_empty(),
            "block 3 lived only on node 2"
        );
    }

    #[test]
    #[should_panic]
    fn reinsert_of_live_block_panics() {
        let mut g = graph();
        g.reinsert(BlockId(0), vec![NodeId(1)]);
    }

    #[test]
    #[should_panic]
    fn double_removal_panics() {
        let mut g = graph();
        g.remove_block(BlockId(0));
        g.remove_block(BlockId(0));
    }

    #[test]
    #[should_panic]
    fn duplicate_scope_panics() {
        DistributionGraph::build(&namenode(), vec![(BlockId(0), 1), (BlockId(0), 2)]);
    }
}
