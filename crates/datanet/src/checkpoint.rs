//! Crash-safe pipeline checkpoints, replicated next to the MetaStore.
//!
//! The pipeline executor (`datanet-analytics`) persists one checkpoint per
//! completed stage under the same write-order contract as streaming-ingest
//! epochs ([`crate::ingest::CommitPlan`]):
//!
//! 1. the stage's **payload** (`stage-NNNN.json`, the serialized working
//!    state, CRC-32 checksummed),
//! 2. the **immutable per-stage manifest**
//!    (`pipeline-manifest-eNNNN.json`, carrying
//!    `last_completed_operation` + the payload CRC),
//! 3. the **live manifest** (`pipeline.json`) — written LAST.
//!
//! Every file is written to every replica directory before the next file is
//! started, so a crash after any prefix of the writes leaves the previous
//! stage fully durable: the live manifest still points at it, and its
//! payload + immutable manifest are untouched. [`CheckpointPlan::apply_prefix`]
//! models mid-commit crashes exactly like `CommitPlan::apply_prefix` does
//! for ingest epochs.

use crate::store::{crc32, StoreError};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Checkpoint format version (independent of the MetaStore shard format).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Name of the live manifest — the commit point of every checkpoint.
pub const LIVE_MANIFEST: &str = "pipeline.json";

/// Payload file of stage `seq` (the serialized working state after it ran).
pub fn payload_file(seq: u64) -> String {
    format!("stage-{seq:04}.json")
}

/// Immutable manifest of stage `seq` (never rewritten once durable; the
/// audit ledger for the checkpoint-monotonicity oracle).
pub fn manifest_file(seq: u64) -> String {
    format!("pipeline-manifest-e{seq:04}.json")
}

/// CRC-32 of a checkpoint payload (exposed so callers can fingerprint
/// outputs with the same checksum the manifests carry).
pub fn content_crc(bytes: &[u8]) -> u32 {
    crc32(bytes)
}

/// Durable record of one completed pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Pipeline this checkpoint belongs to (mismatch ⇒ refuse to resume).
    pub pipeline: String,
    /// Index of the last stage whose output is durable (0-based).
    pub last_completed_operation: u64,
    /// Human-readable stage label (`filter(s=3)`, `aggregate(WordCount)`…).
    pub label: String,
    /// CRC-32 of the stage payload file.
    pub payload_crc: u32,
    /// Checkpoint format version.
    pub version: u32,
}

/// An ordered, replicated write plan for one stage checkpoint. Applying a
/// strict prefix of the writes (a modeled crash) never corrupts the
/// previous checkpoint; only a full application moves the live manifest.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    seq: u64,
    manifest: CheckpointManifest,
    writes: Vec<(String, Vec<u8>)>,
}

impl CheckpointPlan {
    /// Plan the checkpoint for stage `seq` of `pipeline`, with the stage's
    /// serialized working state as payload.
    pub fn new(pipeline: &str, seq: u64, label: &str, payload: Vec<u8>) -> Self {
        let manifest = CheckpointManifest {
            pipeline: pipeline.to_string(),
            last_completed_operation: seq,
            label: label.to_string(),
            payload_crc: crc32(&payload),
            version: CHECKPOINT_VERSION,
        };
        let manifest_bytes = serde_json::to_vec_pretty(&manifest)
            .expect("checkpoint manifest serialization is infallible");
        let writes = vec![
            (payload_file(seq), payload),
            (manifest_file(seq), manifest_bytes.clone()),
            (LIVE_MANIFEST.to_string(), manifest_bytes),
        ];
        Self {
            seq,
            manifest,
            writes,
        }
    }

    /// Stage index this plan commits.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The manifest that becomes live once the plan is fully applied.
    pub fn manifest(&self) -> &CheckpointManifest {
        &self.manifest
    }

    /// Number of ordered file writes in the plan (mirrors
    /// [`crate::ingest::CommitPlan::writes`]).
    pub fn writes(&self) -> usize {
        self.writes.len()
    }

    /// Apply the full plan to every replica directory.
    pub fn apply(&self, dirs: &[&Path]) -> Result<(), StoreError> {
        self.apply_prefix(dirs, self.writes.len())
    }

    /// Apply only the first `n` writes — the crash-injection hook. Each file
    /// lands on *every* replica before the next file is started, mirroring
    /// the ingest contract.
    ///
    /// # Panics
    /// Panics if `n` exceeds the plan's write count.
    pub fn apply_prefix(&self, dirs: &[&Path], n: usize) -> Result<(), StoreError> {
        assert!(n <= self.writes.len(), "prefix exceeds plan");
        for dir in dirs {
            fs::create_dir_all(dir)?;
        }
        for (name, bytes) in &self.writes[..n] {
            for dir in dirs {
                fs::write(dir.join(name), bytes)?;
            }
        }
        Ok(())
    }
}

/// Read the live manifest and its payload, failing over across replicas and
/// verifying the payload CRC. `Ok(None)` means no checkpoint was ever
/// committed (no replica has a live manifest) — the pipeline starts fresh,
/// exactly like [`crate::ingest::Ingestor::resume`] on a store that crashed
/// before its first commit.
pub fn resume(dirs: &[&Path]) -> Result<Option<(CheckpointManifest, Vec<u8>)>, StoreError> {
    if dirs.iter().all(|d| !d.join(LIVE_MANIFEST).exists()) {
        return Ok(None);
    }
    let mut last = String::from("no replica tried");
    for dir in dirs {
        let manifest = match read_manifest(&dir.join(LIVE_MANIFEST)) {
            Ok(m) => m,
            Err(e) => {
                last = format!("{}: {e}", dir.join(LIVE_MANIFEST).display());
                continue;
            }
        };
        let payload = payload_file(manifest.last_completed_operation);
        for pdir in dirs {
            match fs::read(pdir.join(&payload)) {
                Ok(bytes) if crc32(&bytes) == manifest.payload_crc => {
                    return Ok(Some((manifest, bytes)));
                }
                Ok(_) => {
                    last = format!(
                        "{}: payload checksum mismatch",
                        pdir.join(&payload).display()
                    );
                }
                Err(e) => last = format!("{}: {e}", pdir.join(&payload).display()),
            }
        }
    }
    Err(StoreError::Corrupt {
        path: dirs
            .first()
            .map(|d| d.join(LIVE_MANIFEST))
            .unwrap_or_default(),
        detail: format!("no replica yields a consistent checkpoint: {last}"),
    })
}

/// The durable audit ledger: every immutable per-stage manifest found on any
/// replica, deduplicated and sorted by stage index. Used by the
/// checkpoint-monotonicity oracle — after an uninterrupted or resumed run
/// the ledger must be exactly `0..stages`, each CRC matching its payload.
pub fn ledger(dirs: &[&Path]) -> Result<Vec<CheckpointManifest>, StoreError> {
    let mut found: std::collections::BTreeMap<u64, CheckpointManifest> =
        std::collections::BTreeMap::new();
    for dir in dirs {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("pipeline-manifest-e") || !name.ends_with(".json") {
                continue;
            }
            let m = read_manifest(&entry.path())?;
            found.entry(m.last_completed_operation).or_insert(m);
        }
    }
    Ok(found.into_values().collect())
}

fn read_manifest(path: &Path) -> Result<CheckpointManifest, StoreError> {
    let bytes = fs::read(path)?;
    let m: CheckpointManifest =
        serde_json::from_slice(&bytes).map_err(|e| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    if m.version > CHECKPOINT_VERSION {
        return Err(StoreError::FutureVersion {
            found: m.version,
            supported: CHECKPOINT_VERSION,
        });
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdirs(name: &str, n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| {
                let d = std::env::temp_dir().join(format!(
                    "datanet-ckpt-{}-{}-{}",
                    std::process::id(),
                    name,
                    i
                ));
                let _ = fs::remove_dir_all(&d);
                fs::create_dir_all(&d).unwrap();
                d
            })
            .collect()
    }

    fn refs(dirs: &[PathBuf]) -> Vec<&Path> {
        dirs.iter().map(PathBuf::as_path).collect()
    }

    #[test]
    fn fresh_dirs_resume_to_none() {
        let dirs = tmpdirs("fresh", 2);
        assert!(resume(&refs(&dirs)).unwrap().is_none());
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn full_apply_then_resume_restores_payload() {
        let dirs = tmpdirs("full", 2);
        let plan = CheckpointPlan::new("demo", 0, "filter(s=1)", b"state-0".to_vec());
        plan.apply(&refs(&dirs)).unwrap();
        let (m, payload) = resume(&refs(&dirs)).unwrap().unwrap();
        assert_eq!(m.last_completed_operation, 0);
        assert_eq!(m.pipeline, "demo");
        assert_eq!(payload, b"state-0");
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn every_crash_prefix_leaves_previous_stage_durable() {
        for prefix in 0..=3usize {
            let dirs = tmpdirs(&format!("prefix{prefix}"), 2);
            let r = refs(&dirs);
            CheckpointPlan::new("demo", 0, "filter", b"state-0".to_vec())
                .apply(&r)
                .unwrap();
            let plan1 = CheckpointPlan::new("demo", 1, "aggregate", b"state-1".to_vec());
            assert_eq!(plan1.writes(), 3);
            plan1.apply_prefix(&r, prefix).unwrap();
            let (m, payload) = resume(&r).unwrap().unwrap();
            if prefix == plan1.writes() {
                assert_eq!(m.last_completed_operation, 1);
                assert_eq!(payload, b"state-1");
            } else {
                assert_eq!(m.last_completed_operation, 0, "prefix {prefix}");
                assert_eq!(payload, b"state-0");
            }
            for d in &dirs {
                let _ = fs::remove_dir_all(d);
            }
        }
    }

    #[test]
    fn corrupt_payload_fails_over_to_healthy_replica() {
        let dirs = tmpdirs("failover", 2);
        let r = refs(&dirs);
        CheckpointPlan::new("demo", 0, "filter", b"state-0".to_vec())
            .apply(&r)
            .unwrap();
        fs::write(dirs[0].join(payload_file(0)), b"bitrot").unwrap();
        let (_, payload) = resume(&r).unwrap().unwrap();
        assert_eq!(payload, b"state-0");
        // Both replicas corrupt: resume must error, not return bad bytes.
        fs::write(dirs[1].join(payload_file(0)), b"bitrot").unwrap();
        assert!(resume(&r).is_err());
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn ledger_lists_stages_in_order_with_matching_crcs() {
        let dirs = tmpdirs("ledger", 2);
        let r = refs(&dirs);
        for seq in 0..3u64 {
            CheckpointPlan::new("demo", seq, "stage", format!("state-{seq}").into_bytes())
                .apply(&r)
                .unwrap();
        }
        let led = ledger(&r).unwrap();
        assert_eq!(led.len(), 3);
        for (i, m) in led.iter().enumerate() {
            assert_eq!(m.last_completed_operation, i as u64);
            let bytes = fs::read(dirs[0].join(payload_file(i as u64))).unwrap();
            assert_eq!(crc32(&bytes), m.payload_crc);
        }
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let dirs = tmpdirs("future", 1);
        let r = refs(&dirs);
        let m = CheckpointManifest {
            pipeline: "demo".into(),
            last_completed_operation: 0,
            label: "x".into(),
            payload_crc: 0,
            version: CHECKPOINT_VERSION + 1,
        };
        fs::write(dirs[0].join(LIVE_MANIFEST), serde_json::to_vec(&m).unwrap()).unwrap();
        assert!(matches!(
            resume(&r),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::FutureVersion { .. })
        ));
        let _ = fs::remove_dir_all(&dirs[0]);
    }
}
