//! Distribution-aware task planners (Section IV-B).
//!
//! * [`Algorithm1`] — the paper's greedy, pull-based workload balancer.
//! * [`FordFulkersonPlanner`] — the max-flow-based optimal assignment the
//!   paper recommends for homogeneous clusters.
//!
//! Both produce an [`Assignment`] mapping every in-scope block to exactly
//! one compute node.

mod aggregation;
mod algorithm1;
mod cache;
mod maxflow;

pub use aggregation::{plan_aggregation, uniform_baseline_traffic, AggregationPlan};
pub use algorithm1::{Algorithm1, BalancePolicy};
pub use cache::{EpochKey, PlanCache};
pub use maxflow::FordFulkersonPlanner;

use crate::scan::ElasticMapArray;
use datanet_dfs::{BlockId, Dfs, NodeId, SubDatasetId};
use serde::{Deserialize, Serialize};

/// Plan one [`Algorithm1`] balanced assignment per sub-dataset.
///
/// Resolves all the views in one batched array walk
/// ([`ElasticMapArray::views`] — the per-block exact sides are merge-joined
/// instead of probed once per id), then runs the greedy planner per view.
/// Output is element-wise identical to calling
/// `Algorithm1::new(dfs, &array.view(id)).plan_balanced()` per id.
pub fn plan_balanced_batch(
    dfs: &Dfs,
    array: &ElasticMapArray,
    ids: &[SubDatasetId],
) -> Vec<Assignment> {
    array
        .views(ids)
        .iter()
        .map(|view| Algorithm1::new(dfs, view).plan_balanced())
        .collect()
}

/// Plan one [`FordFulkersonPlanner`] optimal assignment per sub-dataset,
/// resolving all views through the batched array walk first (same
/// amortisation as [`plan_balanced_batch`]).
pub fn plan_maxflow_batch(
    dfs: &Dfs,
    array: &ElasticMapArray,
    ids: &[SubDatasetId],
) -> Vec<Assignment> {
    array
        .views(ids)
        .iter()
        .map(|view| FordFulkersonPlanner::new(dfs, view).plan())
        .collect()
}

/// A complete map-task assignment: each block processed by exactly one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// `tasks[n]` = blocks assigned to node `n`, in assignment order.
    tasks: Vec<Vec<BlockId>>,
    /// `workloads[n]` = Σ weights of the blocks assigned to node `n`.
    workloads: Vec<u64>,
    /// Assignments whose block was node-local.
    local_hits: usize,
    total: usize,
}

impl Assignment {
    /// An empty assignment over `nodes` compute nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            tasks: vec![Vec::new(); nodes],
            workloads: vec![0; nodes],
            local_hits: 0,
            total: 0,
        }
    }

    /// Record that `node` will process `block` carrying `weight` bytes of
    /// the target sub-dataset; `local` marks data-local assignments.
    pub fn assign(&mut self, node: NodeId, block: BlockId, weight: u64, local: bool) {
        self.tasks[node.index()].push(block);
        self.workloads[node.index()] += weight;
        if local {
            self.local_hits += 1;
        }
        self.total += 1;
    }

    /// Blocks assigned to one node.
    pub fn tasks_of(&self, n: NodeId) -> &[BlockId] {
        &self.tasks[n.index()]
    }

    /// Per-node workloads (bytes of the target sub-dataset).
    pub fn workloads(&self) -> &[u64] {
        &self.workloads
    }

    /// Number of compute nodes.
    pub fn node_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total number of assigned blocks.
    pub fn assigned_blocks(&self) -> usize {
        self.total
    }

    /// The node that will process `block`, if any.
    pub fn node_of(&self, block: BlockId) -> Option<NodeId> {
        for (n, blocks) in self.tasks.iter().enumerate() {
            if blocks.contains(&block) {
                return Some(NodeId(n as u32));
            }
        }
        None
    }

    /// Fraction of assignments that were data-local.
    pub fn locality_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.local_hits as f64 / self.total as f64
    }

    /// Max-over-mean workload imbalance (1.0 = perfectly balanced). The
    /// lower-bound witness for Figures 1(b)/5(c)/10.
    pub fn imbalance(&self) -> f64 {
        let max = *self.workloads.iter().max().unwrap_or(&0);
        let sum: u64 = self.workloads.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / self.workloads.len() as f64;
        max as f64 / mean
    }

    /// Largest per-node workload (proportional to makespan for
    /// workload-bound jobs).
    pub fn max_workload(&self) -> u64 {
        *self.workloads.iter().max().unwrap_or(&0)
    }

    /// Smallest per-node workload.
    pub fn min_workload(&self) -> u64 {
        *self.workloads.iter().min().unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bookkeeping() {
        let mut a = Assignment::new(2);
        a.assign(NodeId(0), BlockId(0), 100, true);
        a.assign(NodeId(0), BlockId(1), 50, false);
        a.assign(NodeId(1), BlockId(2), 150, true);
        assert_eq!(a.assigned_blocks(), 3);
        assert_eq!(a.workloads(), &[150, 150]);
        assert_eq!(a.tasks_of(NodeId(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(a.node_of(BlockId(2)), Some(NodeId(1)));
        assert_eq!(a.node_of(BlockId(9)), None);
        assert!((a.locality_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_assignment() {
        let mut a = Assignment::new(2);
        a.assign(NodeId(0), BlockId(0), 300, true);
        a.assign(NodeId(1), BlockId(1), 100, true);
        // mean 200, max 300 → 1.5
        assert!((a.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(a.max_workload(), 300);
        assert_eq!(a.min_workload(), 100);
    }

    #[test]
    fn empty_assignment_is_balanced() {
        let a = Assignment::new(4);
        assert_eq!(a.imbalance(), 1.0);
        assert_eq!(a.locality_fraction(), 1.0);
        assert_eq!(a.assigned_blocks(), 0);
    }
}
