//! Epoch-keyed planner-result cache.
//!
//! Planning a sub-dataset query is pure: the same metadata (NameNode block
//! locations), the same MetaStore contents, and the same set of alive nodes
//! always produce the same [`Assignment`]. The serving plane exploits that
//! by caching plans keyed on `(sub-dataset, EpochKey)` where the
//! [`EpochKey`] snapshots every mutation counter a plan depends on:
//!
//! * `NameNode::epoch()` — block registrations (copy-on-write mutations),
//! * the ingest epoch — MetaStore commits change sub-dataset contents,
//! * `SimCluster::epoch()` — node deaths invalidate task placements.
//!
//! Any mutation bumps one of the three counters, so a hit is *provably*
//! coherent: the cached plan was computed against byte-identical world
//! state. There is no TTL and no heuristic staleness — coherence is exact.

use super::Assignment;
use crate::symbol::FastMap;
use datanet_dfs::SubDatasetId;
use serde::{Deserialize, Serialize};

/// Snapshot of every mutation counter a plan depends on. Two equal keys
/// guarantee the worlds they were read from are plan-equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EpochKey {
    /// `NameNode::epoch()` — bumped per block registration.
    pub namenode: u64,
    /// MetaStore ingest epoch — bumped per committed ingest batch.
    pub ingest: u64,
    /// `SimCluster::epoch()` — bumped per node-liveness change.
    pub cluster: u64,
}

impl EpochKey {
    /// Assemble a key from the three mutation counters.
    pub fn new(namenode: u64, ingest: u64, cluster: u64) -> Self {
        Self {
            namenode,
            ingest,
            cluster,
        }
    }
}

/// Planner-result cache: `(sub-dataset, epoch) → Assignment`.
///
/// Entries never expire; a stale epoch simply stops being looked up once
/// the world moves on, and [`PlanCache::retain_epoch`] drops the dead
/// generations. Hit/miss counters feed the serving metrics plane.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: FastMap<(SubDatasetId, EpochKey), Assignment>,
    hits: u64,
    misses: u64,
    /// Planted-bug hook: when set, lookups ignore the epoch component of
    /// the key entirely, serving whatever plan was cached first for the
    /// sub-dataset — exactly the staleness bug the serve cache-coherence
    /// oracle exists to catch. See [`PlanCache::plant_staleness`].
    ignore_epochs: bool,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the plan for `id` at `epoch`. Counts a hit or a miss.
    pub fn get(&mut self, id: SubDatasetId, epoch: EpochKey) -> Option<&Assignment> {
        let found = if self.ignore_epochs {
            // Planted bug: match on sub-dataset alone, returning the plan
            // from whichever epoch happened to be cached first.
            self.entries
                .iter()
                .find(|((sid, _), _)| *sid == id)
                .map(|(k, _)| *k)
        } else {
            self.entries
                .contains_key(&(id, epoch))
                .then_some((id, epoch))
        };
        match found {
            Some(key) => {
                self.hits += 1;
                self.entries.get(&key)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert the freshly computed plan for `id` at `epoch`.
    pub fn insert(&mut self, id: SubDatasetId, epoch: EpochKey, plan: Assignment) {
        self.entries.insert((id, epoch), plan);
    }

    /// Drop every entry not computed at `epoch`. Called when the world
    /// moves on so dead generations stop holding memory.
    pub fn retain_epoch(&mut self, epoch: EpochKey) {
        self.entries.retain(|(_, e), _| *e == epoch);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the planner.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Test-only fault hook: make lookups ignore the epoch component of
    /// the key, so a plan cached before an ingest commit or node death is
    /// served after it — the cache-staleness bug the serve oracles must
    /// catch and shrink (see `datanet-check`). Never call this outside
    /// tests.
    #[doc(hidden)]
    pub fn plant_staleness(&mut self) {
        self.ignore_epochs = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{BlockId, NodeId};

    fn plan(weight: u64) -> Assignment {
        let mut a = Assignment::new(2);
        a.assign(NodeId(0), BlockId(0), weight, true);
        a
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let mut c = PlanCache::new();
        let e0 = EpochKey::new(1, 0, 0);
        let e1 = EpochKey::new(2, 0, 0);
        assert!(c.get(SubDatasetId(7), e0).is_none());
        c.insert(SubDatasetId(7), e0, plan(100));
        assert_eq!(c.get(SubDatasetId(7), e0).unwrap().max_workload(), 100);
        // Any counter moving invalidates: same sub-dataset, newer epoch.
        assert!(c.get(SubDatasetId(7), e1).is_none());
        assert!(c.get(SubDatasetId(8), e0).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn each_epoch_component_invalidates_independently() {
        let mut c = PlanCache::new();
        let base = EpochKey::new(3, 2, 1);
        c.insert(SubDatasetId(0), base, plan(1));
        assert!(c.get(SubDatasetId(0), base).is_some());
        for moved in [
            EpochKey::new(4, 2, 1),
            EpochKey::new(3, 3, 1),
            EpochKey::new(3, 2, 2),
        ] {
            assert!(c.get(SubDatasetId(0), moved).is_none());
        }
    }

    #[test]
    fn retain_epoch_drops_dead_generations() {
        let mut c = PlanCache::new();
        let old = EpochKey::new(1, 0, 0);
        let new = EpochKey::new(2, 0, 0);
        c.insert(SubDatasetId(0), old, plan(1));
        c.insert(SubDatasetId(1), old, plan(2));
        c.insert(SubDatasetId(0), new, plan(3));
        assert_eq!(c.len(), 3);
        c.retain_epoch(new);
        assert_eq!(c.len(), 1);
        assert!(c.get(SubDatasetId(0), new).is_some());
        assert!(c.get(SubDatasetId(1), old).is_none());
    }

    #[test]
    fn planted_staleness_serves_across_epochs() {
        let mut c = PlanCache::new();
        let old = EpochKey::new(1, 0, 0);
        let new = EpochKey::new(1, 1, 0);
        c.insert(SubDatasetId(5), old, plan(42));
        c.plant_staleness();
        // The bug: a lookup at the post-ingest epoch returns the
        // pre-ingest plan.
        assert_eq!(c.get(SubDatasetId(5), new).unwrap().max_workload(), 42);
        // Unknown sub-datasets still miss.
        assert!(c.get(SubDatasetId(6), new).is_none());
    }
}
