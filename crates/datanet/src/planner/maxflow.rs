//! Ford–Fulkerson-based optimal assignment (Section IV-B: "In a homogeneous
//! execution environment, we can actually compute an optimized task
//! assignment through the Ford-Fulkerson method").
//!
//! Construction: `source → block b` with capacity `w(b)`; `b → node n` with
//! capacity `w(b)` for every replica holder `n`; `node → sink` with capacity
//! `T`. If the max flow saturates every source edge, a per-node cap of `T`
//! is feasible *fractionally*. Binary search over `T` finds the smallest
//! feasible cap; each block is then rounded to the replica node that
//! received the largest share of its flow. The fractional optimum is a
//! lower bound on any integral schedule, so the rounded makespan is provably
//! within one block weight of optimal.
//!
//! Max flow itself is Edmonds–Karp (BFS augmenting paths) — the classic
//! Ford–Fulkerson realisation from Cormen et al., the paper's citation.

use crate::bipartite::DistributionGraph;
use crate::distribution::SubDatasetView;
use crate::planner::Assignment;
use datanet_dfs::{BlockId, Dfs, NameNode, NodeId};
use std::collections::VecDeque;

/// A directed edge in the residual network.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// Simple Edmonds–Karp max-flow solver over an adjacency-list residual
/// network. Public within the crate for reuse and direct testing.
#[derive(Debug, Clone)]
pub(crate) struct MaxFlow {
    graph: Vec<Vec<Edge>>,
}

impl MaxFlow {
    pub(crate) fn new(vertices: usize) -> Self {
        Self {
            graph: vec![Vec::new(); vertices],
        }
    }

    /// Add a directed edge `from → to` with capacity `cap` (plus the zero
    /// capacity reverse edge). Returns `(from, index)` for flow queries.
    pub(crate) fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> (usize, usize) {
        assert!(from != to, "self-loops are not allowed");
        let fwd = self.graph[from].len();
        let rev = self.graph[to].len();
        self.graph[from].push(Edge { to, cap, rev });
        self.graph[to].push(Edge {
            to: from,
            cap: 0,
            rev: fwd,
        });
        (from, fwd)
    }

    /// Flow pushed through the edge handle (equals the reverse residual).
    pub(crate) fn flow(&self, handle: (usize, usize)) -> u64 {
        let e = &self.graph[handle.0][handle.1];
        self.graph[e.to][e.rev].cap
    }

    /// Run Edmonds–Karp from `s` to `t`; returns the max-flow value.
    pub(crate) fn run(&mut self, s: usize, t: usize) -> u64 {
        assert!(s != t, "source and sink must differ");
        let n = self.graph.len();
        let mut total = 0u64;
        loop {
            // BFS for the shortest augmenting path.
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[s] = true;
            let mut q = VecDeque::new();
            q.push_back(s);
            'bfs: while let Some(u) = q.pop_front() {
                for (i, e) in self.graph[u].iter().enumerate() {
                    if e.cap > 0 && !visited[e.to] {
                        visited[e.to] = true;
                        prev[e.to] = Some((u, i));
                        if e.to == t {
                            break 'bfs;
                        }
                        q.push_back(e.to);
                    }
                }
            }
            if !visited[t] {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][i].cap);
                v = u;
            }
            // Augment.
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                let rev = self.graph[u][i].rev;
                self.graph[u][i].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                v = u;
            }
            total += bottleneck;
        }
    }
}

/// The max-flow planner.
#[derive(Debug, Clone)]
pub struct FordFulkersonPlanner {
    /// `(block, weight, holders)` scope.
    blocks: Vec<(BlockId, u64, Vec<NodeId>)>,
    nodes: usize,
}

impl FordFulkersonPlanner {
    /// Set up the planner for one sub-dataset over a DFS.
    pub fn new(dfs: &Dfs, view: &SubDatasetView) -> Self {
        Self::with_namenode(dfs.namenode(), view)
    }

    /// Set up from NameNode metadata directly.
    pub fn with_namenode(namenode: &NameNode, view: &SubDatasetView) -> Self {
        let graph = DistributionGraph::from_view(namenode, view);
        let blocks = graph
            .remaining_blocks()
            .map(|b| {
                (
                    b,
                    graph.weight(b),
                    graph.holders(b).expect("in scope").to_vec(),
                )
            })
            .collect();
        Self {
            blocks,
            nodes: namenode.node_count(),
        }
    }

    /// Whether a per-node workload cap `t` is fractionally feasible with
    /// all-local routing.
    fn feasible(&self, t: u64) -> bool {
        self.flow_for_cap(t).is_some()
    }

    /// Build and run the flow network for cap `t`. Returns per-block flow
    /// shares `(block, weight, Vec<(node, flow)>)` if the cap is feasible.
    #[allow(clippy::type_complexity)]
    fn flow_for_cap(&self, t: u64) -> Option<Vec<(BlockId, u64, Vec<(NodeId, u64)>)>> {
        // Vertex layout: 0 = source, 1..=B = blocks, B+1..=B+N = nodes,
        // B+N+1 = sink.
        let b_count = self.blocks.len();
        let source = 0usize;
        let sink = b_count + self.nodes + 1;
        let mut mf = MaxFlow::new(sink + 1);
        let mut demand = 0u64;
        let mut block_edges: Vec<Vec<((usize, usize), NodeId)>> = Vec::with_capacity(b_count);
        for (i, (_, w, holders)) in self.blocks.iter().enumerate() {
            mf.add_edge(source, 1 + i, *w);
            demand += w;
            let mut edges = Vec::with_capacity(holders.len());
            for &n in holders {
                let h = mf.add_edge(1 + i, 1 + b_count + n.index(), *w);
                edges.push((h, n));
            }
            block_edges.push(edges);
        }
        for n in 0..self.nodes {
            mf.add_edge(1 + b_count + n, sink, t);
        }
        if mf.run(source, sink) < demand {
            return None;
        }
        Some(
            self.blocks
                .iter()
                .enumerate()
                .map(|(i, (b, w, _))| {
                    let shares = block_edges[i]
                        .iter()
                        .map(|&(h, n)| (n, mf.flow(h)))
                        .collect();
                    (*b, *w, shares)
                })
                .collect(),
        )
    }

    /// The fractional optimum cap `T*` (a lower bound for any integral
    /// assignment), found by binary search.
    pub fn fractional_optimum(&self) -> u64 {
        let total: u64 = self.blocks.iter().map(|&(_, w, _)| w).sum();
        if total == 0 || self.blocks.is_empty() {
            return 0;
        }
        let mut lo = total / self.nodes as u64; // perfect split
        let mut hi = total; // everything on one node always feasible? only
                            // if some node holds all blocks — so start from
                            // a guaranteed-feasible cap instead.
        if !self.feasible(hi) {
            // Cannot happen: cap = total admits any routing. Defensive.
            return total;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.feasible(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Instances this small are solved exactly by [`Self::exact_plan`]
    /// instead of LPT + local search: the holder-choice space is at most
    /// `replication^EXACT_BLOCKS` (≤ 6561 at 3-way replication), cheaper
    /// than the flow network itself, and the guarantee lets the test suite
    /// compare against brute force on mini instances.
    const EXACT_BLOCKS: usize = 8;

    /// Exhaustive optimal all-local assignment for small instances:
    /// minimise the max per-node load, breaking ties toward the
    /// lexicographically smallest holder-choice vector (block order) so the
    /// plan is deterministic.
    fn exact_plan(&self) -> Assignment {
        let mut best_choice: Option<Vec<usize>> = None;
        let mut best_max = u64::MAX;
        let mut choice = vec![0usize; self.blocks.len()];
        let mut loads = vec![0u64; self.nodes];
        fn dfs_choices(
            blocks: &[(BlockId, u64, Vec<NodeId>)],
            i: usize,
            choice: &mut [usize],
            loads: &mut [u64],
            best_max: &mut u64,
            best_choice: &mut Option<Vec<usize>>,
        ) {
            let current_max = loads.iter().copied().max().unwrap_or(0);
            if current_max >= *best_max {
                // Loads only grow; strictly-better is impossible below, and
                // an equal max can't beat the earlier (lexicographically
                // smaller) choice that set it.
                return;
            }
            if i == blocks.len() {
                *best_max = current_max;
                *best_choice = Some(choice.to_vec());
                return;
            }
            let (_, w, holders) = &blocks[i];
            for (h, n) in holders.iter().enumerate() {
                choice[i] = h;
                loads[n.index()] += w;
                dfs_choices(blocks, i + 1, choice, loads, best_max, best_choice);
                loads[n.index()] -= w;
            }
        }
        dfs_choices(
            &self.blocks,
            0,
            &mut choice,
            &mut loads,
            &mut best_max,
            &mut best_choice,
        );
        let mut assignment = Assignment::new(self.nodes);
        let best = best_choice.expect("non-empty instance has an assignment");
        for (i, (b, w, holders)) in self.blocks.iter().enumerate() {
            assignment.assign(holders[best[i]], *b, *w, true);
        }
        assignment
    }

    /// Plan: solve the fractional optimum, round each block to the replica
    /// node that received its largest flow share, then run a move/swap
    /// local search to repair the rounding error (the fractional optimum is
    /// a lower bound; refinement typically lands within a few percent of
    /// it). Instances of at most [`Self::EXACT_BLOCKS`] blocks are solved
    /// exactly by exhaustive search instead.
    pub fn plan(&self) -> Assignment {
        if self.blocks.is_empty() {
            return Assignment::new(self.nodes);
        }
        if self.blocks.len() <= Self::EXACT_BLOCKS {
            return self.exact_plan();
        }
        // Integral assignment: LPT over replica holders (heaviest block
        // first onto its least-loaded holder), then local-search repair.
        // The flow network's fractional optimum remains the quality bound
        // (see `fractional_optimum`); LPT + refinement lands within a few
        // percent of it in practice.
        let mut order: Vec<usize> = (0..self.blocks.len()).collect();
        order.sort_by(|&a, &b| {
            self.blocks[b]
                .1
                .cmp(&self.blocks[a].1)
                .then(self.blocks[a].0.cmp(&self.blocks[b].0))
        });
        let mut node_of: Vec<usize> = vec![0; self.blocks.len()];
        let mut loads = vec![0u64; self.nodes];
        for i in order {
            let (_, w, holders) = &self.blocks[i];
            let node = holders
                .iter()
                .map(|h| h.index())
                .min_by_key(|&n| (loads[n], n))
                .expect("scope guarantees >= 1 holder");
            loads[node] += w;
            node_of[i] = node;
        }
        self.refine(&mut node_of, &mut loads);

        let mut assignment = Assignment::new(self.nodes);
        for (i, (b, w, _)) in self.blocks.iter().enumerate() {
            assignment.assign(NodeId(node_of[i] as u32), *b, *w, true);
        }
        assignment
    }

    /// Local search: repeatedly move one block off the most-loaded node to
    /// another of its replica holders when that lowers the makespan.
    /// O(iterations × blocks × replicas); terminates because the maximum
    /// load strictly decreases.
    fn refine(&self, node_of: &mut [usize], loads: &mut [u64]) {
        loop {
            let max_node = (0..loads.len())
                .max_by_key(|&n| (loads[n], n))
                .expect("at least one node");
            let max_load = loads[max_node];
            // Best single move: block on max_node → lightest other holder,
            // choosing the move that minimises the resulting pairwise max.
            let mut best: Option<(usize, usize, u64)> = None; // (block idx, dst, new pair max)
            for (i, (_, w, holders)) in self.blocks.iter().enumerate() {
                if node_of[i] != max_node || *w == 0 {
                    continue;
                }
                for &h in holders {
                    let dst = h.index();
                    if dst == max_node {
                        continue;
                    }
                    let new_pair_max = (max_load - w).max(loads[dst] + w);
                    if new_pair_max < max_load && best.is_none_or(|(_, _, m)| new_pair_max < m) {
                        best = Some((i, dst, new_pair_max));
                    }
                }
            }
            if let Some((i, dst, _)) = best {
                let w = self.blocks[i].1;
                loads[max_node] -= w;
                loads[dst] += w;
                node_of[i] = dst;
                continue;
            }
            // No single move helps: try swapping a heavy block off the max
            // node for a lighter block on another node (both moves must be
            // replica-feasible).
            let mut best_swap: Option<(usize, usize, u64)> = None; // (i, j, new pair max)
            for (i, (_, wi, holders_i)) in self.blocks.iter().enumerate() {
                if node_of[i] != max_node || *wi == 0 {
                    continue;
                }
                for (j, (_, wj, holders_j)) in self.blocks.iter().enumerate() {
                    let other = node_of[j];
                    if other == max_node || wj >= wi {
                        continue;
                    }
                    let i_can_go = holders_i.iter().any(|h| h.index() == other);
                    let j_can_come = holders_j.iter().any(|h| h.index() == max_node);
                    if !i_can_go || !j_can_come {
                        continue;
                    }
                    let new_pair_max = (max_load - wi + wj).max(loads[other] - wj + wi);
                    if new_pair_max < max_load && best_swap.is_none_or(|(_, _, m)| new_pair_max < m)
                    {
                        best_swap = Some((i, j, new_pair_max));
                    }
                }
            }
            let Some((i, j, _)) = best_swap else { break };
            let (wi, wj) = (self.blocks[i].1, self.blocks[j].1);
            let other = node_of[j];
            loads[max_node] = loads[max_node] - wi + wj;
            loads[other] = loads[other] - wj + wi;
            node_of[i] = other;
            node_of[j] = max_node;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elasticmap::Separation;
    use crate::scan::ElasticMapArray;
    use datanet_dfs::{DfsConfig, Record, SubDatasetId, Topology};

    #[test]
    fn maxflow_textbook_instance() {
        // CLRS figure-style network, known max flow 23.
        let mut mf = MaxFlow::new(6);
        mf.add_edge(0, 1, 16);
        mf.add_edge(0, 2, 13);
        mf.add_edge(1, 2, 10);
        mf.add_edge(2, 1, 4);
        mf.add_edge(1, 3, 12);
        mf.add_edge(3, 2, 9);
        mf.add_edge(2, 4, 14);
        mf.add_edge(4, 3, 7);
        mf.add_edge(3, 5, 20);
        mf.add_edge(4, 5, 4);
        assert_eq!(mf.run(0, 5), 23);
    }

    #[test]
    fn maxflow_disconnected_is_zero() {
        let mut mf = MaxFlow::new(4);
        mf.add_edge(0, 1, 10);
        mf.add_edge(2, 3, 10);
        assert_eq!(mf.run(0, 3), 0);
    }

    #[test]
    fn maxflow_tracks_edge_flow() {
        let mut mf = MaxFlow::new(3);
        let e01 = mf.add_edge(0, 1, 5);
        let e12 = mf.add_edge(1, 2, 3);
        assert_eq!(mf.run(0, 2), 3);
        assert_eq!(mf.flow(e01), 3);
        assert_eq!(mf.flow(e12), 3);
    }

    fn clustered_dfs(nodes: u32) -> Dfs {
        let mut recs = Vec::new();
        for i in 0..4000u64 {
            let s = if i < 1200 { 0 } else { 1 + i % 20 };
            recs.push(Record::new(SubDatasetId(s), i, 100, i));
        }
        Dfs::write_random(
            DfsConfig {
                block_size: 10_000,
                replication: 3,
                topology: Topology::single_rack(nodes),
                seed: 17,
            },
            recs,
        )
    }

    fn view_for(dfs: &Dfs, s: SubDatasetId) -> SubDatasetView {
        ElasticMapArray::build(dfs, &Separation::All).view(s)
    }

    #[test]
    fn plan_covers_every_block_once_locally() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let planner = FordFulkersonPlanner::new(&dfs, &view);
        let a = planner.plan();
        assert_eq!(a.assigned_blocks(), view.block_count());
        assert_eq!(a.locality_fraction(), 1.0, "flow routes only via replicas");
        // Every assigned node actually holds the block.
        for n in 0..a.node_count() {
            for &b in a.tasks_of(NodeId(n as u32)) {
                assert!(dfs.namenode().is_local(b, NodeId(n as u32)));
            }
        }
    }

    #[test]
    fn fractional_optimum_bounds_rounded_plan() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let planner = FordFulkersonPlanner::new(&dfs, &view);
        let t = planner.fractional_optimum();
        let a = planner.plan();
        let max_block = view.exact().iter().map(|&(_, w)| w).max().unwrap_or(0);
        assert!(a.max_workload() >= t, "integral can't beat fractional");
        assert!(
            a.max_workload() <= t + max_block,
            "rounding within one block: max {} vs T* {} + {}",
            a.max_workload(),
            t,
            max_block
        );
    }

    #[test]
    fn optimum_at_least_mean_and_max_block_weight() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let planner = FordFulkersonPlanner::new(&dfs, &view);
        let t = planner.fractional_optimum();
        let total = view.estimated_total();
        assert!(t >= total / 8);
        assert!(
            t as f64 <= total as f64 / 8.0 * 2.0 + 1.0,
            "T* {t} far above mean"
        );
    }

    #[test]
    fn conserves_total_workload() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = FordFulkersonPlanner::new(&dfs, &view).plan();
        assert_eq!(a.workloads().iter().sum::<u64>(), view.estimated_total());
    }

    /// Brute-force optimal all-local makespan: try every holder choice.
    fn brute_force_optimum(blocks: &[(BlockId, u64, Vec<NodeId>)], nodes: usize) -> u64 {
        fn go(blocks: &[(BlockId, u64, Vec<NodeId>)], i: usize, loads: &mut [u64]) -> u64 {
            if i == blocks.len() {
                return loads.iter().copied().max().unwrap_or(0);
            }
            let (_, w, holders) = &blocks[i];
            let mut best = u64::MAX;
            for n in holders {
                loads[n.index()] += w;
                best = best.min(go(blocks, i + 1, loads));
                loads[n.index()] -= w;
            }
            best
        }
        go(blocks, 0, &mut vec![0u64; nodes])
    }

    #[test]
    fn plan_matches_brute_force_on_all_mini_instances() {
        // Exhaustive sweep of every cluster/block instance with ≤ 4 nodes
        // and ≤ 6 blocks in a constrained-but-complete family: every
        // primary-holder function {blocks} → {nodes}, replication 1 (the
        // primary alone) and 2 (primary + successor ring neighbour), and
        // two weight profiles (uniform, geometric). The planner's
        // small-instance exact solver must equal the brute-force optimum
        // on every single one.
        let mut instances = 0u64;
        for nodes in 1usize..=4 {
            for b in 0usize..=6 {
                for replication in 1usize..=2.min(nodes) {
                    for weights in 0..2 {
                        // Enumerate all nodes^b primary-holder functions.
                        for code in 0..nodes.pow(b as u32) {
                            let mut c = code;
                            let blocks: Vec<(BlockId, u64, Vec<NodeId>)> = (0..b)
                                .map(|j| {
                                    let primary = c % nodes;
                                    c /= nodes;
                                    let mut holders = vec![NodeId(primary as u32)];
                                    if replication == 2 {
                                        holders.push(NodeId(((primary + 1) % nodes) as u32));
                                    }
                                    let w = if weights == 0 { 10 } else { 1 << j };
                                    (BlockId(j as u32), w, holders)
                                })
                                .collect();
                            let optimum = brute_force_optimum(&blocks, nodes);
                            let planner = FordFulkersonPlanner {
                                blocks: blocks.clone(),
                                nodes,
                            };
                            let plan = planner.plan();
                            assert_eq!(plan.assigned_blocks(), b);
                            assert_eq!(
                                plan.max_workload(),
                                optimum,
                                "instance: {nodes} nodes, blocks {blocks:?}"
                            );
                            // The fractional relaxation never exceeds the
                            // integral optimum.
                            assert!(planner.fractional_optimum() <= optimum);
                            instances += 1;
                        }
                    }
                }
            }
        }
        // 1..=4 nodes × 0..=6 blocks × replication × weight profiles: the
        // sweep is genuinely exhaustive, not a sample.
        assert!(instances > 20_000, "swept only {instances} instances");
    }

    #[test]
    fn empty_view_plans_nothing() {
        let dfs = clustered_dfs(4);
        let view = SubDatasetView::new(SubDatasetId(999), vec![], vec![], u64::MAX);
        let a = FordFulkersonPlanner::new(&dfs, &view).plan();
        assert_eq!(a.assigned_blocks(), 0);
    }
}
