//! Algorithm 1 — the paper's distribution-aware balanced scheduler.
//!
//! Pull-based: when a worker on node `cn_i` requests a task,
//!
//! 1. if `d_i` (unassigned blocks local to `cn_i`) is non-empty, pick
//!    `x = argmin_x |W_i + |b_x ∩ s| − W̄|` among the local blocks;
//! 2. otherwise pick the same argmin over *all* remaining blocks;
//! 3. assign, add the block's weight to `W_i`, and remove the block's edges
//!    from the bipartite graph.
//!
//! `W̄ = (Σ_{τ₁}|s∩b| + δ|τ₂|) / m` is the Equation 6 estimate divided by
//! the cluster size (line 5).
//!
//! [`Algorithm1::next_task_for`] exposes the per-request decision so a live
//! scheduler (the MapReduce engine) can drive it from simulated worker
//! requests; [`Algorithm1::plan_balanced`] runs it to completion assuming
//! homogeneous workers (the least-loaded node requests next), and
//! [`Algorithm1::plan_round_robin`] assumes strict request rotation.

use crate::bipartite::DistributionGraph;
use crate::distribution::SubDatasetView;
use crate::planner::Assignment;
use datanet_dfs::{BlockId, Dfs, NameNode, NodeId};

/// How a task request is matched to a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalancePolicy {
    /// The paper's literal line 10: `x = argmin |W_i + |b_x∩s| − W̄|`
    /// against the *terminal* per-node target. Under Hadoop's pull protocol
    /// — where every node keeps requesting at a near-constant cadence until
    /// the block pool drains — this best-fit rule strands heavy blocks
    /// (every node's residual gap shrinks below the heavy weights, which
    /// then land late on whichever node must take them) and overshoots the
    /// target on nodes that reached it early but must keep pulling. Kept
    /// for the ablation study.
    BestFitTerminal,
    /// The default: the same objective ("allow each computation node to
    /// have an equal amount of workload", Section IV-B) implemented
    /// correctly for constant-cadence pulls — *largest fit*: a requesting
    /// node takes the heaviest available block that keeps it at or under
    /// the target `W̄`, and only when nothing fits takes the lightest
    /// available block (minimum overshoot). Heavy blocks drain while nodes
    /// still have headroom (no endgame stranding) and no node ever
    /// overshoots by more than the lightest block in its reach, which
    /// reproduces the paper's Figure 10 balance (max ≈ 0.9, min ≈ 0.7 of
    /// normalized workload).
    #[default]
    PacedGreedy,
}

/// Live state of Algorithm 1.
#[derive(Debug, Clone)]
pub struct Algorithm1 {
    graph: DistributionGraph,
    /// `W_i`: workload assigned to node `i` so far.
    workloads: Vec<u64>,
    /// Total weight assigned so far.
    assigned_total: u64,
    /// Per-node workload targets. Homogeneous clusters use the uniform
    /// `W̄ = Z/m`; Section IV-B's "according to the computing capability of
    /// computational nodes, we can calculate the amount of sub-datasets to
    /// be assigned to each node" maps to capability-proportional targets.
    targets: Vec<f64>,
    policy: BalancePolicy,
    /// Capabilities the targets were derived from; kept so targets can be
    /// recomputed over the survivors after a node loss.
    capabilities: Vec<f64>,
    /// Replica metadata snapshot, consulted when re-homing a lost node's
    /// blocks onto surviving replicas.
    namenode: NameNode,
    /// `alive[i]` — node `i` has not been reported lost.
    alive: Vec<bool>,
    /// Extra weight credited per assignment — always 0 in production. See
    /// [`Algorithm1::plant_credit_skew`].
    credit_skew: u64,
}

impl Algorithm1 {
    /// Set up the scheduler for one sub-dataset over a DFS with the default
    /// (paced) policy.
    pub fn new(dfs: &Dfs, view: &SubDatasetView) -> Self {
        Self::with_namenode(dfs.namenode(), view)
    }

    /// Set up from NameNode metadata directly.
    pub fn with_namenode(namenode: &NameNode, view: &SubDatasetView) -> Self {
        Self::with_policy(namenode, view, BalancePolicy::default())
    }

    /// Set up with an explicit balance policy (homogeneous targets).
    pub fn with_policy(namenode: &NameNode, view: &SubDatasetView, policy: BalancePolicy) -> Self {
        let m = namenode.node_count();
        Self::with_capabilities(namenode, view, policy, &vec![1.0; m])
    }

    /// Set up with per-node computing capabilities: node `i` is targeted
    /// with `Z · cap_i / Σ cap` bytes of the sub-dataset, so a node twice
    /// as fast receives twice the data and all nodes finish together.
    ///
    /// # Panics
    /// Panics if `capabilities.len()` mismatches the cluster size or any
    /// capability is non-positive.
    pub fn with_capabilities(
        namenode: &NameNode,
        view: &SubDatasetView,
        policy: BalancePolicy,
        capabilities: &[f64],
    ) -> Self {
        let graph = DistributionGraph::from_view(namenode, view);
        let m = namenode.node_count();
        assert!(m > 0, "cluster must have at least one node");
        assert_eq!(capabilities.len(), m, "one capability per node");
        assert!(
            capabilities.iter().all(|&c| c.is_finite() && c > 0.0),
            "capabilities must be positive"
        );
        let cap_sum: f64 = capabilities.iter().sum();
        // Line 5 generalised: W̄_i = Z · cap_i / Σcap (uniform caps give
        // exactly Equation 6 over m).
        let total = view.estimated_total() as f64;
        let targets = capabilities.iter().map(|c| total * c / cap_sum).collect();
        Self {
            graph,
            workloads: vec![0; m],
            assigned_total: 0,
            targets,
            policy,
            capabilities: capabilities.to_vec(),
            namenode: namenode.clone(),
            alive: vec![true; m],
            credit_skew: 0,
        }
    }

    /// Test-only fault hook: credit every assignment with `weight + skew`
    /// bytes instead of `weight`. The simulation-check harness plants an
    /// off-by-one here (`skew = 1`) in its self-test to prove the
    /// conservation oracle catches mis-accounting and shrinks the failing
    /// seed — see `datanet-check`. Never call this outside tests.
    #[doc(hidden)]
    pub fn plant_credit_skew(&mut self, skew: u64) {
        self.credit_skew = skew;
    }

    /// React to the fail-stop loss of `node` (the DataNet re-planning hook):
    ///
    /// 1. drop every edge to the dead node — its unassigned local blocks
    ///    stay schedulable, now remote-only;
    /// 2. forget the workload credited to it (its filtered partition died
    ///    with it) and re-enqueue `requeue` — the blocks it had been
    ///    assigned — against their *surviving* replicas;
    /// 3. recompute per-node targets over the survivors so the redistributed
    ///    weight keeps flowing capability-proportionally: each survivor is
    ///    targeted at its current workload plus its capability share of all
    ///    still-unassigned weight.
    ///
    /// # Panics
    /// Panics if a requeued block has no surviving replica (the caller must
    /// triage unrecoverable blocks first) or is still unassigned.
    pub fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        self.alive[node.index()] = false;
        self.graph.remove_node(node);
        self.assigned_total -= self.workloads[node.index()];
        self.workloads[node.index()] = 0;
        for &b in requeue {
            let survivors = self.namenode.surviving_replicas(b, &self.alive);
            assert!(
                !survivors.is_empty(),
                "block {b} has no surviving replica — filter unrecoverable blocks before requeueing"
            );
            self.graph.reinsert(b, survivors);
        }
        let cap_sum: f64 = (0..self.capabilities.len())
            .filter(|&i| self.alive[i])
            .map(|i| self.capabilities[i])
            .sum();
        assert!(cap_sum > 0.0, "every node is dead");
        let unassigned = self.graph.remaining_weight() as f64;
        for i in 0..self.targets.len() {
            self.targets[i] = if self.alive[i] {
                self.workloads[i] as f64 + unassigned * self.capabilities[i] / cap_sum
            } else {
                0.0
            };
        }
    }

    /// Whether `node` has been reported lost.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// The mean per-node target (equals the paper's `W̄` for homogeneous
    /// clusters).
    pub fn target(&self) -> f64 {
        self.targets.iter().sum::<f64>() / self.targets.len() as f64
    }

    /// Node `i`'s workload target.
    pub fn target_of(&self, node: NodeId) -> f64 {
        self.targets[node.index()]
    }

    /// Current `W_i` values.
    pub fn workloads(&self) -> &[u64] {
        &self.workloads
    }

    /// Remaining unassigned blocks.
    pub fn remaining(&self) -> usize {
        self.graph.remaining()
    }

    /// The policy the scheduler runs with.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// The paper's literal best-fit pick among `candidates`. Ties break
    /// toward the lowest block id for determinism.
    fn pick_best_fit(
        &self,
        node: NodeId,
        candidates: impl Iterator<Item = BlockId>,
    ) -> Option<BlockId> {
        let wi = self.workloads[node.index()] as f64;
        let target = self.targets[node.index()];
        candidates
            .map(|b| ((wi + self.graph.weight(b) as f64 - target).abs(), b))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("gaps are finite")
                    .then(a.1.cmp(&b.1))
            })
            .map(|(_, b)| b)
    }

    /// Largest candidate whose weight fits the node's remaining headroom
    /// `W̄ − W_i`, if any.
    fn pick_largest_fit(
        &self,
        node: NodeId,
        candidates: impl Iterator<Item = BlockId>,
    ) -> Option<BlockId> {
        let headroom = (self.targets[node.index()] - self.workloads[node.index()] as f64).max(0.0);
        candidates
            .map(|b| (self.graph.weight(b), b))
            .filter(|&(w, _)| w as f64 <= headroom)
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, b)| b)
    }

    /// Lightest candidate.
    fn pick_lightest(&self, candidates: impl Iterator<Item = BlockId>) -> Option<BlockId> {
        candidates
            .map(|b| (self.graph.weight(b), b))
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, b)| b)
    }

    /// Serve one task request from `node` (lines 7–20). Returns the chosen
    /// block and whether it was node-local, or `None` when all tasks are
    /// assigned.
    pub fn next_task_for(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        if self.graph.remaining() == 0 {
            return None;
        }
        let (block, local) = match self.policy {
            BalancePolicy::BestFitTerminal => {
                match self.pick_best_fit(node, self.graph.local_blocks(node)) {
                    Some(b) => (b, true),
                    None => {
                        let b = self
                            .pick_best_fit(node, self.graph.remaining_blocks())
                            .expect("remaining() > 0 guarantees a candidate");
                        (b, false)
                    }
                }
            }
            BalancePolicy::PacedGreedy => {
                // Candidates: the node's local blocks plus the globally
                // heaviest remaining block. Heavy blocks are only local to
                // their replica holders, whose headroom may already be
                // spent; letting every requester bid on the current global
                // heaviest guarantees heavies drain while *somebody* still
                // has headroom instead of stranding to the endgame.
                let global_heaviest = self.graph.heaviest();
                let local_fit = self.pick_largest_fit(node, self.graph.local_blocks(node));
                let global_fit = self.pick_largest_fit(node, global_heaviest.into_iter());
                // Rescue rule: fetch the global heaviest remotely when it
                // fits this node, beats the local option, and every one of
                // its replica holders already has less headroom than this
                // node — i.e. the requester is a strictly better home for
                // the block than anywhere it lives. Heavies drain while the
                // cluster still has headroom; locality stays high because a
                // holder with room keeps priority.
                let my_headroom = self.targets[node.index()] - self.workloads[node.index()] as f64;
                let rescue = global_fit.filter(|&g| {
                    let beats_local =
                        local_fit.is_none_or(|l| self.graph.weight(g) > self.graph.weight(l));
                    beats_local
                        && self
                            .graph
                            .holders(g)
                            .expect("candidate is in the graph")
                            .iter()
                            .all(|h| {
                                *h != node
                                    && self.targets[h.index()] - (self.workloads[h.index()] as f64)
                                        < my_headroom
                            })
                });
                let pick = rescue.or(local_fit).or(global_fit);
                if let Some(b) = pick {
                    let local = self
                        .graph
                        .holders(b)
                        .expect("candidate is in the graph")
                        .contains(&node);
                    (b, local)
                } else {
                    // Nothing local fits the headroom: minimise overshoot.
                    // Prefer the lightest local block, but fall back to a
                    // non-local one when the local options are much heavier
                    // (Hadoop schedules non-local maps in this situation).
                    let light_local = self.pick_lightest(self.graph.local_blocks(node));
                    let light_global = self
                        .graph
                        .lightest()
                        .expect("remaining() > 0 guarantees a candidate");
                    match light_local {
                        Some(l)
                            if self.graph.weight(l)
                                <= self.graph.weight(light_global).saturating_mul(4) =>
                        {
                            (l, true)
                        }
                        _ => (light_global, false),
                    }
                }
            }
        };
        let credit = self.graph.weight(block) + self.credit_skew;
        self.workloads[node.index()] += credit;
        self.assigned_total += credit;
        self.graph.remove_block(block);
        Some((block, local))
    }

    /// Run to completion assuming request rate proportional to capability:
    /// the node with the lowest *relative* load (`W_i / target_i`) issues
    /// the next request (ties → lowest id). For homogeneous clusters this
    /// is exactly least-loaded-first.
    pub fn plan_balanced(mut self) -> Assignment {
        let m = self.workloads.len();
        let mut assignment = Assignment::new(m);
        while self.graph.remaining() > 0 {
            let node = NodeId(
                (0..m)
                    .min_by(|&a, &b| {
                        // Zero targets (empty views) degrade to plain
                        // least-loaded order.
                        let rel = |i: usize| {
                            let t = self.targets[i];
                            if t > 0.0 {
                                self.workloads[i] as f64 / t
                            } else {
                                self.workloads[i] as f64
                            }
                        };
                        rel(a)
                            .partial_cmp(&rel(b))
                            .expect("finite ratios")
                            .then(a.cmp(&b))
                    })
                    .expect("at least one node") as u32,
            );
            let (block, local) = self
                .next_task_for(node)
                .expect("remaining() > 0 guarantees a task");
            assignment.assign(node, block, self.graph.weight(block), local);
        }
        assignment
    }

    /// Run to completion with strict round-robin requests (node 0, 1, …,
    /// m−1, 0, …). Every node receives the same task *count*, so this
    /// isolates the weight-aware argmin from request-order effects.
    pub fn plan_round_robin(mut self) -> Assignment {
        let m = self.workloads.len();
        let mut assignment = Assignment::new(m);
        let mut i = 0usize;
        while self.graph.remaining() > 0 {
            let node = NodeId((i % m) as u32);
            if let Some((block, local)) = self.next_task_for(node) {
                assignment.assign(node, block, self.graph.weight(block), local);
            }
            i += 1;
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elasticmap::Separation;
    use crate::scan::ElasticMapArray;
    use datanet_dfs::{DfsConfig, Record, SubDatasetId, Topology};

    /// A clustered dataset: sub-dataset 0's per-block share decays
    /// geometrically (60·0.9^j records in block j), mimicking the release-
    /// time clustering of movie reviews. The varying block weights give a
    /// weight-aware scheduler real room to balance.
    fn clustered_dfs(nodes: u32) -> Dfs {
        let mut recs = Vec::new();
        for i in 0..4000u64 {
            let block = i / 100;
            let within = i % 100;
            let s0_share = (60.0 * 0.9f64.powi(block as i32)) as u64;
            let s = if within < s0_share { 0 } else { 1 + i % 20 };
            recs.push(Record::new(SubDatasetId(s), i, 100, i));
        }
        let cfg = DfsConfig {
            block_size: 10_000, // 40 blocks of 100 records
            replication: 3,
            topology: Topology::single_rack(nodes),
            seed: 99,
        };
        Dfs::write_random(cfg, recs)
    }

    fn view_for(dfs: &Dfs, s: SubDatasetId) -> SubDatasetView {
        ElasticMapArray::build(dfs, &Separation::All).view(s)
    }

    #[test]
    fn every_block_assigned_exactly_once() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = Algorithm1::new(&dfs, &view).plan_balanced();
        assert_eq!(a.assigned_blocks(), view.block_count());
        // No block on two nodes.
        let mut seen = std::collections::HashSet::new();
        for n in 0..a.node_count() {
            for &b in a.tasks_of(NodeId(n as u32)) {
                assert!(seen.insert(b), "block {b} assigned twice");
            }
        }
    }

    #[test]
    fn workload_sums_are_conserved() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let total_view: u64 = view.estimated_total();
        let a = Algorithm1::new(&dfs, &view).plan_balanced();
        let total_assigned: u64 = a.workloads().iter().sum();
        assert_eq!(total_assigned, total_view);
    }

    #[test]
    fn balanced_plan_beats_ignorant_round_robin_on_clustered_data() {
        // Baseline: assign blocks round-robin by id, ignoring weights —
        // a stand-in for block-count-driven scheduling.
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let m = 8;
        let mut naive = Assignment::new(m);
        for (i, b) in view.blocks().enumerate() {
            naive.assign(NodeId((i % m) as u32), b, view.weight(b), false);
        }
        let smart = Algorithm1::new(&dfs, &view).plan_balanced();
        assert!(
            smart.imbalance() < naive.imbalance(),
            "algorithm1 {} vs naive {}",
            smart.imbalance(),
            naive.imbalance()
        );
        // On this clustered distribution the greedy balance should be
        // near-perfect while blind round-robin is visibly skewed.
        assert!(smart.imbalance() < 1.25, "got {}", smart.imbalance());
        assert!(naive.imbalance() > 1.3, "naive got {}", naive.imbalance());
    }

    #[test]
    fn prefers_local_blocks() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = Algorithm1::new(&dfs, &view).plan_balanced();
        // With 3-way replication on 8 nodes, most pulls should be local.
        assert!(
            a.locality_fraction() > 0.5,
            "locality {}",
            a.locality_fraction()
        );
    }

    #[test]
    fn next_task_exhausts_and_returns_none() {
        let dfs = clustered_dfs(4);
        let view = view_for(&dfs, SubDatasetId(0));
        let mut alg = Algorithm1::new(&dfs, &view);
        let mut count = 0;
        while alg.next_task_for(NodeId(count % 4)).is_some() {
            count += 1;
        }
        assert_eq!(count as usize, view.block_count());
        assert!(alg.next_task_for(NodeId(0)).is_none());
        assert_eq!(alg.remaining(), 0);
    }

    #[test]
    fn target_is_equation_six_over_m() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let alg = Algorithm1::new(&dfs, &view);
        assert!((alg.target() - view.estimated_total() as f64 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_plans() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = Algorithm1::new(&dfs, &view).plan_balanced();
        let b = Algorithm1::new(&dfs, &view).plan_balanced();
        assert_eq!(a, b);
    }

    #[test]
    fn capabilities_shift_workload_proportionally() {
        // A node advertised at 3x capability should receive roughly 3x the
        // bytes of a 1x node.
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let mut caps = vec![1.0f64; 8];
        caps[0] = 3.0;
        let plan = Algorithm1::with_capabilities(
            dfs.namenode(),
            &view,
            crate::planner::BalancePolicy::PacedGreedy,
            &caps,
        )
        .plan_balanced();
        let w = plan.workloads();
        let others = (1..8).map(|i| w[i]).sum::<u64>() as f64 / 7.0;
        let ratio = w[0] as f64 / others.max(1.0);
        assert!(
            (2.0..4.5).contains(&ratio),
            "fast node got {}x the average ({}) instead of ~3x",
            ratio,
            others
        );
    }

    #[test]
    fn uniform_capabilities_match_plain_constructor() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = Algorithm1::new(&dfs, &view).plan_balanced();
        let b = Algorithm1::with_capabilities(
            dfs.namenode(),
            &view,
            crate::planner::BalancePolicy::PacedGreedy,
            &[1.0; 8],
        )
        .plan_balanced();
        assert_eq!(a, b);
    }

    #[test]
    fn per_node_targets_sum_to_total() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let caps = [1.0, 2.0, 1.0, 0.5, 1.5, 1.0, 1.0, 1.0];
        let alg = Algorithm1::with_capabilities(
            dfs.namenode(),
            &view,
            crate::planner::BalancePolicy::PacedGreedy,
            &caps,
        );
        let sum: f64 = (0..8).map(|i| alg.target_of(NodeId(i))).sum();
        assert!((sum - view.estimated_total() as f64).abs() < 1e-6);
        assert!(alg.target_of(NodeId(1)) > alg.target_of(NodeId(3)));
    }

    #[test]
    #[should_panic]
    fn zero_capability_rejected() {
        let dfs = clustered_dfs(4);
        let view = view_for(&dfs, SubDatasetId(0));
        Algorithm1::with_capabilities(
            dfs.namenode(),
            &view,
            crate::planner::BalancePolicy::PacedGreedy,
            &[1.0, 0.0, 1.0, 1.0],
        );
    }

    #[test]
    fn node_lost_requeues_onto_survivors() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let mut alg = Algorithm1::new(&dfs, &view);
        // Node 2 pulls a few tasks, then dies.
        let mut node2_blocks = Vec::new();
        for _ in 0..4 {
            let (b, _) = alg.next_task_for(NodeId(2)).unwrap();
            node2_blocks.push(b);
        }
        let before_remaining = alg.remaining();
        alg.node_lost(NodeId(2), &node2_blocks);
        assert!(!alg.is_alive(NodeId(2)));
        assert_eq!(alg.remaining(), before_remaining + 4);
        assert_eq!(alg.workloads()[2], 0, "dead node's credit is forgotten");
        assert!((alg.target_of(NodeId(2))).abs() < 1e-12);
        // Survivors drain everything, including the requeued blocks.
        let mut assigned = std::collections::HashSet::new();
        let mut i = 0u32;
        loop {
            let n = NodeId(i % 8);
            i += 1;
            if n == NodeId(2) {
                continue;
            }
            match alg.next_task_for(n) {
                Some((b, _)) => assert!(assigned.insert(b), "block {b} assigned twice"),
                None => break,
            }
        }
        for b in node2_blocks {
            assert!(assigned.contains(&b), "requeued block {b} was re-assigned");
        }
        let total: u64 = alg.workloads().iter().sum();
        assert_eq!(total, view.estimated_total(), "no bytes lost or doubled");
    }

    #[test]
    fn round_robin_assigns_equal_task_counts() {
        let dfs = clustered_dfs(8);
        let view = view_for(&dfs, SubDatasetId(0));
        let a = Algorithm1::new(&dfs, &view).plan_round_robin();
        let counts: Vec<usize> = (0..8).map(|n| a.tasks_of(NodeId(n)).len()).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }
}
