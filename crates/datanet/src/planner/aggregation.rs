//! Aggregation-traffic planning — the extension the paper sketches and
//! defers ("For applications with aggregation requirements … ElasticMap can
//! also be used to minimize the data transferred with the knowledge of
//! sub-dataset distributions. We leave the optimization of the sub-dataset
//! transfer problem as a future work", Section IV-B).
//!
//! After the map phase each node `i` holds `out_i` bytes of intermediate
//! data. A reducer placed on node `n` with partition share `p` receives
//! `p · Σout` bytes, of which `p · out_n` is already local. Cross-network
//! traffic is therefore
//!
//! ```text
//! traffic = Σ_r share_r · (total − out_{node_r})
//! ```
//!
//! which is minimised by (a) placing reducers on the nodes holding the most
//! intermediate data and (b) skewing partition shares toward
//! data-rich reducers — bounded by a configurable reduce-side imbalance
//! factor so reduce workload stays acceptable.

use datanet_dfs::NodeId;
use serde::{Deserialize, Serialize};

/// A reducer placement with weighted partition shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationPlan {
    /// Chosen reducer nodes (distinct).
    pub reducers: Vec<NodeId>,
    /// Partition share per reducer, aligned with `reducers`; sums to 1.
    pub shares: Vec<f64>,
    /// Estimated bytes crossing the network under this plan.
    pub est_traffic: u64,
}

impl AggregationPlan {
    /// Validate internal consistency.
    ///
    /// # Panics
    /// Panics if shares/reducers are misaligned or shares don't sum to 1.
    pub fn validate(&self) {
        assert_eq!(self.reducers.len(), self.shares.len());
        assert!(!self.reducers.is_empty(), "need at least one reducer");
        let sum: f64 = self.shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        assert!(self.shares.iter().all(|&s| s >= 0.0));
        let mut sorted: Vec<NodeId> = self.reducers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), self.reducers.len(), "duplicate reducers");
    }

    /// Largest share over the uniform share — the reduce-side imbalance
    /// this plan accepts in exchange for lower traffic.
    pub fn reduce_imbalance(&self) -> f64 {
        let max = self.shares.iter().cloned().fold(0.0f64, f64::max);
        max * self.reducers.len() as f64
    }
}

/// Cross-network traffic of an arbitrary placement with uniform shares —
/// the Hadoop default (reducers land wherever slots are free; we charge the
/// canonical nodes `0..R`).
pub fn uniform_baseline_traffic(map_output: &[u64], reducers: usize) -> u64 {
    assert!(reducers > 0 && reducers <= map_output.len());
    let total: u64 = map_output.iter().sum();
    let share = 1.0 / reducers as f64;
    (0..reducers)
        .map(|r| (share * (total - map_output[r]) as f64) as u64)
        .sum()
}

/// Plan reducer placement and shares from per-node map-output volumes.
///
/// * `reducers` — how many reduce tasks to run.
/// * `max_skew` — cap on any reducer's share relative to uniform (1.0 =
///   strictly uniform shares, 2.0 = a reducer may take up to twice the
///   uniform share). The reduce phase's own balance bound.
///
/// # Panics
/// Panics on an empty cluster, `reducers` out of range, or `max_skew < 1`.
pub fn plan_aggregation(map_output: &[u64], reducers: usize, max_skew: f64) -> AggregationPlan {
    assert!(!map_output.is_empty(), "need at least one node");
    assert!(
        reducers > 0 && reducers <= map_output.len(),
        "reducer count {reducers} out of range"
    );
    assert!(max_skew >= 1.0, "max_skew must be >= 1, got {max_skew}");
    let total: u64 = map_output.iter().sum();

    // (a) Place reducers on the data-richest nodes.
    let mut by_output: Vec<usize> = (0..map_output.len()).collect();
    by_output.sort_by(|&a, &b| map_output[b].cmp(&map_output[a]).then(a.cmp(&b)));
    let chosen: Vec<usize> = by_output.into_iter().take(reducers).collect();

    // (b) Skew shares toward reducers with more local data, bounded by
    // max_skew and re-normalised. Proportional-to-local-data with floor and
    // ceiling, solved by clamping + water-filling on the remainder.
    let uniform = 1.0 / reducers as f64;
    let ceiling = uniform * max_skew;
    let floor = uniform / max_skew;
    let local: Vec<f64> = chosen.iter().map(|&n| map_output[n] as f64).collect();
    let local_sum: f64 = local.iter().sum();
    let mut shares: Vec<f64> = if local_sum == 0.0 || total == 0 {
        vec![uniform; reducers]
    } else {
        local
            .iter()
            .map(|&l| (l / local_sum).clamp(floor, ceiling))
            .collect()
    };
    // Normalise while respecting bounds (a couple of passes suffice for
    // our small reducer counts).
    for _ in 0..32 {
        let sum: f64 = shares.iter().sum();
        if (sum - 1.0).abs() < 1e-12 {
            break;
        }
        let scale = 1.0 / sum;
        for s in &mut shares {
            *s = (*s * scale).clamp(floor, ceiling);
        }
    }
    // Final exact normalisation (bounds may round a hair; accept ±ε on the
    // clamp rather than a share sum ≠ 1).
    let sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s /= sum;
    }

    let est_traffic = chosen
        .iter()
        .zip(&shares)
        .map(|(&n, &p)| (p * (total - map_output[n]) as f64) as u64)
        .sum();

    AggregationPlan {
        reducers: chosen.into_iter().map(|n| NodeId(n as u32)).collect(),
        shares,
        est_traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_data_richest_nodes() {
        let out = [10u64, 500, 20, 300, 5, 40];
        let plan = plan_aggregation(&out, 2, 1.0);
        plan.validate();
        assert_eq!(plan.reducers, vec![NodeId(1), NodeId(3)]);
        // Uniform shares at max_skew = 1.
        assert!(plan.shares.iter().all(|&s| (s - 0.5).abs() < 1e-9));
    }

    #[test]
    fn beats_uniform_baseline() {
        let out = [1000u64, 10, 10, 10, 800, 10, 10, 10];
        let naive = uniform_baseline_traffic(&out, 2);
        let plan = plan_aggregation(&out, 2, 1.0);
        assert!(
            plan.est_traffic < naive,
            "planned {} !< naive {naive}",
            plan.est_traffic
        );
    }

    #[test]
    fn skew_reduces_traffic_further() {
        let out = [1000u64, 10, 10, 10, 200, 10, 10, 10];
        let flat = plan_aggregation(&out, 2, 1.0);
        let skewed = plan_aggregation(&out, 2, 2.0);
        skewed.validate();
        assert!(skewed.est_traffic <= flat.est_traffic);
        assert!(skewed.reduce_imbalance() <= 2.0 + 1e-9);
        // The data-rich reducer holds the bigger share.
        assert!(skewed.shares[0] > skewed.shares[1]);
    }

    #[test]
    fn all_nodes_as_reducers_with_uniform_data_is_neutral() {
        let out = [100u64; 4];
        let plan = plan_aggregation(&out, 4, 3.0);
        plan.validate();
        // Uniform data: shares stay uniform and traffic equals baseline.
        assert_eq!(plan.est_traffic, uniform_baseline_traffic(&out, 4));
        assert!((plan.reduce_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_output_degrades_gracefully() {
        let out = [0u64; 4];
        let plan = plan_aggregation(&out, 2, 2.0);
        plan.validate();
        assert_eq!(plan.est_traffic, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_reducers() {
        plan_aggregation(&[1, 2], 0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_skew_below_one() {
        plan_aggregation(&[1, 2], 1, 0.5);
    }
}
