//! The ElasticMap memory-cost model — Equation 5 of the paper:
//!
//! ```text
//! Cost(memory) = m·(1−α)·(−ln ε)/ln²2  +  m·α·k/δ      [bits]
//! ```
//!
//! where `m` is the number of sub-datasets in a block, `α` the fraction
//! stored in the hash map, `ε` the bloom false-positive rate, `k` the bit
//! width of one hash-map record and `δ` the hash-map load factor.

use serde::{Deserialize, Serialize};

/// Parameters of the Equation 5 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bloom false-positive rate `ε`.
    pub epsilon: f64,
    /// Bits per hash-map record `k`. The paper's "85 bits" per-entry figure
    /// corresponds to a 64-bit id + ~21 bits of size/overhead.
    pub record_bits: f64,
    /// Hash-map load factor `δ` ∈ (0, 1].
    pub load_factor: f64,
}

impl Default for MemoryModel {
    /// The paper's typical configuration: ε = 1% (≈10 bits/element bloom),
    /// 85-bit hash-map records at load factor 1 (so 85 bits each, matching
    /// the Section III-A example).
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            record_bits: 85.0,
            load_factor: 1.0,
        }
    }
}

impl MemoryModel {
    /// Create a model.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(epsilon: f64, record_bits: f64, load_factor: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        assert!(record_bits > 0.0, "record bits must be positive");
        assert!(
            load_factor > 0.0 && load_factor <= 1.0,
            "load factor must be in (0,1], got {load_factor}"
        );
        Self {
            epsilon,
            record_bits,
            load_factor,
        }
    }

    /// Bits per bloom-filter element: `−ln ε / ln² 2` (≈ 9.6 at ε = 1%).
    pub fn bloom_bits_per_item(&self) -> f64 {
        let ln2 = std::f64::consts::LN_2;
        -self.epsilon.ln() / (ln2 * ln2)
    }

    /// Bits per hash-map element: `k / δ`.
    pub fn map_bits_per_item(&self) -> f64 {
        self.record_bits / self.load_factor
    }

    /// Equation 5: total bits for one block holding `m` sub-datasets with
    /// fraction `alpha` in the hash map.
    ///
    /// # Panics
    /// Panics unless `alpha ∈ [0, 1]`.
    pub fn cost_bits(&self, m: usize, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let m = m as f64;
        m * (1.0 - alpha) * self.bloom_bits_per_item() + m * alpha * self.map_bits_per_item()
    }

    /// Equation 5 in bytes.
    pub fn cost_bytes(&self, m: usize, alpha: f64) -> f64 {
        self.cost_bits(m, alpha) / 8.0
    }

    /// The raw-data-to-meta-data "representation ratio" of Table II:
    /// block bytes divided by modelled meta-data bytes.
    pub fn representation_ratio(&self, block_bytes: u64, m: usize, alpha: f64) -> f64 {
        let meta = self.cost_bytes(m, alpha);
        assert!(meta > 0.0, "meta-data size must be positive");
        block_bytes as f64 / meta
    }

    /// Largest `alpha` whose Equation 5 cost fits a byte budget — how the
    /// "elastic" split point is chosen under a memory constraint.
    /// Returns 0 when even the all-bloom layout exceeds the budget.
    pub fn max_alpha_for_budget(&self, m: usize, budget_bytes: f64) -> f64 {
        let floor = self.cost_bytes(m, 0.0);
        let ceil = self.cost_bytes(m, 1.0);
        if budget_bytes <= floor {
            return 0.0;
        }
        if budget_bytes >= ceil {
            return 1.0;
        }
        // Cost is linear in alpha: solve directly.
        (budget_bytes - floor) / (ceil - floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bits_per_item_figures() {
        // Section III-A: "storing a sub-dataset's information ... in a
        // HashMap will cost 85 bits while using a bloom filter will cost
        // 10 bits" — the defaults reproduce both.
        let m = MemoryModel::default();
        assert!((m.map_bits_per_item() - 85.0).abs() < 1e-9);
        assert!((m.bloom_bits_per_item() - 9.585).abs() < 0.01);
    }

    #[test]
    fn cost_is_linear_and_monotone_in_alpha() {
        let m = MemoryModel::default();
        let c0 = m.cost_bits(1000, 0.0);
        let c5 = m.cost_bits(1000, 0.5);
        let c1 = m.cost_bits(1000, 1.0);
        assert!(c0 < c5 && c5 < c1);
        assert!(((c0 + c1) / 2.0 - c5).abs() < 1e-6, "linearity");
    }

    #[test]
    fn extremes_match_components() {
        let m = MemoryModel::default();
        assert!((m.cost_bits(100, 0.0) - 100.0 * m.bloom_bits_per_item()).abs() < 1e-9);
        assert!((m.cost_bits(100, 1.0) - 100.0 * m.map_bits_per_item()).abs() < 1e-9);
    }

    #[test]
    fn budget_solver_inverts_cost() {
        let m = MemoryModel::default();
        for &alpha in &[0.0, 0.21, 0.31, 0.51, 1.0] {
            let budget = m.cost_bytes(5000, alpha);
            let solved = m.max_alpha_for_budget(5000, budget);
            assert!(
                (solved - alpha).abs() < 1e-9,
                "alpha {alpha} → budget → {solved}"
            );
        }
        assert_eq!(m.max_alpha_for_budget(5000, 0.0), 0.0);
        assert_eq!(m.max_alpha_for_budget(5000, f64::MAX), 1.0);
    }

    #[test]
    fn representation_ratio_grows_as_alpha_shrinks() {
        // Table II's trend: smaller α → larger raw:meta ratio.
        let m = MemoryModel::default();
        let block = 64 * 1024 * 1024u64;
        let subs = 100_000;
        let r21 = m.representation_ratio(block, subs, 0.21);
        let r31 = m.representation_ratio(block, subs, 0.31);
        let r51 = m.representation_ratio(block, subs, 0.51);
        assert!(r21 > r31 && r31 > r51);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        MemoryModel::new(0.0, 85.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_alpha_above_one() {
        MemoryModel::default().cost_bits(10, 1.01);
    }
}
