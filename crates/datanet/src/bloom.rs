//! A Bloom filter, built from scratch (Bloom, CACM 1970 — reference \[6\] of
//! the paper).
//!
//! The ElasticMap stores non-dominant sub-datasets here: ~10 bits per
//! element instead of the ~85 bits a hash-map entry costs (Section III-A).
//! Sizing follows the textbook formulas: for `n` expected items at false
//! positive rate `ε`, `bits = −n·ln ε / ln² 2` and `k = (bits/n)·ln 2`
//! hash functions.
//!
//! ## Layout
//!
//! Rate-sized filters use a **cache-line-blocked** layout (Putze, Sanders &
//! Singler, *Cache-, Hash- and Space-Efficient Bloom Filters*): the first
//! hash picks one 512-bit block (8 words — one cache line) and all `k`
//! probes double-hash *inside* that block, so a negative lookup touches one
//! cache line instead of `k`. The bit budget is rounded **up** to whole
//! blocks, which at our filter sizes (hundreds of tail sub-datasets per
//! ElasticMap) over-provisions enough to absorb the blocking penalty and
//! keep the measured FPR at the design rate.
//!
//! Filters deserialized from pre-blocking stores (and filters built with
//! explicit [`BloomFilter::with_params`]) keep the original flat layout —
//! probes modulo the whole bit array — so their membership answers are
//! bit-for-bit what they were when written.

use datanet_dfs::SubDatasetId;
use serde::{DeError, Deserialize, Serialize, Value};

/// Bits per cache-line block: 8 × 64 = one x86/ARM cache line.
const BLOCK_BITS: u64 = 512;

/// Words per cache-line block.
const BLOCK_WORDS: u64 = BLOCK_BITS / 64;

/// A fixed-size Bloom filter over [`SubDatasetId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    items: usize,
    /// Number of 512-bit blocks; 0 means the legacy flat layout.
    blocks: u64,
}

impl BloomFilter {
    /// Build a blocked filter sized for `expected_items` at false-positive
    /// rate `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn with_rate(expected_items: usize, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "false positive rate must be in (0,1), got {epsilon}"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let bits = (-n * epsilon.ln() / (ln2 * ln2)).ceil().max(8.0) as u64;
        let k = ((bits as f64 / n) * ln2).round().clamp(1.0, 30.0) as u32;
        let blocks = bits.div_ceil(BLOCK_BITS);
        Self {
            bits: vec![0; (blocks * BLOCK_WORDS) as usize],
            num_bits: blocks * BLOCK_BITS,
            num_hashes: k,
            items: 0,
            blocks,
        }
    }

    /// Build a **flat** filter with explicit bit count and hash count (the
    /// pre-blocking layout; kept for tests and ablations).
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `num_hashes == 0`.
    pub fn with_params(num_bits: u64, num_hashes: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        let words = num_bits.div_ceil(64) as usize;
        Self {
            bits: vec![0; words],
            num_bits,
            num_hashes,
            items: 0,
            blocks: 0,
        }
    }

    /// Two independent 64-bit hashes of the id (SplitMix64 finalizers with
    /// distinct stream constants), combined by double hashing.
    #[inline]
    fn hash_pair(id: SubDatasetId) -> (u64, u64) {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let h1 = mix(id.0.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let h2 = mix(id.0.wrapping_add(0xD1B5_4A32_D192_ED03)) | 1; // odd ⇒ full period
        (h1, h2)
    }

    /// The word/mask of probe `i` for the id hashed to `(h1, h2)`.
    /// Blocked: `h1` selects the cache-line block, the in-block offset
    /// double-hashes off `h1`'s high bits with the odd stride `h2` (odd ⇒
    /// coprime with 512 ⇒ all `k ≤ 512` probes distinct). Flat: the classic
    /// Kirsch–Mitzenmacher probe modulo the whole array.
    #[inline]
    fn probe(&self, h1: u64, h2: u64, i: u64) -> (usize, u64) {
        let bit = if self.blocks == 0 {
            h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits
        } else {
            let base = (h1 % self.blocks) * BLOCK_BITS;
            base + ((h1 >> 32).wrapping_add(i.wrapping_mul(h2)) & (BLOCK_BITS - 1))
        };
        ((bit / 64) as usize, 1 << (bit % 64))
    }

    /// Insert an id.
    pub fn insert(&mut self, id: SubDatasetId) {
        let (h1, h2) = Self::hash_pair(id);
        for i in 0..self.num_hashes as u64 {
            let (word, mask) = self.probe(h1, h2, i);
            self.bits[word] |= mask;
        }
        self.items += 1;
    }

    /// Whether the id *may* be present. False positives possible, false
    /// negatives impossible.
    pub fn contains(&self, id: SubDatasetId) -> bool {
        let (h1, h2) = Self::hash_pair(id);
        (0..self.num_hashes as u64).all(|i| {
            let (word, mask) = self.probe(h1, h2, i);
            self.bits[word] & mask != 0
        })
    }

    /// Number of insert calls so far (an upper bound on distinct items).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Size of the bit array.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Number of hash probes per operation.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Number of 512-bit cache-line blocks; 0 for the legacy flat layout.
    pub fn layout_blocks(&self) -> u64 {
        self.blocks
    }

    /// Memory footprint of the bit array in bytes (what Equation 5 accounts
    /// as `−ln ε / ln² 2` bits per element).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Expected false-positive rate at the current fill:
    /// `(1 − e^{−kn/m})^k` (the flat-layout formula; for the blocked layout
    /// it is the leading-order term, the whole-block round-up covering the
    /// per-block load variance).
    pub fn expected_fpr(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.items as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Fraction of set bits (diagnostic; ~50% at design capacity).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }
}

// Hand-written serde: the `blocks` field was added by the blocked-layout
// rework, and a filter written before it must keep answering with flat
// probing — a missing field means `blocks: 0`, never a decode error. (The
// vendored serde derive has no `#[serde(default)]`.)
impl Serialize for BloomFilter {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bits".to_string(), self.bits.to_value()),
            ("num_bits".to_string(), Value::U64(self.num_bits)),
            (
                "num_hashes".to_string(),
                Value::U64(u64::from(self.num_hashes)),
            ),
            ("items".to_string(), Value::U64(self.items as u64)),
            ("blocks".to_string(), Value::U64(self.blocks)),
        ])
    }
}

impl Deserialize for BloomFilter {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("bloom filter object", v));
        }
        let field = |name: &str| -> Result<&Value, DeError> {
            v.get(name)
                .ok_or_else(|| DeError::msg(format!("bloom filter missing field `{name}`")))
        };
        let blocks = match v.get("blocks") {
            None | Some(Value::Null) => 0,
            Some(b) => u64::from_value(b)?,
        };
        Ok(Self {
            bits: Vec::<u64>::from_value(field("bits")?)?,
            num_bits: u64::from_value(field("num_bits")?)?,
            num_hashes: u32::from_value(field("num_hashes")?)?,
            items: usize::from_value(field("items")?)?,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000 {
            f.insert(SubDatasetId(i * 17));
        }
        for i in 0..1000 {
            assert!(f.contains(SubDatasetId(i * 17)), "lost id {}", i * 17);
        }
    }

    #[test]
    fn false_positive_rate_near_design_point() {
        let n = 10_000;
        let eps = 0.01;
        let mut f = BloomFilter::with_rate(n, eps);
        for i in 0..n as u64 {
            f.insert(SubDatasetId(i));
        }
        // Probe ids disjoint from the inserted range.
        let probes = 100_000u64;
        let fp = (0..probes)
            .filter(|i| f.contains(SubDatasetId(1_000_000 + i)))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(
            rate < eps * 3.0,
            "observed FPR {rate} way above design {eps}"
        );
        assert!(
            (f.expected_fpr() - eps).abs() < eps,
            "analytic FPR {} far from design {eps}",
            f.expected_fpr()
        );
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_rate(100, 0.01);
        for i in 0..1000 {
            assert!(!f.contains(SubDatasetId(i)));
        }
        assert_eq!(f.items(), 0);
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn paper_memory_claim_ten_bits_per_item() {
        // Section III-A: "using a bloom filter will cost 10 bits" per
        // sub-dataset (vs 85 in a hash map) — that corresponds to ε ≈ 1%.
        // The whole-block round-up stays inside the same budget.
        let f = BloomFilter::with_rate(10_000, 0.01);
        let bits_per_item = f.num_bits() as f64 / 10_000.0;
        assert!(
            (9.0..11.0).contains(&bits_per_item),
            "got {bits_per_item} bits/item"
        );
    }

    #[test]
    fn rate_sized_filters_are_cache_line_blocked() {
        let f = BloomFilter::with_rate(10_000, 0.01);
        assert!(f.layout_blocks() > 0);
        assert_eq!(f.num_bits(), f.layout_blocks() * 512);
        assert_eq!(f.memory_bytes() as u64, f.layout_blocks() * 64);
        // Explicit-parameter filters keep the flat layout.
        assert_eq!(BloomFilter::with_params(64, 3).layout_blocks(), 0);
    }

    #[test]
    fn fill_ratio_near_half_at_capacity() {
        let n = 5_000;
        let mut f = BloomFilter::with_rate(n, 0.01);
        for i in 0..n as u64 {
            f.insert(SubDatasetId(i));
        }
        let r = f.fill_ratio();
        assert!((0.4..0.6).contains(&r), "fill ratio {r} not near 0.5");
    }

    #[test]
    fn tiny_filter_still_works() {
        let mut f = BloomFilter::with_params(8, 1);
        f.insert(SubDatasetId(1));
        assert!(f.contains(SubDatasetId(1)));
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = BloomFilter::with_rate(100, 0.05);
        for i in 0..100 {
            f.insert(SubDatasetId(i));
        }
        let json = serde_json::to_string(&f).unwrap();
        let g: BloomFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn pre_blocking_serialization_decodes_as_flat_layout() {
        // A filter written before the `blocks` field existed: must load and
        // answer with the original flat probe sequence.
        let mut flat = BloomFilter::with_params(1024, 5);
        for i in 0..64u64 {
            flat.insert(SubDatasetId(i * 3));
        }
        let legacy_json = format!(
            "{{\"bits\":{},\"num_bits\":1024,\"num_hashes\":5,\"items\":64}}",
            serde_json::to_string(&flat.bits).unwrap()
        );
        let g: BloomFilter = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(g.layout_blocks(), 0);
        for i in 0..200u64 {
            assert_eq!(g.contains(SubDatasetId(i)), flat.contains(SubDatasetId(i)));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_rate() {
        BloomFilter::with_rate(10, 1.5);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bits() {
        BloomFilter::with_params(0, 3);
    }
}
