//! A Bloom filter, built from scratch (Bloom, CACM 1970 — reference \[6\] of
//! the paper).
//!
//! The ElasticMap stores non-dominant sub-datasets here: ~10 bits per
//! element instead of the ~85 bits a hash-map entry costs (Section III-A).
//! Sizing follows the textbook formulas: for `n` expected items at false
//! positive rate `ε`, `bits = −n·ln ε / ln² 2` and `k = (bits/n)·ln 2`
//! hash functions. Lookups use double hashing (Kirsch–Mitzenmacher): the
//! `i`-th probe is `h1 + i·h2`.

use datanet_dfs::SubDatasetId;
use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over [`SubDatasetId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Build a filter sized for `expected_items` at false-positive rate
    /// `epsilon`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn with_rate(expected_items: usize, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "false positive rate must be in (0,1), got {epsilon}"
        );
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let bits = (-n * epsilon.ln() / (ln2 * ln2)).ceil().max(8.0) as u64;
        let k = ((bits as f64 / n) * ln2).round().clamp(1.0, 30.0) as u32;
        Self::with_params(bits, k)
    }

    /// Build a filter with explicit bit count and hash count.
    ///
    /// # Panics
    /// Panics if `num_bits == 0` or `num_hashes == 0`.
    pub fn with_params(num_bits: u64, num_hashes: u32) -> Self {
        assert!(num_bits > 0, "bloom filter needs at least one bit");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        let words = num_bits.div_ceil(64) as usize;
        Self {
            bits: vec![0; words],
            num_bits,
            num_hashes,
            items: 0,
        }
    }

    /// Two independent 64-bit hashes of the id (SplitMix64 finalizers with
    /// distinct stream constants), combined by double hashing.
    #[inline]
    fn hash_pair(id: SubDatasetId) -> (u64, u64) {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let h1 = mix(id.0.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let h2 = mix(id.0.wrapping_add(0xD1B5_4A32_D192_ED03)) | 1; // odd ⇒ full period
        (h1, h2)
    }

    /// Insert an id.
    pub fn insert(&mut self, id: SubDatasetId) {
        let (h1, h2) = Self::hash_pair(id);
        for i in 0..self.num_hashes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// Whether the id *may* be present. False positives possible, false
    /// negatives impossible.
    pub fn contains(&self, id: SubDatasetId) -> bool {
        let (h1, h2) = Self::hash_pair(id);
        (0..self.num_hashes as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Number of insert calls so far (an upper bound on distinct items).
    pub fn items(&self) -> usize {
        self.items
    }

    /// Size of the bit array.
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Number of hash probes per operation.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Memory footprint of the bit array in bytes (what Equation 5 accounts
    /// as `−ln ε / ln² 2` bits per element).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Expected false-positive rate at the current fill:
    /// `(1 − e^{−kn/m})^k`.
    pub fn expected_fpr(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.items as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Fraction of set bits (diagnostic; ~50% at design capacity).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_rate(1000, 0.01);
        for i in 0..1000 {
            f.insert(SubDatasetId(i * 17));
        }
        for i in 0..1000 {
            assert!(f.contains(SubDatasetId(i * 17)), "lost id {}", i * 17);
        }
    }

    #[test]
    fn false_positive_rate_near_design_point() {
        let n = 10_000;
        let eps = 0.01;
        let mut f = BloomFilter::with_rate(n, eps);
        for i in 0..n as u64 {
            f.insert(SubDatasetId(i));
        }
        // Probe ids disjoint from the inserted range.
        let probes = 100_000u64;
        let fp = (0..probes)
            .filter(|i| f.contains(SubDatasetId(1_000_000 + i)))
            .count();
        let rate = fp as f64 / probes as f64;
        assert!(
            rate < eps * 3.0,
            "observed FPR {rate} way above design {eps}"
        );
        assert!(
            (f.expected_fpr() - eps).abs() < eps,
            "analytic FPR {} far from design {eps}",
            f.expected_fpr()
        );
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_rate(100, 0.01);
        for i in 0..1000 {
            assert!(!f.contains(SubDatasetId(i)));
        }
        assert_eq!(f.items(), 0);
        assert_eq!(f.expected_fpr(), 0.0);
    }

    #[test]
    fn paper_memory_claim_ten_bits_per_item() {
        // Section III-A: "using a bloom filter will cost 10 bits" per
        // sub-dataset (vs 85 in a hash map) — that corresponds to ε ≈ 1%.
        let f = BloomFilter::with_rate(10_000, 0.01);
        let bits_per_item = f.num_bits() as f64 / 10_000.0;
        assert!(
            (9.0..11.0).contains(&bits_per_item),
            "got {bits_per_item} bits/item"
        );
    }

    #[test]
    fn fill_ratio_near_half_at_capacity() {
        let n = 5_000;
        let mut f = BloomFilter::with_rate(n, 0.01);
        for i in 0..n as u64 {
            f.insert(SubDatasetId(i));
        }
        let r = f.fill_ratio();
        assert!((0.4..0.6).contains(&r), "fill ratio {r} not near 0.5");
    }

    #[test]
    fn tiny_filter_still_works() {
        let mut f = BloomFilter::with_params(8, 1);
        f.insert(SubDatasetId(1));
        assert!(f.contains(SubDatasetId(1)));
    }

    #[test]
    fn serde_roundtrip() {
        let mut f = BloomFilter::with_rate(100, 0.05);
        for i in 0..100 {
            f.insert(SubDatasetId(i));
        }
        let json = serde_json::to_string(&f).unwrap();
        let g: BloomFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_rate() {
        BloomFilter::with_rate(10, 1.5);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bits() {
        BloomFilter::with_params(0, 3);
    }
}
