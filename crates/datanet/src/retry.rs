//! Shared retry/backoff machinery for every bounded-retry loop in the stack.
//!
//! Three call sites use it:
//!
//! 1. **MetaStore replica failover** ([`crate::MetaStore`]): each replica is
//!    tried `attempts_per_replica` times with an exponential (jittered) sleep
//!    between attempts before the read fails over to the next replica.
//! 2. **Engine re-execution budget** (`datanet-mapreduce`): a [`RetryBudget`]
//!    counts executions per block; a block whose re-execution count exceeds
//!    `max_retries` after a crash is abandoned (Hadoop's
//!    `mapreduce.map.maxattempts`).
//! 3. **Pipeline checkpoint writes** (`datanet-analytics`): each per-stage
//!    checkpoint commit is retried under the same policy.
//!
//! Jitter is *deterministic*: it is derived from a caller-supplied seed, so
//! simulated runs (and the `datanet-check` harness) replay identically while
//! concurrent real-world clients still decorrelate their retry storms.

use std::time::Duration;

/// Bounded retry with exponential backoff. The same operation is tried
/// `attempts_per_replica` times (sleeping between attempts) before the
/// caller escalates — to the next replica for store reads, to a violation
/// for checkpoint writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per replica / per target (≥ 1).
    pub attempts_per_replica: u32,
    /// Sleep before the first same-target retry, microseconds.
    pub backoff_base_micros: u64,
    /// Backoff growth per retry (exponential).
    pub backoff_multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts_per_replica: 2,
            backoff_base_micros: 50,
            backoff_multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base · mult^(retry−1)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = u64::from(self.backoff_multiplier).saturating_pow(retry.saturating_sub(1));
        Duration::from_micros(self.backoff_base_micros.saturating_mul(factor))
    }

    /// Jittered backoff in `[b/2, 3b/2)` around [`RetryPolicy::backoff`]'s
    /// `b`. The jitter is a pure function of `(policy, retry, seed)` — same
    /// seed, same sleep — so retries stay reproducible under the simulation
    /// harness while distinct seeds (shard, replica, stage…) decorrelate.
    pub fn backoff_jittered(&self, retry: u32, seed: u64) -> Duration {
        let base = u64::try_from(self.backoff(retry).as_micros()).unwrap_or(u64::MAX);
        if base == 0 {
            return Duration::ZERO;
        }
        let h = mix(seed ^ (u64::from(retry).rotate_left(32)));
        Duration::from_micros((base / 2).saturating_add(h % base))
    }
}

/// SplitMix64 finalizer: cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-item execution budget: one attempt counter per item plus the shared
/// `max_retries` ceiling. An item is *exhausted* once its re-execution count
/// (executions beyond the first) exceeds the budget — the engine then
/// abandons the block instead of requeueing it forever.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    attempts: Vec<u32>,
    max_retries: u32,
}

impl RetryBudget {
    /// A fresh budget covering `items` items.
    pub fn new(items: usize, max_retries: u32) -> Self {
        Self {
            attempts: vec![0; items],
            max_retries,
        }
    }

    /// Executions started for item `i` (first run + retries).
    pub fn attempts(&self, i: usize) -> u32 {
        self.attempts[i]
    }

    /// Has item `i` been executed at least once?
    pub fn tried(&self, i: usize) -> bool {
        self.attempts[i] > 0
    }

    /// Record one execution start for item `i`; returns the new count.
    pub fn record(&mut self, i: usize) -> u32 {
        self.attempts[i] += 1;
        self.attempts[i]
    }

    /// True once re-executing `i` again would exceed the retry ceiling:
    /// `attempts > max_retries` (the first run is free, retries are not).
    pub fn exhausted(&self, i: usize) -> bool {
        self.attempts[i] > self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            attempts_per_replica: 3,
            backoff_base_micros: 100,
            backoff_multiplier: 2,
        };
        assert_eq!(r.backoff(1), Duration::from_micros(100));
        assert_eq!(r.backoff(2), Duration::from_micros(200));
        assert_eq!(r.backoff(3), Duration::from_micros(400));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let r = RetryPolicy::default();
        for retry in 1..6 {
            let base = r.backoff(retry).as_micros() as u64;
            for seed in 0..50u64 {
                let j = r.backoff_jittered(retry, seed).as_micros() as u64;
                assert_eq!(j, r.backoff_jittered(retry, seed).as_micros() as u64);
                assert!(j >= base / 2 && j < base / 2 + base, "jitter out of band");
            }
        }
    }

    #[test]
    fn jitter_seeds_decorrelate() {
        let r = RetryPolicy {
            attempts_per_replica: 2,
            backoff_base_micros: 1_000_000,
            backoff_multiplier: 2,
        };
        let distinct: std::collections::BTreeSet<u128> = (0..32)
            .map(|seed| r.backoff_jittered(1, seed).as_micros())
            .collect();
        assert!(distinct.len() > 16, "seeded jitter barely varies");
    }

    #[test]
    fn zero_base_never_sleeps() {
        let r = RetryPolicy {
            attempts_per_replica: 4,
            backoff_base_micros: 0,
            backoff_multiplier: 7,
        };
        assert_eq!(r.backoff_jittered(3, 9), Duration::ZERO);
    }

    #[test]
    fn budget_counts_and_exhausts() {
        let mut b = RetryBudget::new(3, 2);
        assert!(!b.tried(0) && !b.exhausted(0));
        assert_eq!(b.record(0), 1);
        assert!(b.tried(0) && !b.exhausted(0));
        b.record(0);
        assert!(!b.exhausted(0), "2 attempts with max_retries=2: in budget");
        b.record(0);
        assert!(b.exhausted(0), "3 attempts exceed max_retries=2");
        assert_eq!(b.attempts(1), 0);
        assert!(!b.exhausted(1));
    }

    #[test]
    fn zero_retry_budget_exhausts_after_first_run() {
        let mut b = RetryBudget::new(1, 0);
        assert!(!b.exhausted(0));
        b.record(0);
        assert!(b.exhausted(0));
    }
}
