//! The ElasticMap: per-block hybrid meta-data store (Section III-A).
//!
//! For one block, stores the **dominant** sub-datasets' sizes exactly and
//! the **non-dominant** sub-datasets' existence in a Bloom filter.
//! "Elastic" because the split point slides with the memory budget:
//! everything exact when memory is plentiful (`Separation::All`), almost
//! everything in the bloom filter when it is tight.
//!
//! The exact side is stored as **sorted parallel arrays** (ids + sizes)
//! rather than a hash map: a block's dominant set is small (tens of
//! entries), so a branch-light binary search beats hashing every probe,
//! stays cache-resident, iterates in deterministic order (which makes the
//! sharded array build byte-identical to the serial one), and spends zero
//! bytes on empty hash buckets. On disk the exact side keeps its PR 2
//! object shape (`{"id": size, …}`), so stores written before this layout
//! load unchanged.

use crate::bloom::BloomFilter;
use crate::buckets::{BucketCounter, Buckets};
use datanet_dfs::{Block, BlockId, SubDatasetId};
use serde::{DeError, Deserialize, Serialize, Value};

/// How to split a block's sub-datasets between the exact side and the bloom
/// filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Separation {
    /// Store the top `alpha` fraction (by the bucket walk) of sub-datasets
    /// exactly; the rest go to the bloom filter. This is the paper's `α` in
    /// Equation 5 (their experiments use α = 0.3).
    Alpha(f64),
    /// Store sub-datasets with at least `min_bytes` in this block exactly;
    /// smaller ones go to the bloom filter (the "32 kB upper bound / 1 kB
    /// lower bound" discussion of Section III-B).
    Threshold {
        /// Minimum per-block size for exact storage.
        min_bytes: u64,
    },
    /// Everything exact (maximum memory, maximum accuracy).
    All,
    /// Everything in the bloom filter (minimum memory; sizes unknown).
    BloomOnly,
}

/// What the ElasticMap knows about a sub-dataset within one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeInfo {
    /// Dominant: the exact byte size is recorded.
    Exact(u64),
    /// Non-dominant: present in the bloom filter; actual size unknown but
    /// below the block's dominance threshold.
    Approximate,
    /// Not present in this block (up to bloom false positives, the filter
    /// never reports an actually-present sub-dataset as absent).
    Absent,
}

/// Per-block meta-data: the paper's Figure 3 node (`id → quantity` pairs
/// plus a bloom bitmap).
#[derive(Debug, Clone)]
pub struct ElasticMap {
    block: BlockId,
    /// Dominant sub-dataset ids, sorted ascending.
    exact_ids: Vec<SubDatasetId>,
    /// `exact_sizes[i]` is the exact byte size of `exact_ids[i]`.
    exact_sizes: Vec<u64>,
    bloom: BloomFilter,
    /// Number of sub-datasets relegated to the bloom filter.
    bloom_items: usize,
    /// Dominance threshold used at build time: every bloom-resident
    /// sub-dataset has size < `threshold` in this block. Used as the
    /// fallback `δ` bound of Equation 6.
    threshold: u64,
    /// Smallest per-sub-dataset size relegated to the bloom filter (the
    /// tight lower bound for `δ`); `None` when the bloom side is empty.
    bloom_min_bytes: Option<u64>,
}

/// False-positive rate used for bloom sizing; 1% reproduces the paper's
/// "10 bits per sub-dataset" figure.
pub const BLOOM_EPSILON: f64 = 0.01;

impl ElasticMap {
    /// Build the ElasticMap of `block` with the given separation policy.
    ///
    /// Single scan over the block's records (the bucket counter is O(1) per
    /// record), then an O(#buckets) threshold walk and one pass over the
    /// distinct sub-datasets to split them — O(records + distinct·log
    /// distinct) for the final sort of the (small) dominant set.
    ///
    /// Buckets use a Fibonacci progression based at the block's **mean
    /// record size**: per-sub-dataset sizes are integer multiples of record
    /// sizes, so this keeps the walk discriminating from "one record" up to
    /// "~34 records" regardless of experiment scale. At the paper's scale
    /// (64 MB blocks, ~600 B–1 kB log records) this reproduces their
    /// 1 kB-based bucket series.
    pub fn build(block: &Block, policy: &Separation) -> Self {
        let base = if block.is_empty() {
            1024 // paper default; irrelevant for an empty block
        } else {
            (block.bytes() / block.len() as u64).max(1)
        };
        Self::build_with_buckets(block, policy, Buckets::fibonacci(base, 9))
    }

    /// [`ElasticMap::build`] with explicit buckets (for tests/ablations).
    pub fn build_with_buckets(block: &Block, policy: &Separation, buckets: Buckets) -> Self {
        // Accumulate sizes in a tight one-map-hit-per-record loop, then
        // bucket the final sizes once: identical counts to incremental
        // `BucketCounter::record`, minus two bucket walks per record.
        // Pre-size for the worst case (every record a distinct sub-dataset):
        // one up-front table, zero rehashes during accumulation.
        let mut sizes = crate::symbol::FastMap::<SubDatasetId, u64>::with_capacity_and_hasher(
            block.len(),
            crate::symbol::FxBuildHasher::default(),
        );
        for r in block.records() {
            let e = sizes.entry(r.subdataset).or_insert(0);
            *e = e.saturating_add(r.size as u64);
        }
        Self::from_size_table(block.id(), sizes, policy, buckets)
    }

    /// Build from an already-accumulated per-sub-dataset size table — the
    /// entry point the streaming ingestor uses to seal a write-time delta
    /// map without re-touching the records. Output is independent of the
    /// table's iteration order (the exact side is sorted, bloom insertion
    /// is idempotent, and the minimum is order-free), so a sealed delta is
    /// byte-identical to [`ElasticMap::build`] on the same block.
    pub(crate) fn from_size_table(
        block: BlockId,
        sizes: crate::symbol::FastMap<SubDatasetId, u64>,
        policy: &Separation,
        buckets: Buckets,
    ) -> Self {
        let counter = BucketCounter::from_sizes(buckets, sizes);
        let distinct = counter.distinct();
        let threshold = match policy {
            Separation::Alpha(alpha) => {
                assert!(
                    (0.0..=1.0).contains(alpha),
                    "alpha must be in [0,1], got {alpha}"
                );
                let quota = (*alpha * distinct as f64).ceil() as usize;
                counter.dominance_threshold(quota)
            }
            Separation::Threshold { min_bytes } => *min_bytes,
            Separation::All => 0,
            Separation::BloomOnly => u64::MAX,
        };
        let (sizes, _) = counter.into_separated(0);
        let bloom_count = sizes.values().filter(|&&s| s < threshold).count();
        let mut bloom = BloomFilter::with_rate(bloom_count.max(1), BLOOM_EPSILON);
        let mut exact: Vec<(SubDatasetId, u64)> = Vec::with_capacity(distinct - bloom_count);
        let mut bloom_min_bytes: Option<u64> = None;
        for (id, size) in sizes {
            if size >= threshold {
                exact.push((id, size));
            } else {
                bloom.insert(id);
                bloom_min_bytes = Some(bloom_min_bytes.map_or(size, |m: u64| m.min(size)));
            }
        }
        exact.sort_unstable_by_key(|&(id, _)| id);
        let (exact_ids, exact_sizes) = exact.into_iter().unzip();
        Self {
            block,
            exact_ids,
            exact_sizes,
            bloom,
            bloom_items: bloom_count,
            threshold,
            bloom_min_bytes,
        }
    }

    /// The block this map describes.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The exact size of a dominant sub-dataset, if it is one.
    #[inline]
    pub fn exact_size(&self, id: SubDatasetId) -> Option<u64> {
        self.exact_ids
            .binary_search(&id)
            .ok()
            .map(|i| self.exact_sizes[i])
    }

    /// Query a sub-dataset.
    pub fn query(&self, id: SubDatasetId) -> SizeInfo {
        if let Some(size) = self.exact_size(id) {
            SizeInfo::Exact(size)
        } else if self.bloom.contains(id) {
            SizeInfo::Approximate
        } else {
            SizeInfo::Absent
        }
    }

    /// Batched [`ElasticMap::query`]: one answer per input id, in input
    /// order, bit-identical to N single queries. When the input is sorted
    /// ascending, the exact side is resolved by a single merge-join over
    /// the sorted id array instead of one binary search per id — the
    /// amortization the array- and planner-level batch APIs rely on.
    pub fn query_batch(&self, ids: &[SubDatasetId]) -> Vec<SizeInfo> {
        let sorted = ids.windows(2).all(|w| w[0] <= w[1]);
        if !sorted {
            return ids.iter().map(|&id| self.query(id)).collect();
        }
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0; // cursor into exact_ids
        for &id in ids {
            while i < self.exact_ids.len() && self.exact_ids[i] < id {
                i += 1;
            }
            out.push(if i < self.exact_ids.len() && self.exact_ids[i] == id {
                SizeInfo::Exact(self.exact_sizes[i])
            } else if self.bloom.contains(id) {
                SizeInfo::Approximate
            } else {
                SizeInfo::Absent
            });
        }
        out
    }

    /// Exact entries (dominant sub-datasets) in ascending id order — the
    /// Table I content.
    pub fn exact_entries(&self) -> impl Iterator<Item = (SubDatasetId, u64)> + '_ {
        self.exact_ids
            .iter()
            .zip(&self.exact_sizes)
            .map(|(&id, &s)| (id, s))
    }

    /// Number of exact entries.
    pub fn exact_len(&self) -> usize {
        self.exact_ids.len()
    }

    /// Number of bloom-filter entries.
    pub fn bloom_len(&self) -> usize {
        self.bloom_items
    }

    /// The tail bloom filter itself (for bloom-only summary sidecars).
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// Total distinct sub-datasets recorded.
    pub fn distinct(&self) -> usize {
        self.exact_ids.len() + self.bloom_items
    }

    /// Fraction of sub-datasets stored exactly — the *achieved* α (the
    /// bucket walk may overshoot the requested α by part of one bucket).
    pub fn achieved_alpha(&self) -> f64 {
        if self.distinct() == 0 {
            return 0.0;
        }
        self.exact_ids.len() as f64 / self.distinct() as f64
    }

    /// Dominance threshold used at build time.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Per-block `δ` bound: the smallest size that went to the bloom side,
    /// if known, else the build threshold (every bloom entry is below it).
    pub fn bloom_delta_hint(&self) -> u64 {
        self.bloom_min_bytes
            .unwrap_or(if self.threshold == u64::MAX {
                0
            } else {
                self.threshold
            })
    }

    /// Measured memory footprint in bytes: exact entries at their
    /// serialized width plus the bloom bit array. Mirrors Equation 5 with
    /// `k` = 96 bits/record (64-bit id + 32-bit size + overhead amortised
    /// by the load factor, see [`crate::memory::MemoryModel`]).
    pub fn memory_bytes(&self) -> usize {
        self.exact_ids.len() * 12 + self.bloom.memory_bytes()
    }
}

// Hand-written serde preserving the PR 2 on-disk shape: the exact side is
// an object keyed by the stringified id, entries sorted lexicographically
// by key (exactly how the vendored serde serializes a `HashMap`, which is
// what this struct used to hold). Old shards therefore decode through the
// same path as new ones, and new shards stay byte-stable across builds.
impl Serialize for ElasticMap {
    fn to_value(&self) -> Value {
        let mut exact: Vec<(String, Value)> = self
            .exact_entries()
            .map(|(id, s)| (id.0.to_string(), Value::U64(s)))
            .collect();
        exact.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(vec![
            ("block".to_string(), self.block.to_value()),
            ("exact".to_string(), Value::Object(exact)),
            ("bloom".to_string(), self.bloom.to_value()),
            (
                "bloom_items".to_string(),
                Value::U64(self.bloom_items as u64),
            ),
            ("threshold".to_string(), Value::U64(self.threshold)),
            (
                "bloom_min_bytes".to_string(),
                self.bloom_min_bytes.to_value(),
            ),
        ])
    }
}

impl Deserialize for ElasticMap {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("elastic map object", v));
        }
        let field = |name: &str| -> Result<&Value, DeError> {
            v.get(name)
                .ok_or_else(|| DeError::msg(format!("elastic map missing field `{name}`")))
        };
        let mut exact: Vec<(SubDatasetId, u64)> = match field("exact")? {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| {
                    let id = k
                        .parse::<u64>()
                        .map_err(|e| DeError::msg(format!("bad sub-dataset key `{k}`: {e}")))?;
                    Ok((SubDatasetId(id), u64::from_value(val)?))
                })
                .collect::<Result<_, DeError>>()?,
            other => return Err(DeError::expected("exact size object", other)),
        };
        exact.sort_unstable_by_key(|&(id, _)| id);
        let (exact_ids, exact_sizes) = exact.into_iter().unzip();
        Ok(Self {
            block: BlockId::from_value(field("block")?)?,
            exact_ids,
            exact_sizes,
            bloom: BloomFilter::from_value(field("bloom")?)?,
            bloom_items: usize::from_value(field("bloom_items")?)?,
            threshold: u64::from_value(field("threshold")?)?,
            bloom_min_bytes: Option::<u64>::from_value(
                v.get("bloom_min_bytes").unwrap_or(&Value::Null),
            )?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::Record;

    /// Block with sub-dataset i ∈ 0..10 holding (i+1)·100 bytes.
    fn graded_block() -> Block {
        let mut recs = Vec::new();
        let mut seed = 0;
        for i in 0..10u64 {
            for _ in 0..(i + 1) {
                recs.push(Record::new(SubDatasetId(i), i, 100, seed));
                seed += 1;
            }
        }
        Block::new(BlockId(0), recs)
    }

    #[test]
    fn all_policy_stores_everything_exactly() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::All);
        assert_eq!(m.exact_len(), 10);
        assert_eq!(m.bloom_len(), 0);
        for i in 0..10u64 {
            assert_eq!(m.query(SubDatasetId(i)), SizeInfo::Exact((i + 1) * 100));
        }
        assert_eq!(m.achieved_alpha(), 1.0);
    }

    #[test]
    fn bloom_only_policy_stores_nothing_exactly() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::BloomOnly);
        assert_eq!(m.exact_len(), 0);
        assert_eq!(m.bloom_len(), 10);
        for i in 0..10u64 {
            assert_eq!(m.query(SubDatasetId(i)), SizeInfo::Approximate);
        }
    }

    #[test]
    fn threshold_policy_splits_at_min_bytes() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::Threshold { min_bytes: 500 });
        // Sizes 100..1000; ≥500 are ids 4..9 (sizes 500..1000).
        assert_eq!(m.exact_len(), 6);
        assert_eq!(m.bloom_len(), 4);
        assert_eq!(m.query(SubDatasetId(9)), SizeInfo::Exact(1000));
        assert_eq!(m.query(SubDatasetId(0)), SizeInfo::Approximate);
        assert_eq!(m.bloom_delta_hint(), 100);
    }

    #[test]
    fn alpha_policy_keeps_at_least_requested_fraction() {
        let b = graded_block();
        for &alpha in &[0.1, 0.3, 0.5, 0.9] {
            let m = ElasticMap::build(&b, &Separation::Alpha(alpha));
            assert!(
                m.achieved_alpha() >= alpha - 1e-9,
                "requested α={alpha}, achieved {}",
                m.achieved_alpha()
            );
            // The exact side must hold the LARGEST sub-datasets: every exact
            // size ≥ every bloom-side size.
            let min_exact = m.exact_entries().map(|(_, s)| s).min().unwrap_or(u64::MAX);
            for i in 0..10u64 {
                if let SizeInfo::Approximate = m.query(SubDatasetId(i)) {
                    assert!((i + 1) * 100 <= min_exact);
                }
            }
        }
    }

    #[test]
    fn absent_subdatasets_mostly_absent() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::Alpha(0.3));
        // With 1% FPR, 100 absent ids should almost all report Absent.
        let absent = (100..200u64)
            .filter(|&i| m.query(SubDatasetId(i)) == SizeInfo::Absent)
            .count();
        assert!(absent >= 95, "only {absent}/100 reported absent");
    }

    #[test]
    fn no_false_negatives_ever() {
        let b = graded_block();
        for policy in [
            Separation::Alpha(0.2),
            Separation::Threshold { min_bytes: 400 },
            Separation::All,
            Separation::BloomOnly,
        ] {
            let m = ElasticMap::build(&b, &policy);
            for i in 0..10u64 {
                assert_ne!(
                    m.query(SubDatasetId(i)),
                    SizeInfo::Absent,
                    "present sub-dataset {i} reported absent under {policy:?}"
                );
            }
        }
    }

    #[test]
    fn query_batch_matches_single_queries_any_order() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::Alpha(0.4));
        // Sorted (merge-join path), unsorted (fallback path), duplicates.
        let sorted: Vec<SubDatasetId> = (0..30u64).map(SubDatasetId).collect();
        let unsorted: Vec<SubDatasetId> = [9u64, 2, 150, 2, 0, 7]
            .iter()
            .map(|&i| SubDatasetId(i))
            .collect();
        for ids in [&sorted[..], &unsorted[..]] {
            let batch = m.query_batch(ids);
            assert_eq!(batch.len(), ids.len());
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(batch[i], m.query(id), "id {id}");
            }
        }
        assert!(m.query_batch(&[]).is_empty());
    }

    #[test]
    fn memory_shrinks_as_alpha_drops() {
        // A block with many distinct sub-datasets shows the elastic
        // trade-off clearly.
        let recs: Vec<Record> = (0..2000u64)
            .map(|i| Record::new(SubDatasetId(i % 500), i, ((i % 500) * 7 + 40) as u32, i))
            .collect();
        let b = Block::new(BlockId(1), recs);
        let full = ElasticMap::build(&b, &Separation::All).memory_bytes();
        let half = ElasticMap::build(&b, &Separation::Alpha(0.5)).memory_bytes();
        let none = ElasticMap::build(&b, &Separation::BloomOnly).memory_bytes();
        assert!(full > half, "full {full} vs half {half}");
        assert!(half > none, "half {half} vs none {none}");
    }

    #[test]
    fn empty_block_yields_empty_map() {
        let b = Block::new(BlockId(2), vec![]);
        let m = ElasticMap::build(&b, &Separation::Alpha(0.3));
        assert_eq!(m.distinct(), 0);
        assert_eq!(m.query(SubDatasetId(0)), SizeInfo::Absent);
        assert_eq!(m.achieved_alpha(), 0.0);
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        let b = graded_block();
        let m = ElasticMap::build(&b, &Separation::Alpha(0.4));
        let json = serde_json::to_string(&m).unwrap();
        let m2: ElasticMap = serde_json::from_str(&json).unwrap();
        for i in 0..20u64 {
            assert_eq!(m.query(SubDatasetId(i)), m2.query(SubDatasetId(i)));
        }
        // Deterministic bytes: re-serializing the decoded map is identical.
        assert_eq!(json, serde_json::to_string(&m2).unwrap());
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_rejected() {
        ElasticMap::build(&graded_block(), &Separation::Alpha(1.5));
    }
}
