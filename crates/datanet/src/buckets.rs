//! Dominant sub-dataset separation via Fibonacci-width size buckets
//! (Section III-B).
//!
//! Sorting the `m` sub-datasets of a block by size to pick the dominant
//! ones would cost O(m log m). The paper's observation: because of content
//! clustering, only the *bucket counts* matter — distribute sub-datasets
//! into size intervals during the scan (O(1) per record), then walk buckets
//! from the largest interval down until the hash-map budget is filled. The
//! intervals follow a Fibonacci progression so that "larger data sizes have
//! sparser intervals":
//!
//! ```text
//! (0,1kb) [1,2) [2,3) [3,5) [5,8) [8,13) [13,21) [21,34) [34kb, ∞)
//! ```

use crate::symbol::FastMap;
use datanet_dfs::SubDatasetId;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;

/// A monotone series of bucket lower bounds (bytes). Bucket `i` covers
/// `[bounds[i], bounds[i+1])`; the last bucket is unbounded above.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Buckets {
    /// `bounds[0]` is always 0.
    bounds: Vec<u64>,
}

impl Buckets {
    /// The paper's instance: Fibonacci multiples of 1 kB up to 34 kB
    /// (suited to 64 MB blocks: at most 64M/32k = 2048 sub-datasets can sit
    /// in the top bucket).
    pub fn paper() -> Self {
        Self::fibonacci(1024, 9)
    }

    /// Fibonacci progression scaled by `base` bytes: bounds
    /// `0, base, 2·base, 3·base, 5·base, 8·base, …` with `count` finite
    /// buckets plus the unbounded top bucket. A `base` large enough that a
    /// bound would overflow `u64` simply stops the progression early (the
    /// top bucket is unbounded anyway), so no input panics.
    ///
    /// # Panics
    /// Panics if `base == 0` or `count == 0`.
    pub fn fibonacci(base: u64, count: usize) -> Self {
        assert!(base > 0, "bucket base must be positive");
        assert!(count > 0, "need at least one bucket");
        let mut bounds = vec![0u64];
        let (mut a, mut b) = (1u64, 2u64);
        for _ in 0..count {
            match a.checked_mul(base) {
                Some(bound) if bound > *bounds.last().expect("non-empty") => bounds.push(bound),
                _ => break,
            }
            let next = a.saturating_add(b);
            a = b;
            b = next;
        }
        Self { bounds }
    }

    /// Buckets scaled for a given block size: the paper's 1 kB base is for
    /// 64 MB blocks; smaller experimental blocks scale the base down
    /// proportionally (min 1 byte) so separation behaviour is preserved.
    pub fn for_block_size(block_size: u64) -> Self {
        let base = (block_size / (64 * 1024)).max(1);
        Self::fibonacci(base, 9)
    }

    /// Explicit bounds. `bounds` must start at 0 and increase strictly.
    ///
    /// # Panics
    /// Panics on empty, non-zero-leading or non-increasing bounds.
    pub fn explicit(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "bounds must be non-empty");
        assert_eq!(bounds[0], 0, "first bound must be 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase strictly"
        );
        Self { bounds }
    }

    /// Number of buckets (including the unbounded top one).
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the bucket containing `size`. O(log #buckets); with tens of
    /// buckets this is a handful of comparisons.
    pub fn bucket_of(&self, size: u64) -> usize {
        // partition_point gives the count of bounds <= size; sizes equal to
        // a bound belong to the bucket starting at that bound.
        self.bounds.partition_point(|&b| b <= size) - 1
    }

    /// Lower bound of bucket `i` in bytes.
    pub fn lower_bound(&self, i: usize) -> u64 {
        self.bounds[i]
    }
}

/// Streaming bucket statistics for one block: tracks each sub-dataset's
/// running size and the per-bucket membership counts, maintained
/// incrementally as records are scanned (the "adjust the sub-dataset's
/// bucket accordingly" step of Section III-B).
#[derive(Debug, Clone)]
pub struct BucketCounter {
    buckets: Buckets,
    /// Fast-hashed: this map takes one hit per scanned record, the single
    /// hottest line of the metadata build.
    sizes: FastMap<SubDatasetId, u64>,
    counts: Vec<usize>,
}

impl BucketCounter {
    /// Create a counter over the given bucket series.
    pub fn new(buckets: Buckets) -> Self {
        let counts = vec![0; buckets.len()];
        Self {
            buckets,
            sizes: FastMap::default(),
            counts,
        }
    }

    /// Build a counter from fully-accumulated per-sub-dataset sizes in one
    /// O(distinct) counting pass. Equivalent to [`BucketCounter::record`]
    /// over the same data, but skips the per-record incremental bucket
    /// maintenance — callers that only need the *final* threshold (the
    /// ElasticMap build) accumulate sizes in a tight loop and bucket once
    /// here, dropping two `bucket_of` walks from every scanned record.
    pub fn from_sizes(buckets: Buckets, sizes: FastMap<SubDatasetId, u64>) -> Self {
        let mut counts = vec![0; buckets.len()];
        for &size in sizes.values() {
            counts[buckets.bucket_of(size)] += 1;
        }
        Self {
            buckets,
            sizes,
            counts,
        }
    }

    /// Account `bytes` of one record belonging to `id` — O(1) amortised.
    /// Sizes saturate at `u64::MAX` rather than overflow. First insertion
    /// is detected by map vacancy, not by the old size being 0, so repeated
    /// zero-byte records cannot double-count a sub-dataset.
    pub fn record(&mut self, id: SubDatasetId, bytes: u64) {
        match self.sizes.entry(id) {
            Entry::Vacant(e) => {
                e.insert(bytes);
                self.counts[self.buckets.bucket_of(bytes)] += 1;
            }
            Entry::Occupied(mut e) => {
                let old = *e.get();
                let new = old.saturating_add(bytes);
                *e.get_mut() = new;
                let old_bucket = self.buckets.bucket_of(old);
                let new_bucket = self.buckets.bucket_of(new);
                if old_bucket != new_bucket {
                    self.counts[old_bucket] -= 1;
                    self.counts[new_bucket] += 1;
                }
            }
        }
    }

    /// Number of distinct sub-datasets seen.
    pub fn distinct(&self) -> usize {
        self.sizes.len()
    }

    /// Sub-dataset count currently in bucket `i`.
    pub fn count(&self, i: usize) -> usize {
        self.counts[i]
    }

    /// The accumulated exact sizes.
    pub fn sizes(&self) -> &FastMap<SubDatasetId, u64> {
        &self.sizes
    }

    /// The bucket series.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// The size threshold that selects approximately the `quota` largest
    /// sub-datasets: walk buckets from the top down, accumulating counts;
    /// return the lower bound of the last bucket taken. Everything with
    /// size ≥ threshold goes to the hash map. O(#buckets).
    ///
    /// If `quota == 0` returns `u64::MAX` (nothing dominant); if `quota ≥
    /// distinct` returns 0 (everything dominant). Because buckets are taken
    /// whole, the actual number selected may exceed `quota` by up to one
    /// bucket's population — the paper accepts the same slack ("we only need
    /// to know the statistic value on different buckets").
    pub fn dominance_threshold(&self, quota: usize) -> u64 {
        if quota == 0 {
            return u64::MAX;
        }
        let mut taken = 0;
        for i in (0..self.counts.len()).rev() {
            taken += self.counts[i];
            if taken >= quota {
                return self.buckets.lower_bound(i);
            }
        }
        0
    }

    /// Consume the counter, returning `(sizes, threshold)` for the given
    /// hash-map quota.
    pub fn into_separated(self, quota: usize) -> (FastMap<SubDatasetId, u64>, u64) {
        let threshold = self.dominance_threshold(quota);
        (self.sizes, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bucket_bounds() {
        let b = Buckets::paper();
        let kb = 1024;
        assert_eq!(b.len(), 10);
        assert_eq!(b.lower_bound(0), 0);
        assert_eq!(b.lower_bound(1), kb);
        assert_eq!(b.lower_bound(2), 2 * kb);
        assert_eq!(b.lower_bound(3), 3 * kb);
        assert_eq!(b.lower_bound(4), 5 * kb);
        assert_eq!(b.lower_bound(5), 8 * kb);
        assert_eq!(b.lower_bound(6), 13 * kb);
        assert_eq!(b.lower_bound(7), 21 * kb);
        assert_eq!(b.lower_bound(8), 34 * kb);
        assert_eq!(b.lower_bound(9), 55 * kb);
    }

    #[test]
    fn bucket_of_boundaries() {
        let b = Buckets::explicit(vec![0, 10, 20, 50]);
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(9), 0);
        assert_eq!(b.bucket_of(10), 1);
        assert_eq!(b.bucket_of(19), 1);
        assert_eq!(b.bucket_of(20), 2);
        assert_eq!(b.bucket_of(49), 2);
        assert_eq!(b.bucket_of(50), 3);
        assert_eq!(b.bucket_of(u64::MAX), 3);
    }

    #[test]
    fn counter_tracks_moves_between_buckets() {
        let mut c = BucketCounter::new(Buckets::explicit(vec![0, 10, 100]));
        let s = SubDatasetId(1);
        c.record(s, 5); // bucket 0
        assert_eq!(c.count(0), 1);
        c.record(s, 6); // total 11 → bucket 1
        assert_eq!(c.count(0), 0);
        assert_eq!(c.count(1), 1);
        c.record(s, 90); // total 101 → bucket 2
        assert_eq!(c.count(1), 0);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    fn threshold_selects_top_buckets() {
        let mut c = BucketCounter::new(Buckets::explicit(vec![0, 10, 100, 1000]));
        // 3 small (size 5), 2 medium (50), 1 large (5000).
        for i in 0..3 {
            c.record(SubDatasetId(i), 5);
        }
        for i in 3..5 {
            c.record(SubDatasetId(i), 50);
        }
        c.record(SubDatasetId(5), 5000);
        assert_eq!(c.dominance_threshold(1), 1000); // just the large one
                                                    // Quota 2: bucket [100,1000) is empty, so the walk continues into
                                                    // [10,100) which holds both mediums — threshold drops to 10.
        assert_eq!(c.dominance_threshold(2), 10);
        assert_eq!(c.dominance_threshold(3), 10); // bucket taken whole
        assert_eq!(c.dominance_threshold(6), 0); // everyone
        assert_eq!(c.dominance_threshold(0), u64::MAX);
    }

    #[test]
    fn threshold_consistent_with_sort_based_selection() {
        // The bucket walk must select a superset of the top-`quota`
        // sub-datasets chosen by a full sort.
        let mut c = BucketCounter::new(Buckets::fibonacci(8, 9));
        let sizes: Vec<u64> = (1..=50u64).map(|i| i * i * 3 % 977 + 1).collect();
        for (i, &s) in sizes.iter().enumerate() {
            c.record(SubDatasetId(i as u64), s);
        }
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for quota in [1usize, 5, 10, 25, 50] {
            let thr = c.dominance_threshold(quota);
            let selected = sizes.iter().filter(|&&s| s >= thr).count();
            assert!(
                selected >= quota.min(sizes.len()),
                "quota {quota}: only {selected} selected at threshold {thr}"
            );
            // Everything selected must be at least as large as the smallest
            // of the sort-based top-`selected`.
            let kth = sorted[selected - 1];
            assert!(thr <= kth);
        }
    }

    #[test]
    fn for_block_size_scales_base() {
        let b64mb = Buckets::for_block_size(64 * 1024 * 1024);
        assert_eq!(b64mb.lower_bound(1), 1024);
        let b1mb = Buckets::for_block_size(1024 * 1024);
        assert_eq!(b1mb.lower_bound(1), 16);
        let tiny = Buckets::for_block_size(300);
        assert_eq!(tiny.lower_bound(1), 1);
    }

    #[test]
    fn fibonacci_edge_sizes_bucket_exactly() {
        // A size exactly on a Fibonacci bound belongs to the bucket that
        // starts there; one byte less stays below.
        let b = Buckets::fibonacci(1024, 9);
        for (i, edge) in [1u64, 2, 3, 5, 8, 13, 21, 34, 55].iter().enumerate() {
            let bound = edge * 1024;
            assert_eq!(b.bucket_of(bound), i + 1, "at bound {bound}");
            assert_eq!(b.bucket_of(bound - 1), i, "below bound {bound}");
        }
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(u64::MAX), 9);
    }

    #[test]
    fn zero_byte_subdatasets_count_once() {
        // Regression: first insertion used to be detected by `old == 0`, so
        // a second zero-byte record for the same id inflated bucket 0.
        let mut c = BucketCounter::new(Buckets::fibonacci(1024, 9));
        for _ in 0..5 {
            c.record(SubDatasetId(1), 0);
            c.record(SubDatasetId(2), 0);
        }
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.count(0), 2, "zero-byte ids double-counted");
        assert_eq!(c.sizes()[&SubDatasetId(1)], 0);
        // A later real record moves it out of bucket 0 exactly once.
        c.record(SubDatasetId(1), 2048);
        assert_eq!(c.count(0), 1);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.dominance_threshold(1), 2 * 1024);
        assert_eq!(c.dominance_threshold(2), 0);
    }

    #[test]
    fn near_u64_max_sizes_bucket_deterministically() {
        // Sizes at the top of the u64 range must neither panic nor wrap.
        let mut c = BucketCounter::new(Buckets::fibonacci(1024, 9));
        c.record(SubDatasetId(0), u64::MAX - 5);
        c.record(SubDatasetId(0), 10); // would overflow; saturates
        c.record(SubDatasetId(1), u64::MAX);
        assert_eq!(c.sizes()[&SubDatasetId(0)], u64::MAX);
        assert_eq!(c.distinct(), 2);
        let top = c.buckets().len() - 1;
        assert_eq!(c.count(top), 2);
        assert_eq!(c.dominance_threshold(2), 55 * 1024);
    }

    #[test]
    fn huge_bases_truncate_instead_of_overflowing() {
        // A base near u64::MAX cannot represent the later Fibonacci bounds;
        // the progression stops early and stays strictly increasing.
        let b = Buckets::fibonacci(u64::MAX / 2, 9);
        assert!(b.len() >= 3, "0, base and 2·base all fit");
        assert_eq!(b.lower_bound(1), u64::MAX / 2);
        assert_eq!(b.bucket_of(u64::MAX), b.len() - 1);
        let b = Buckets::fibonacci(u64::MAX, 9);
        assert_eq!(b.len(), 2);
        assert_eq!(b.bucket_of(u64::MAX - 1), 0);
        assert_eq!(b.bucket_of(u64::MAX), 1);
    }

    #[test]
    #[should_panic]
    fn explicit_rejects_nonzero_start() {
        Buckets::explicit(vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn explicit_rejects_decreasing() {
        Buckets::explicit(vec![0, 5, 5]);
    }
}
