//! **DataNet** — the paper's primary contribution: sub-dataset
//! distribution-aware meta-data and scheduling for distributed file systems.
//!
//! Reproduces *DataNet: A Data Distribution-aware Method for Sub-dataset
//! Analysis on Distributed File Systems* (IPDPS 2016). The pipeline:
//!
//! 1. **Scan** ([`scan`]): one linear pass over every DFS block builds, per
//!    block, the exact per-sub-dataset sizes, in parallel across blocks.
//! 2. **Separate** ([`buckets`]): Fibonacci-width size buckets split the few
//!    *dominant* sub-datasets from the long tail in O(m) per block — the
//!    paper's bucket/count-sort trick that avoids an O(m log m) sort.
//! 3. **Store** ([`elasticmap`]): an [`ElasticMap`] keeps dominant sizes
//!    exactly in a hash map and the tail's mere existence in a
//!    [`bloom::BloomFilter`]; the memory trade-off follows Equation 5
//!    ([`memory`]).
//! 4. **Query** ([`distribution`]): a [`SubDatasetView`] collects, for one
//!    sub-dataset, the exact-size blocks (τ₁), the bloom-only blocks (τ₂)
//!    and the Equation 6 size estimate `Z = Σ|s∩b| + δ·|τ₂|`.
//! 5. **Plan** ([`bipartite`], [`planner`]): the bipartite node×block graph
//!    plus Algorithm 1 (greedy workload balancing) or the Ford–Fulkerson
//!    optimal planner turn the view into a balanced task assignment.
//!
//! ```
//! use datanet::prelude::*;
//! use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
//!
//! // Ten records of two sub-datasets into 300-byte blocks on 4 nodes.
//! let recs = (0..10).map(|i| Record::new(SubDatasetId(i % 2), i, 100, i));
//! let cfg = DfsConfig { block_size: 300, replication: 2,
//!                       topology: Topology::single_rack(4), seed: 7 };
//! let dfs = Dfs::write_random(cfg, recs);
//!
//! // Build the ElasticMap array in one scan, query a sub-dataset,
//! // and plan a balanced execution.
//! let maps = ElasticMapArray::build(&dfs, &Separation::All);
//! let view = maps.view(SubDatasetId(0));
//! assert_eq!(view.estimated_total(), dfs.subdataset_total(SubDatasetId(0)));
//! let assignment = Algorithm1::new(&dfs, &view).plan_round_robin();
//! assert_eq!(assignment.assigned_blocks(), view.block_count());
//! ```

pub mod bipartite;
pub mod bloom;
pub mod buckets;
pub mod checkpoint;
pub mod degrade;
pub mod distribution;
pub mod elasticmap;
pub mod ingest;
pub mod memory;
pub mod planner;
pub mod retry;
pub mod scan;
pub mod store;
pub mod symbol;

pub use bipartite::DistributionGraph;
pub use bloom::BloomFilter;
pub use buckets::{BucketCounter, Buckets};
pub use checkpoint::{CheckpointManifest, CheckpointPlan};
pub use degrade::{DegradedView, MetaHealth, Rung, RungCounts, ShardSource};
pub use distribution::SubDatasetView;
pub use elasticmap::{ElasticMap, Separation, SizeInfo};
pub use ingest::{CommitPlan, IngestConfig, IngestStats, Ingestor};
pub use memory::MemoryModel;
pub use planner::{
    plan_aggregation, uniform_baseline_traffic, AggregationPlan, Algorithm1, Assignment,
    BalancePolicy, EpochKey, FordFulkersonPlanner, PlanCache,
};
pub use planner::{plan_balanced_batch, plan_maxflow_batch};
pub use retry::{RetryBudget, RetryPolicy};
pub use scan::ElasticMapArray;
pub use store::{BlockSummary, Manifest, MetaStore, ScrubReport, StoreError};
pub use symbol::{FastMap, FxBuildHasher, FxHasher64, Sym, SymbolTable};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::bipartite::DistributionGraph;
    pub use crate::bloom::BloomFilter;
    pub use crate::buckets::Buckets;
    pub use crate::distribution::SubDatasetView;
    pub use crate::elasticmap::{ElasticMap, Separation, SizeInfo};
    pub use crate::ingest::{CommitPlan, IngestConfig, IngestStats, Ingestor};
    pub use crate::memory::MemoryModel;
    pub use crate::planner::{
        plan_aggregation, uniform_baseline_traffic, AggregationPlan, Algorithm1, Assignment,
        BalancePolicy, EpochKey, FordFulkersonPlanner, PlanCache,
    };
    pub use crate::planner::{plan_balanced_batch, plan_maxflow_batch};
    pub use crate::scan::ElasticMapArray;
    pub use crate::symbol::{FastMap, Sym, SymbolTable};
}
