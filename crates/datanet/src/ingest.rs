//! Streaming ingest: incremental ElasticMap maintenance as blocks arrive.
//!
//! The batch path ([`crate::scan::ElasticMapArray::build`]) assumes a frozen
//! dataset and rescans everything. This module is the paper's premise taken
//! seriously — per-block summaries are collected **at write time**, HAIL's
//! "index while uploading" piggybacked on the DFS write pipeline:
//!
//! * [`Ingestor::append`] accepts a sealed block as it arrives over the
//!   simulated clock and accumulates its per-sub-dataset size table into a
//!   lossless **delta map** (everything exact — a bloom filter cannot be
//!   un-inserted, so the write path never commits to a separation early).
//! * Periodic **compaction** seals pending deltas through the same bucket
//!   walk the batch build uses ([`ElasticMap`]'s separation policy), builds
//!   their [`BlockSummary`] sidecars, and folds them into the sorted-array
//!   base in block order using the deterministic shard-merge rule (chunks
//!   sealed in parallel, merged in chunk order, symbols interned in
//!   first-appearance order). Sealing is where **re-dominance** happens: a
//!   sub-dataset that was exact in the delta but falls below the block's
//!   dominance threshold is demoted to the bloom tail — it crossed the
//!   dominant/bloom boundary as the block's contents grew around it
//!   ([`IngestStats::redominated`] counts these crossings).
//! * [`Ingestor::commit`] persists an **epoch-stamped snapshot**: complete
//!   shards are written once as the immutable `shard-NNNN.json` files the
//!   batch writer produces, the partial tail goes to a per-epoch
//!   `epoch-NNNN.json`, and a per-epoch manifest (`manifest-eNNNN.json`)
//!   freezes the store as of that epoch so planners can time-travel with
//!   [`crate::MetaStore::open_replicated_at_epoch`]. The live
//!   `manifest.json` is written **last** in the plan, so a crash anywhere
//!   mid-commit leaves the previous epoch durable and intact.
//!
//! The governing invariant — enforced by the `datanet-check` ingest oracles
//! and the ingest integration tests — is that at every prefix of the
//! arrival sequence, [`Ingestor::snapshot`] is byte-identical (serialized)
//! to a from-scratch [`crate::scan::ElasticMapArray::build`] over the same
//! blocks, including across out-of-order arrival, crash, and resume.

use crate::buckets::Buckets;
use crate::distribution::SubDatasetView;
use crate::elasticmap::{ElasticMap, Separation, SizeInfo};
use crate::scan::{ElasticMapArray, SHARD_BLOCKS};
use crate::store::{
    crc32, epoch_file, epoch_manifest_file, epoch_summary_file, shard_file, summary_file,
    BlockSummary, Manifest, MetaStore, StoreError, FORMAT_VERSION,
};
use crate::symbol::{FastMap, FxBuildHasher, SymbolTable};
use datanet_dfs::{Block, BlockId, SubDatasetId};
use datanet_obs::{Category, Domain, FlightKind, Recorder, SpanCtx};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Tuning knobs of a streaming [`Ingestor`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Separation policy applied when deltas are sealed (must match the
    /// batch build's policy for snapshot equivalence).
    pub policy: Separation,
    /// Compact once this many contiguous pending blocks have accumulated.
    pub compact_every: usize,
    /// Blocks per persisted shard file (the store layout granularity).
    pub shard_blocks: usize,
}

impl IngestConfig {
    /// Defaults mirroring the batch path: α = 0.3 separation, compaction
    /// every [`SHARD_BLOCKS`] arrivals, one shard per compaction batch.
    pub fn new(policy: Separation) -> Self {
        Self {
            policy,
            compact_every: SHARD_BLOCKS,
            shard_blocks: SHARD_BLOCKS,
        }
    }
}

/// Running totals of one ingest session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct IngestStats {
    /// Blocks accepted by [`Ingestor::append`].
    pub appended_blocks: u64,
    /// Records across all appended blocks.
    pub appended_records: u64,
    /// Payload bytes across all appended blocks.
    pub appended_bytes: u64,
    /// Compaction passes that folded at least one delta.
    pub compactions: u64,
    /// Sub-datasets demoted from the (all-exact) delta to the bloom tail at
    /// seal time — boundary crossings of the dominant/bloom separation.
    pub redominated: u64,
    /// Durable epochs committed by this session.
    pub epochs_committed: u64,
    /// Blocks adopted from disk by [`Ingestor::resume`] without
    /// re-summarizing (0 for a fresh ingestor).
    pub resumed_blocks: u64,
    /// Block summaries built at seal time this session.
    pub summaries_built: u64,
}

/// Write-time delta: one block's lossless per-sub-dataset size table,
/// pending until compaction seals it through the separation policy.
#[derive(Debug, Clone)]
struct DeltaMap {
    block: BlockId,
    sizes: FastMap<SubDatasetId, u64>,
    bytes: u64,
    records: usize,
}

impl DeltaMap {
    fn of(block: &Block) -> Self {
        let mut sizes = FastMap::<SubDatasetId, u64>::with_capacity_and_hasher(
            block.len(),
            FxBuildHasher::default(),
        );
        for r in block.records() {
            let e = sizes.entry(r.subdataset).or_insert(0);
            *e = e.saturating_add(r.size as u64);
        }
        Self {
            block: block.id(),
            sizes,
            bytes: block.bytes(),
            records: block.len(),
        }
    }

    /// Distinct sub-datasets in the delta (all exact).
    fn distinct(&self) -> usize {
        self.sizes.len()
    }

    /// Exact size of `s` in this pending block.
    fn query(&self, s: SubDatasetId) -> SizeInfo {
        match self.sizes.get(&s) {
            Some(&sz) => SizeInfo::Exact(sz),
            None => SizeInfo::Absent,
        }
    }

    /// Seal through the separation policy. Reproduces the bucket base of
    /// [`ElasticMap::build`] (mean record size), so the sealed map is
    /// byte-identical to a batch build of the same block.
    fn seal(&self, policy: &Separation) -> ElasticMap {
        let base = if self.records == 0 {
            1024
        } else {
            (self.bytes / self.records as u64).max(1)
        };
        ElasticMap::from_size_table(
            self.block,
            self.sizes.clone(),
            policy,
            Buckets::fibonacci(base, 9),
        )
    }
}

/// One durable commit, expressed as an ordered write plan.
///
/// The order is the crash-safety contract: data files first, the immutable
/// per-epoch manifest second-to-last, and the live `manifest.json` **last**.
/// Applying any strict prefix of the plan (a simulated crash mid-commit)
/// leaves the store opening at the previous epoch with all of its files
/// intact — the new epoch simply never happened.
#[derive(Debug, Clone)]
pub struct CommitPlan {
    epoch: u64,
    manifest: Manifest,
    writes: Vec<(String, Vec<u8>)>,
}

impl CommitPlan {
    /// The epoch this plan commits.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The manifest the plan installs.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of ordered file writes in the plan.
    pub fn writes(&self) -> usize {
        self.writes.len()
    }

    /// Apply the full plan to every replica directory.
    ///
    /// # Errors
    /// Filesystem failures.
    pub fn apply(&self, dirs: &[&Path]) -> Result<(), StoreError> {
        self.apply_prefix(dirs, self.writes.len())
    }

    /// Apply only the first `n` writes — the crash-injection hook. Each
    /// write lands on every replica before the next begins, mirroring a
    /// pipeline that replicates file-by-file.
    ///
    /// # Errors
    /// Filesystem failures.
    ///
    /// # Panics
    /// Panics if `n` exceeds the plan length.
    pub fn apply_prefix(&self, dirs: &[&Path], n: usize) -> Result<(), StoreError> {
        assert!(n <= self.writes.len(), "prefix longer than the plan");
        for dir in dirs {
            fs::create_dir_all(dir)?;
        }
        for (file, bytes) in &self.writes[..n] {
            for dir in dirs {
                fs::write(dir.join(file), bytes)?;
            }
        }
        Ok(())
    }
}

/// Streaming-ingest engine: accepts arriving blocks, maintains the
/// ElasticMap array incrementally, and persists epoch-stamped snapshots.
#[derive(Debug)]
pub struct Ingestor {
    cfg: IngestConfig,
    /// Sealed maps, dense in block-id order (`base[i]` describes block i).
    base: Vec<ElasticMap>,
    /// Bloom-only sidecars, parallel to `base`.
    summaries: Vec<BlockSummary>,
    /// Dominant ids interned in block-major first-appearance order —
    /// maintained incrementally to match the batch build's table.
    symbols: SymbolTable,
    /// Arrived-but-unsealed deltas, keyed by block id (out-of-order safe).
    pending: BTreeMap<u32, DeltaMap>,
    durable_epoch: u64,
    durable_blocks: usize,
    durable_shard_crc: Vec<u32>,
    durable_summary_crc: Vec<u32>,
    stats: IngestStats,
    rec: Recorder,
}

impl Ingestor {
    /// A fresh ingestor with nothing durable.
    ///
    /// # Panics
    /// Panics on a zero `compact_every` or `shard_blocks`.
    pub fn new(cfg: IngestConfig) -> Self {
        assert!(cfg.compact_every > 0, "compact_every must be positive");
        assert!(cfg.shard_blocks > 0, "shard_blocks must be positive");
        Self {
            cfg,
            base: Vec::new(),
            summaries: Vec::new(),
            symbols: SymbolTable::new(),
            pending: BTreeMap::new(),
            durable_epoch: 0,
            durable_blocks: 0,
            durable_shard_crc: Vec::new(),
            durable_summary_crc: Vec::new(),
            stats: IngestStats::default(),
            rec: Recorder::off(),
        }
    }

    /// Reopen a store written by an earlier ingest session and continue
    /// from its last durable epoch. Every durable block's map and summary
    /// is adopted from disk — nothing is re-summarized
    /// ([`IngestStats::summaries_built`] stays 0 until new blocks arrive).
    /// The separation policy and shard size are taken from the manifest so
    /// the resumed session extends exactly the store it found. The caller
    /// re-feeds blocks with ids ≥ [`Ingestor::blocks`] (arrivals the crash
    /// swallowed).
    ///
    /// A store that crashed *before its first commit* has no live manifest
    /// on any replica — nothing was ever durable, so that is a fresh
    /// epoch-0 ingest under the caller's `cfg`, not an error.
    ///
    /// # Errors
    /// Whatever [`MetaStore::open_replicated`] or the shard/summary reads
    /// surface.
    pub fn resume(mut cfg: IngestConfig, dirs: &[&Path]) -> Result<Self, StoreError> {
        if dirs.iter().all(|d| !d.join("manifest.json").exists()) {
            return Ok(Self::new(cfg));
        }
        let mut store = MetaStore::open_replicated(dirs, 2)?;
        let manifest = store.manifest().clone();
        cfg.policy = manifest.policy.clone();
        cfg.shard_blocks = manifest.shard_blocks;
        let mut base = Vec::with_capacity(manifest.blocks);
        let mut summaries = Vec::with_capacity(manifest.blocks);
        for i in 0..manifest.shard_count() {
            base.extend_from_slice(store.shard(i)?);
            summaries.extend(store.summary(i)?);
        }
        let mut symbols = SymbolTable::new();
        for m in &base {
            for (id, _) in m.exact_entries() {
                symbols.intern(id);
            }
        }
        let mut ing = Self::new(cfg);
        ing.stats.resumed_blocks = manifest.blocks as u64;
        ing.base = base;
        ing.summaries = summaries;
        ing.symbols = symbols;
        ing.durable_epoch = manifest.epoch;
        ing.durable_blocks = manifest.blocks;
        ing.durable_shard_crc = manifest.shard_crc;
        ing.durable_summary_crc = manifest.summary_crc;
        Ok(ing)
    }

    /// Attach an observability recorder: `ingest` spans on the simulated
    /// clock per arrival, `compaction` spans on the wall clock, and
    /// counters for folds, re-dominance demotions, and commits.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The configuration (post-resume it reflects the on-disk store).
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Session statistics.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Last durable epoch (0 before the first commit).
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch
    }

    /// Blocks known to this ingestor: sealed base plus pending deltas.
    pub fn blocks(&self) -> usize {
        self.base.len() + self.pending.len()
    }

    /// Pending (arrived, not yet compacted) blocks.
    pub fn pending_blocks(&self) -> usize {
        self.pending.len()
    }

    /// Accept one arriving block at simulated time `now_us`. Out-of-order
    /// arrival is fine — deltas park in an id-ordered pending set and
    /// compaction folds only the contiguous prefix. Auto-compacts once
    /// `compact_every` contiguous blocks are pending.
    ///
    /// # Panics
    /// Panics on an empty block, a block id already ingested, or a
    /// duplicate pending id.
    pub fn append(&mut self, block: &Block, now_us: u64) {
        assert!(!block.is_empty(), "cannot ingest an empty block");
        let id = block.id();
        assert!(
            id.index() >= self.base.len(),
            "block {id} was already compacted"
        );
        assert!(
            !self.pending.contains_key(&id.0),
            "block {id} is already pending"
        );
        let span = self.rec.begin(
            Category::Ingest,
            "ingest",
            Domain::Sim,
            now_us,
            SpanCtx::default().block(id.index() as u64),
        );
        let delta = DeltaMap::of(block);
        self.stats.appended_blocks += 1;
        self.stats.appended_records += delta.records as u64;
        self.stats.appended_bytes += delta.bytes;
        self.rec.add("ingest_appended_blocks", 1);
        self.pending.insert(id.0, delta);
        self.rec.end(span, now_us);
        if self.contiguous_pending() >= self.cfg.compact_every {
            self.compact();
        }
    }

    /// Length of the contiguous pending run starting at the base frontier.
    fn contiguous_pending(&self) -> usize {
        (self.base.len() as u32..)
            .zip(self.pending.keys())
            .take_while(|(next, &id)| id == *next)
            .count()
    }

    /// Fold the contiguous pending prefix into the base: seal each delta
    /// through the separation policy (in parallel, chunks merged in block
    /// order — the deterministic shard-merge rule), build its summary
    /// sidecar, and intern its dominant ids. Returns the number of blocks
    /// folded (0 when nothing was contiguous).
    pub fn compact(&mut self) -> usize {
        let run = self.contiguous_pending();
        if run == 0 {
            return 0;
        }
        let span = self.rec.begin(
            Category::Compaction,
            "compaction",
            Domain::Wall,
            self.rec.wall_us(),
            SpanCtx::default().note(format!("{run} blocks")),
        );
        let first = self.base.len() as u32;
        let deltas: Vec<DeltaMap> = (first..first + run as u32)
            .map(|id| self.pending.remove(&id).expect("contiguous run"))
            .collect();
        let policy = &self.cfg.policy;
        let chunks: Vec<&[DeltaMap]> = deltas.chunks(SHARD_BLOCKS).collect();
        let sealed: Vec<Vec<(ElasticMap, BlockSummary, usize)>> = chunks
            .par_iter()
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|d| {
                        let map = d.seal(policy);
                        let summary = BlockSummary::of(&map);
                        (map, summary, d.distinct())
                    })
                    .collect()
            })
            .collect();
        let mut redominated = 0u64;
        for chunk in sealed {
            for (map, summary, distinct) in chunk {
                redominated += (distinct - map.exact_len()) as u64;
                for (id, _) in map.exact_entries() {
                    self.symbols.intern(id);
                }
                self.base.push(map);
                self.summaries.push(summary);
                self.stats.summaries_built += 1;
            }
        }
        self.stats.redominated += redominated;
        self.stats.compactions += 1;
        self.rec.add("ingest_compactions", 1);
        self.rec.add("ingest_redominated", redominated);
        self.rec.end_with_note(
            span,
            self.rec.wall_us(),
            &format!("{run} folded, {redominated} redominated"),
        );
        run
    }

    /// Query one `(block, sub-dataset)` cell. Sealed blocks answer through
    /// their ElasticMap; pending blocks answer from the lossless delta
    /// (always exact — the write path has not separated them yet).
    pub fn query(&self, b: BlockId, s: SubDatasetId) -> SizeInfo {
        if b.index() < self.base.len() {
            self.base[b.index()].query(s)
        } else if let Some(d) = self.pending.get(&b.0) {
            d.query(s)
        } else {
            SizeInfo::Absent
        }
    }

    /// Distribution view of one sub-dataset over everything ingested so
    /// far — sealed base plus pending deltas (whose answers are exact).
    pub fn view(&self, s: SubDatasetId) -> SubDatasetView {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        for m in &self.base {
            match m.query(s) {
                SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                SizeInfo::Approximate => {
                    bloom.push(m.block());
                    delta_hint = delta_hint.min(m.bloom_delta_hint());
                }
                SizeInfo::Absent => {}
            }
        }
        for (&id, d) in &self.pending {
            if let SizeInfo::Exact(sz) = d.query(s) {
                exact.push((BlockId(id), sz));
            }
        }
        SubDatasetView::new(s, exact, bloom, delta_hint)
    }

    /// Materialize the current state as an [`ElasticMapArray`]: the sealed
    /// base plus a non-destructive seal of the contiguous pending prefix.
    /// With in-order arrival this is byte-identical (serialized) to
    /// [`ElasticMapArray::build`] over the same blocks — the invariant the
    /// ingest oracles enforce at every arrival prefix.
    pub fn snapshot(&self) -> ElasticMapArray {
        let mut maps = self.base.clone();
        let mut next = self.base.len() as u32;
        while let Some(d) = self.pending.get(&next) {
            maps.push(d.seal(&self.cfg.policy));
            next += 1;
        }
        ElasticMapArray::from_maps(maps, self.cfg.policy.clone())
    }

    /// Plan the next durable epoch: compact, then serialize everything that
    /// became complete since the last commit. Returns `None` when nothing
    /// new is durable-worthy (no sealed growth since the last commit).
    ///
    /// The plan writes, in order: newly-completed `shard-NNNN.json` files
    /// with their summaries (immutable once written — earlier epochs keep
    /// referencing them), the partial tail as `epoch-NNNN.json` (+ summary),
    /// the immutable `manifest-eNNNN.json`, and finally the live
    /// `manifest.json`.
    pub fn commit_plan(&mut self) -> Option<CommitPlan> {
        self.compact();
        let blocks = self.base.len();
        if blocks == self.durable_blocks {
            return None;
        }
        let epoch = self.durable_epoch + 1;
        let sb = self.cfg.shard_blocks;
        let full = blocks / sb;
        let durable_full = self.durable_shard_crc.len();
        let mut shard_crc = self.durable_shard_crc.clone();
        let mut summary_crc = self.durable_summary_crc.clone();
        let mut writes: Vec<(String, Vec<u8>)> = Vec::new();
        let encode = |maps: &[ElasticMap], sums: &[BlockSummary]| {
            let m = serde_json::to_vec(&maps).map_err(io::Error::from)?;
            let s = serde_json::to_vec(&sums).map_err(io::Error::from)?;
            Ok::<_, StoreError>((m, s))
        };
        for i in durable_full..full {
            let (start, end) = (i * sb, (i + 1) * sb);
            let (m, s) = encode(&self.base[start..end], &self.summaries[start..end])
                .expect("in-memory serialization cannot fail");
            shard_crc.push(crc32(&m));
            summary_crc.push(crc32(&s));
            writes.push((shard_file(i), m));
            writes.push((summary_file(i), s));
        }
        let (tail_crc, tail_summary_crc) = if !blocks.is_multiple_of(sb) {
            let start = full * sb;
            let (m, s) = encode(&self.base[start..], &self.summaries[start..])
                .expect("in-memory serialization cannot fail");
            let crcs = (Some(crc32(&m)), Some(crc32(&s)));
            writes.push((epoch_file(epoch), m));
            writes.push((epoch_summary_file(epoch), s));
            crcs
        } else {
            (None, None)
        };
        let manifest = Manifest {
            blocks,
            shard_blocks: sb,
            policy: self.cfg.policy.clone(),
            version: FORMAT_VERSION,
            shard_crc,
            summary_crc,
            epoch,
            tail_crc,
            tail_summary_crc,
        };
        let bytes = serde_json::to_vec_pretty(&manifest).expect("manifest serialises");
        writes.push((epoch_manifest_file(epoch), bytes.clone()));
        writes.push(("manifest.json".to_string(), bytes));
        Some(CommitPlan {
            epoch,
            manifest,
            writes,
        })
    }

    /// Adopt a fully-applied plan as the new durable state.
    pub fn mark_durable(&mut self, plan: &CommitPlan) {
        self.durable_epoch = plan.epoch;
        self.durable_blocks = plan.manifest.blocks;
        self.durable_shard_crc = plan.manifest.shard_crc.clone();
        self.durable_summary_crc = plan.manifest.summary_crc.clone();
        self.stats.epochs_committed += 1;
        self.rec.add("ingest_epochs", 1);
        self.rec.flight(
            FlightKind::CheckpointCommit,
            Domain::Wall,
            self.rec.wall_us(),
            None,
            format!(
                "ingest epoch {} durable at {} blocks",
                plan.epoch, plan.manifest.blocks
            ),
        );
    }

    /// Compact and persist the next epoch to every replica directory.
    /// Returns the durable epoch after the call — unchanged when there was
    /// nothing new to commit (no writes happen in that case).
    ///
    /// # Errors
    /// Filesystem failures; durable state is only advanced after every
    /// write of the plan landed on every replica.
    pub fn commit(&mut self, dirs: &[&Path]) -> Result<u64, StoreError> {
        match self.commit_plan() {
            None => Ok(self.durable_epoch),
            Some(plan) => {
                plan.apply(dirs)?;
                self.mark_durable(&plan);
                Ok(plan.epoch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{Dfs, DfsConfig, Record, Topology};
    use std::path::PathBuf;

    fn tmpdirs(tag: &str, k: usize) -> Vec<PathBuf> {
        (0..k)
            .map(|i| {
                let d = std::env::temp_dir()
                    .join(format!("datanet-ingest-{tag}-r{i}-{}", std::process::id()));
                let _ = fs::remove_dir_all(&d);
                d
            })
            .collect()
    }

    fn sample_dfs() -> Dfs {
        let recs = (0..2600u64)
            .map(|i| Record::new(SubDatasetId(i % 37), i, 90 + (i % 11) as u32 * 30, i));
        Dfs::write_random(
            DfsConfig {
                block_size: 9_000,
                replication: 2,
                topology: Topology::single_rack(5),
                seed: 23,
            },
            recs,
        )
    }

    fn cfg() -> IngestConfig {
        IngestConfig {
            policy: Separation::Alpha(0.35),
            compact_every: 3,
            shard_blocks: 4,
        }
    }

    #[test]
    fn snapshot_equals_batch_build_at_every_prefix() {
        let dfs = sample_dfs();
        assert!(dfs.block_count() >= 10, "need a real stream");
        let mut ing = Ingestor::new(cfg());
        let mut live = Dfs::empty(dfs.config().clone());
        for (k, b) in dfs.blocks().iter().enumerate() {
            let id = live.append_block(b.records().to_vec());
            ing.append(live.block(id), k as u64 * 1000);
            let inc = serde_json::to_string(&ing.snapshot()).unwrap();
            let scratch = ElasticMapArray::build(&live, &Separation::Alpha(0.35));
            let batch = serde_json::to_string(&scratch).unwrap();
            assert_eq!(inc, batch, "prefix of {} blocks diverged", k + 1);
            assert_eq!(ing.snapshot().symbols(), scratch.symbols());
        }
        assert!(ing.stats().compactions > 0, "auto-compaction never fired");
        assert!(ing.stats().redominated > 0, "expected demotions under α");
    }

    #[test]
    fn pending_blocks_answer_exactly() {
        let dfs = sample_dfs();
        let mut ing = Ingestor::new(IngestConfig {
            compact_every: 1000, // never auto-compact
            ..cfg()
        });
        let b = &dfs.blocks()[0];
        ing.append(b, 0);
        let s = b.records()[0].subdataset;
        assert_eq!(
            ing.query(b.id(), s),
            SizeInfo::Exact(b.subdataset_bytes(s)),
            "pending delta must be lossless"
        );
        assert_eq!(ing.query(b.id(), SubDatasetId(9_999)), SizeInfo::Absent);
        assert_eq!(ing.pending_blocks(), 1);
        ing.compact();
        assert_eq!(ing.pending_blocks(), 0);
    }

    #[test]
    fn out_of_order_arrival_converges() {
        let dfs = sample_dfs();
        let n = dfs.block_count().min(7);
        let mut inorder = Ingestor::new(cfg());
        for b in &dfs.blocks()[..n] {
            inorder.append(b, 0);
        }
        inorder.compact();
        // Reverse arrival: nothing is contiguous until block 0 lands.
        let mut reversed = Ingestor::new(cfg());
        for b in dfs.blocks()[..n].iter().rev() {
            reversed.append(b, 0);
        }
        reversed.compact();
        assert_eq!(reversed.pending_blocks(), 0);
        assert_eq!(
            serde_json::to_string(&inorder.snapshot()).unwrap(),
            serde_json::to_string(&reversed.snapshot()).unwrap()
        );
    }

    #[test]
    fn commit_roundtrips_through_metastore() {
        let dfs = sample_dfs();
        let dirs = tmpdirs("commit", 2);
        let refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();
        let mut ing = Ingestor::new(cfg());
        for b in dfs.blocks() {
            ing.append(b, 0);
        }
        let epoch = ing.commit(&refs).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(ing.stats().epochs_committed, 1);
        // No growth → same epoch, no new writes.
        assert_eq!(ing.commit(&refs).unwrap(), 1);

        let mut store = MetaStore::open_replicated(&refs, 2).unwrap();
        assert_eq!(store.manifest().epoch, 1);
        assert_eq!(store.manifest().blocks, dfs.block_count());
        assert_eq!(store.manifest().version, FORMAT_VERSION);
        let snap = ing.snapshot();
        for s in 0..40u64 {
            assert_eq!(
                store.view(SubDatasetId(s)).unwrap(),
                snap.view(SubDatasetId(s))
            );
        }
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn full_shards_are_byte_identical_to_batch_writer() {
        let dfs = sample_dfs();
        let dirs = tmpdirs("bytes", 1);
        let batch_dirs = tmpdirs("bytes-batch", 1);
        let refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();
        let mut ing = Ingestor::new(cfg());
        for b in dfs.blocks() {
            ing.append(b, 0);
            // Commit every arrival: maximal epoch churn.
            ing.commit(&refs).unwrap();
        }
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.35));
        MetaStore::save(&arr, &batch_dirs[0], 4).unwrap();
        for i in 0..dfs.block_count() / 4 {
            let a = fs::read(dirs[0].join(shard_file(i))).unwrap();
            let b = fs::read(batch_dirs[0].join(shard_file(i))).unwrap();
            assert_eq!(a, b, "shard {i} bytes diverge from the batch writer");
            let a = fs::read(dirs[0].join(summary_file(i))).unwrap();
            let b = fs::read(batch_dirs[0].join(summary_file(i))).unwrap();
            assert_eq!(a, b, "summary {i} bytes diverge from the batch writer");
        }
        for d in dirs.iter().chain(&batch_dirs) {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn crash_prefix_preserves_previous_epoch_and_resume_continues() {
        let dfs = sample_dfs();
        let dirs = tmpdirs("crash", 2);
        let refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();
        let half = dfs.block_count() / 2;
        let mut ing = Ingestor::new(cfg());
        for b in &dfs.blocks()[..half] {
            ing.append(b, 0);
        }
        ing.commit(&refs).unwrap();

        // Append the rest, then crash after every possible write prefix of
        // the next commit's plan — the store must always open at epoch 1.
        for b in &dfs.blocks()[half..] {
            ing.append(b, 0);
        }
        let plan = ing.commit_plan().expect("there is growth to commit");
        for n in 0..plan.writes() {
            plan.apply_prefix(&refs, n).unwrap();
            let mut store = MetaStore::open_replicated(&refs, 1).unwrap();
            assert_eq!(store.manifest().epoch, 1, "prefix {n} leaked epoch 2");
            assert_eq!(store.manifest().blocks, half);
            store.view(SubDatasetId(3)).unwrap();
        }

        // Resume from the durable epoch, re-feed the swallowed arrivals.
        let mut resumed = Ingestor::resume(cfg(), &refs).unwrap();
        assert_eq!(resumed.stats().resumed_blocks, half as u64);
        assert_eq!(resumed.stats().summaries_built, 0, "no re-summarizing");
        assert_eq!(resumed.durable_epoch(), 1);
        assert_eq!(resumed.blocks(), half);
        for b in &dfs.blocks()[half..] {
            resumed.append(b, 0);
        }
        let epoch = resumed.commit(&refs).unwrap();
        assert_eq!(epoch, 2);
        let batch = ElasticMapArray::build(&dfs, &Separation::Alpha(0.35));
        assert_eq!(
            serde_json::to_string(&resumed.snapshot()).unwrap(),
            serde_json::to_string(&batch).unwrap(),
            "resume lost equivalence with the batch build"
        );
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn resume_before_first_commit_starts_fresh_epoch_zero_ingest() {
        let dfs = sample_dfs();
        let dirs = tmpdirs("resume-e0", 2);
        let refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();

        // Crash after every strict prefix of the *first* commit's plan: no
        // live manifest ever lands, so resume must hand back a fresh
        // ingestor instead of erroring (regression: it used to surface
        // MetaStore::open_replicated's missing-manifest error).
        let mut ing = Ingestor::new(cfg());
        for b in dfs.blocks() {
            ing.append(b, 0);
        }
        let plan = ing.commit_plan().expect("there is growth to commit");
        for n in 0..plan.writes() {
            plan.apply_prefix(&refs, n).unwrap();
            let resumed = Ingestor::resume(cfg(), &refs).unwrap();
            assert_eq!(resumed.blocks(), 0, "prefix {n}: nothing was durable");
            assert_eq!(resumed.durable_epoch(), 0);
            assert_eq!(resumed.stats().resumed_blocks, 0);
        }

        // Entirely empty directories (not even data files) work too, and
        // the fresh ingestor commits a normal epoch-1 snapshot.
        let empty = tmpdirs("resume-e0-empty", 2);
        let erefs: Vec<&Path> = empty.iter().map(|p| p.as_path()).collect();
        let mut fresh = Ingestor::resume(cfg(), &erefs).unwrap();
        for b in dfs.blocks() {
            fresh.append(b, 0);
        }
        assert_eq!(fresh.commit(&erefs).unwrap(), 1);
        let batch = ElasticMapArray::build(&dfs, &Separation::Alpha(0.35));
        assert_eq!(
            serde_json::to_string(&fresh.snapshot()).unwrap(),
            serde_json::to_string(&batch).unwrap(),
        );
        for d in dirs.iter().chain(&empty) {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn epoch_manifests_time_travel() {
        let dfs = sample_dfs();
        let dirs = tmpdirs("epoch", 2);
        let refs: Vec<&Path> = dirs.iter().map(|p| p.as_path()).collect();
        let mut ing = Ingestor::new(cfg());
        let mut at_epoch: Vec<(u64, usize, String)> = Vec::new();
        for (k, b) in dfs.blocks().iter().enumerate() {
            ing.append(b, 0);
            if (k + 1) % 5 == 0 {
                ing.compact();
                let epoch = ing.commit(&refs).unwrap();
                at_epoch.push((
                    epoch,
                    ing.blocks(),
                    serde_json::to_string(&ing.snapshot()).unwrap(),
                ));
            }
        }
        assert!(at_epoch.len() >= 2, "need several epochs");
        for (epoch, blocks, want) in &at_epoch {
            let mut store = MetaStore::open_replicated_at_epoch(&refs, *epoch, 2).unwrap();
            assert_eq!(store.manifest().blocks, *blocks);
            assert_eq!(store.manifest().epoch, *epoch);
            let mut maps = Vec::new();
            for i in 0..store.manifest().shard_count() {
                maps.extend_from_slice(store.shard(i).unwrap());
            }
            let arr = ElasticMapArray::from_maps(maps, store.manifest().policy.clone());
            assert_eq!(
                &serde_json::to_string(&arr).unwrap(),
                want,
                "epoch {epoch} does not replay the snapshot it froze"
            );
        }
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn ingest_spans_and_counters_are_recorded() {
        let dfs = sample_dfs();
        let rec = Recorder::new();
        let mut ing = Ingestor::new(cfg());
        ing.set_recorder(rec.clone());
        for (k, b) in dfs.blocks().iter().enumerate().take(6) {
            ing.append(b, k as u64 * 500);
        }
        ing.compact();
        let data = rec.take();
        assert_eq!(data.unclosed_spans(), 0);
        let ingests = data.spans.iter().filter(|s| s.name == "ingest").count();
        assert_eq!(ingests, 6, "one ingest span per arrival");
        assert!(data.spans.iter().any(|s| s.name == "compaction"));
        assert_eq!(data.counters["ingest_appended_blocks"], 6);
        assert!(data.counters["ingest_compactions"] >= 1);
    }
}
