//! Per-sub-dataset distribution views and the Equation 6 size estimator.
//!
//! Querying the ElasticMap array for one sub-dataset `s` yields:
//!
//! * **τ₁** — blocks whose hash map records `|s ∩ b|` exactly;
//! * **τ₂** — blocks whose bloom filter reports `s` present (size unknown);
//! * **δ** — the approximate per-block size for τ₂ blocks ("the smallest
//!   size value of |s∩b_j|", Section IV-B).
//!
//! Total size estimate (Equation 6): `Z = Σ_{b∈τ₁} |s∩b| + δ·|τ₂|`.

use datanet_dfs::{BlockId, Dfs, SubDatasetId};
use serde::{Deserialize, Serialize};

/// The distribution of one sub-dataset over the block space, as known to
/// DataNet's meta-data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubDatasetView {
    id: SubDatasetId,
    /// τ₁: `(block, exact bytes)`, block order.
    exact: Vec<(BlockId, u64)>,
    /// τ₂: bloom-only blocks, block order.
    bloom: Vec<BlockId>,
    /// δ: approximate bytes per τ₂ block.
    delta: u64,
}

impl SubDatasetView {
    /// Assemble a view. `delta_hint` is the per-block bloom bound collected
    /// during the array query; the effective δ follows the paper: the
    /// smallest recorded `|s∩b|` in τ₁ when τ₁ is non-empty, otherwise the
    /// hint.
    pub fn new(
        id: SubDatasetId,
        exact: Vec<(BlockId, u64)>,
        bloom: Vec<BlockId>,
        delta_hint: u64,
    ) -> Self {
        let delta = exact
            .iter()
            .map(|&(_, s)| s)
            .min()
            .unwrap_or(if delta_hint == u64::MAX {
                0
            } else {
                delta_hint
            });
        Self {
            id,
            exact,
            bloom,
            delta,
        }
    }

    /// The sub-dataset this view describes.
    pub fn id(&self) -> SubDatasetId {
        self.id
    }

    /// τ₁: blocks with exact sizes.
    pub fn exact(&self) -> &[(BlockId, u64)] {
        &self.exact
    }

    /// τ₂: bloom-only blocks.
    pub fn bloom(&self) -> &[BlockId] {
        &self.bloom
    }

    /// δ: the per-block size approximation for τ₂ blocks.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// All blocks known to (possibly) contain the sub-dataset, τ₁ ∪ τ₂.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.exact
            .iter()
            .map(|&(b, _)| b)
            .chain(self.bloom.iter().copied())
    }

    /// Number of blocks in the view.
    pub fn block_count(&self) -> usize {
        self.exact.len() + self.bloom.len()
    }

    /// Whether the meta-data saw the sub-dataset anywhere.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.bloom.is_empty()
    }

    /// The weight DataNet assumes block `b` contributes: the exact size for
    /// τ₁ blocks, δ for τ₂ blocks, 0 otherwise. This is the edge weight of
    /// the bipartite graph (Section IV-A).
    pub fn weight(&self, b: BlockId) -> u64 {
        if let Ok(i) = self.exact.binary_search_by_key(&b, |&(blk, _)| blk) {
            return self.exact[i].1;
        }
        if self.bloom.binary_search(&b).is_ok() {
            return self.delta;
        }
        0
    }

    /// Equation 6: estimated total size `Z = Σ_{τ₁}|s∩b| + δ·|τ₂|`.
    pub fn estimated_total(&self) -> u64 {
        let exact: u64 = self.exact.iter().map(|&(_, s)| s).sum();
        exact + self.delta * self.bloom.len() as u64
    }

    /// Per-sub-dataset estimation accuracy against ground truth (the
    /// Figure 9 metric): `1 − |estimate − actual| / actual`. Returns `None`
    /// when the sub-dataset does not exist in the DFS.
    pub fn accuracy(&self, dfs: &Dfs) -> Option<f64> {
        let actual = dfs.subdataset_total(self.id);
        if actual == 0 {
            return None;
        }
        let est = self.estimated_total() as f64;
        Some(1.0 - (est - actual as f64).abs() / actual as f64)
    }

    /// Blocks that can be *skipped* entirely for this sub-dataset — the I/O
    /// saving the paper notes ("we don't need to process blocks that don't
    /// contain our target data"). Given the total block count, returns how
    /// many blocks the view excludes.
    pub fn skippable_blocks(&self, total_blocks: usize) -> usize {
        total_blocks - self.block_count()
    }

    /// Measured bloom false-positive rate of this view against ground truth
    /// (`truth[b] = |s ∩ b|` for every block): the fraction of blocks that
    /// do **not** contain the sub-dataset yet appear in the view's τ₂ list.
    /// Every truth-0 block was a bloom probe, so this is the empirical
    /// counterpart of the design rate
    /// ([`crate::elasticmap::BLOOM_EPSILON`]). `None` when no block is a
    /// true negative (nothing to measure).
    ///
    /// # Panics
    /// Panics if a τ₂ block index is outside `truth`.
    pub fn measured_bloom_fpr(&self, truth: &[u64]) -> Option<f64> {
        let negatives = truth.iter().filter(|&&t| t == 0).count();
        if negatives == 0 {
            return None;
        }
        let false_positives = self.bloom.iter().filter(|b| truth[b.index()] == 0).count();
        Some(false_positives as f64 / negatives as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> SubDatasetView {
        SubDatasetView::new(
            SubDatasetId(1),
            vec![(BlockId(0), 1000), (BlockId(2), 400), (BlockId(5), 600)],
            vec![BlockId(1), BlockId(7)],
            u64::MAX,
        )
    }

    #[test]
    fn delta_is_min_exact_size() {
        let v = view();
        assert_eq!(v.delta(), 400);
    }

    #[test]
    fn delta_falls_back_to_hint_without_exact() {
        let v = SubDatasetView::new(SubDatasetId(1), vec![], vec![BlockId(0)], 123);
        assert_eq!(v.delta(), 123);
        let v = SubDatasetView::new(SubDatasetId(1), vec![], vec![BlockId(0)], u64::MAX);
        assert_eq!(v.delta(), 0);
    }

    #[test]
    fn equation_six() {
        let v = view();
        // Σ τ1 = 2000, δ·|τ2| = 400·2 = 800.
        assert_eq!(v.estimated_total(), 2800);
    }

    #[test]
    fn weights() {
        let v = view();
        assert_eq!(v.weight(BlockId(0)), 1000);
        assert_eq!(v.weight(BlockId(2)), 400);
        assert_eq!(v.weight(BlockId(1)), 400); // δ
        assert_eq!(v.weight(BlockId(3)), 0); // absent
    }

    #[test]
    fn block_iteration_and_counts() {
        let v = view();
        assert_eq!(v.block_count(), 5);
        assert_eq!(v.blocks().count(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.skippable_blocks(10), 5);
    }

    #[test]
    fn empty_view() {
        let v = SubDatasetView::new(SubDatasetId(9), vec![], vec![], u64::MAX);
        assert!(v.is_empty());
        assert_eq!(v.estimated_total(), 0);
        assert_eq!(v.delta(), 0);
        assert_eq!(v.skippable_blocks(4), 4);
    }
}
