//! Persistent, sharded meta-data storage — the scale-out path the paper
//! defers ("as the problem size becomes extremely large, the meta-data may
//! not be able to reside in memory. In such cases, the meta-data can be
//! stored into a database or distributed among multiple machines",
//! Section V-B-1).
//!
//! The ElasticMap array is split into fixed-size **shards** of consecutive
//! blocks, each serialised to its own JSON file next to a manifest. Queries
//! stream shard-by-shard with a bounded-size cache, so a dataset whose
//! meta-data exceeds memory can still be scanned for a sub-dataset view.

use crate::distribution::SubDatasetView;
use crate::elasticmap::{ElasticMap, Separation, SizeInfo};
use crate::scan::ElasticMapArray;
use datanet_dfs::SubDatasetId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest describing a sharded meta-data directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Total number of per-block maps.
    pub blocks: usize,
    /// Blocks per shard (last shard may be short).
    pub shard_blocks: usize,
    /// Separation policy the maps were built with.
    pub policy: Separation,
    /// Format version for forward compatibility.
    pub version: u32,
}

impl Manifest {
    /// Number of shard files.
    pub fn shard_count(&self) -> usize {
        self.blocks.div_ceil(self.shard_blocks)
    }
}

/// On-disk handle to sharded meta-data.
#[derive(Debug)]
pub struct MetaStore {
    dir: PathBuf,
    manifest: Manifest,
    /// Tiny FIFO cache of decoded shards: (shard index, maps).
    cache: VecDeque<(usize, Vec<ElasticMap>)>,
    cache_shards: usize,
}

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

impl MetaStore {
    /// Persist an [`ElasticMapArray`] into `dir` (created if needed) as
    /// `manifest.json` plus `shard-NNNN.json` files of `shard_blocks`
    /// consecutive blocks each.
    ///
    /// # Errors
    /// I/O or serialisation failures.
    ///
    /// # Panics
    /// Panics if `shard_blocks == 0`.
    pub fn save(array: &ElasticMapArray, dir: &Path, shard_blocks: usize) -> io::Result<()> {
        assert!(shard_blocks > 0, "shards must hold at least one block");
        fs::create_dir_all(dir)?;
        let manifest = Manifest {
            blocks: array.len(),
            shard_blocks,
            policy: array.policy().clone(),
            version: FORMAT_VERSION,
        };
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_vec_pretty(&manifest)?,
        )?;
        for (i, chunk) in array.maps().chunks(shard_blocks).enumerate() {
            let path = dir.join(format!("shard-{i:04}.json"));
            fs::write(path, serde_json::to_vec(&chunk)?)?;
        }
        Ok(())
    }

    /// Open a persisted store with a cache of `cache_shards` decoded shards
    /// (FIFO eviction; 0 disables caching).
    ///
    /// # Errors
    /// Missing/corrupt manifest or an unsupported format version.
    pub fn open(dir: &Path, cache_shards: usize) -> io::Result<Self> {
        let manifest: Manifest = serde_json::from_slice(&fs::read(dir.join("manifest.json"))?)?;
        if manifest.version != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported meta-data version {}", manifest.version),
            ));
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest,
            cache: VecDeque::new(),
            cache_shards,
        })
    }

    /// The manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Load one shard (through the cache).
    ///
    /// # Errors
    /// Missing or corrupt shard file.
    pub fn shard(&mut self, index: usize) -> io::Result<&[ElasticMap]> {
        assert!(
            index < self.manifest.shard_count(),
            "shard {index} out of range"
        );
        if let Some(pos) = self.cache.iter().position(|(i, _)| *i == index) {
            // Borrow-checker friendly: move to the back, then return it.
            let entry = self.cache.remove(pos).expect("position is valid");
            self.cache.push_back(entry);
            return Ok(&self.cache.back().expect("just pushed").1);
        }
        let path = self.dir.join(format!("shard-{index:04}.json"));
        let maps: Vec<ElasticMap> = serde_json::from_slice(&fs::read(path)?)?;
        if self.cache_shards == 0 {
            // No caching: keep exactly one transient slot.
            self.cache.clear();
            self.cache.push_back((index, maps));
        } else {
            while self.cache.len() >= self.cache_shards {
                self.cache.pop_front();
            }
            self.cache.push_back((index, maps));
        }
        Ok(&self.cache.back().expect("just pushed").1)
    }

    /// Indices of the shards currently decoded in the cache, oldest first
    /// (the front is the next eviction victim).
    pub fn cached_shards(&self) -> Vec<usize> {
        self.cache.iter().map(|(i, _)| *i).collect()
    }

    /// Query one `(block, sub-dataset)` cell from disk.
    ///
    /// # Errors
    /// Shard I/O failures.
    pub fn query(&mut self, block: datanet_dfs::BlockId, s: SubDatasetId) -> io::Result<SizeInfo> {
        let shard = block.index() / self.manifest.shard_blocks;
        let offset = block.index() % self.manifest.shard_blocks;
        Ok(self.shard(shard)?[offset].query(s))
    }

    /// Stream all shards to assemble a sub-dataset view — identical result
    /// to [`ElasticMapArray::view`], without holding the full array in
    /// memory.
    ///
    /// # Errors
    /// Shard I/O failures.
    pub fn view(&mut self, s: SubDatasetId) -> io::Result<SubDatasetView> {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        for i in 0..self.manifest.shard_count() {
            for m in self.shard(i)? {
                match m.query(s) {
                    SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                    SizeInfo::Approximate => {
                        bloom.push(m.block());
                        delta_hint = delta_hint.min(m.bloom_delta_hint());
                    }
                    SizeInfo::Absent => {}
                }
            }
        }
        Ok(SubDatasetView::new(s, exact, bloom, delta_hint))
    }

    /// Total serialized bytes on disk (manifest + shards).
    ///
    /// # Errors
    /// Directory traversal failures.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dir)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{BlockId, Dfs, DfsConfig, Record, Topology};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("datanet-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_array() -> (Dfs, ElasticMapArray) {
        let recs = (0..3000u64)
            .map(|i| Record::new(SubDatasetId(i % 50), i, 100 + (i % 7) as u32 * 40, i));
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 12_000,
                replication: 2,
                topology: Topology::single_rack(6),
                seed: 11,
            },
            recs,
        );
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.4));
        (dfs, arr)
    }

    #[test]
    fn roundtrip_preserves_queries_and_views() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("roundtrip");
        MetaStore::save(&arr, &dir, 7).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        assert_eq!(store.manifest().blocks, arr.len());
        for b in 0..arr.len() {
            for s in 0..60u64 {
                assert_eq!(
                    store.query(BlockId(b as u32), SubDatasetId(s)).unwrap(),
                    arr.query(BlockId(b as u32), SubDatasetId(s))
                );
            }
        }
        for s in 0..50u64 {
            assert_eq!(
                store.view(SubDatasetId(s)).unwrap(),
                arr.view(SubDatasetId(s))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_covers_all_blocks() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("shards");
        MetaStore::save(&arr, &dir, 4).unwrap();
        let store = MetaStore::open(&dir, 1).unwrap();
        let m = store.manifest();
        assert_eq!(m.shard_count(), arr.len().div_ceil(4));
        assert!(store.disk_bytes().unwrap() > 0);
        // Every shard file exists.
        for i in 0..m.shard_count() {
            assert!(dir.join(format!("shard-{i:04}.json")).exists());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_eviction_does_not_change_results() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("cache");
        MetaStore::save(&arr, &dir, 3).unwrap();
        // cache_shards = 0 (transient) and 1 (thrash) must agree.
        let mut a = MetaStore::open(&dir, 0).unwrap();
        let mut b = MetaStore::open(&dir, 1).unwrap();
        for s in (0..50u64).rev() {
            assert_eq!(
                a.view(SubDatasetId(s)).unwrap(),
                b.view(SubDatasetId(s)).unwrap()
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_evicts_oldest_first_and_refreshes_on_hit() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("evict");
        MetaStore::save(&arr, &dir, 3).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        assert!(store.manifest().shard_count() >= 3, "need >= 3 shards");

        store.shard(0).unwrap();
        store.shard(1).unwrap();
        assert_eq!(store.cached_shards(), vec![0, 1]);
        // A hit moves the shard to the back (most recently used).
        store.shard(0).unwrap();
        assert_eq!(store.cached_shards(), vec![1, 0]);
        // A miss at capacity evicts the front — shard 1, not the re-used 0.
        store.shard(2).unwrap();
        assert_eq!(store.cached_shards(), vec![0, 2]);

        // cache_shards = 0 keeps exactly one transient slot.
        let mut transient = MetaStore::open(&dir, 0).unwrap();
        transient.shard(0).unwrap();
        transient.shard(1).unwrap();
        assert_eq!(transient.cached_shards(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_hit_serves_even_after_disk_loss() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("hit");
        MetaStore::save(&arr, &dir, 5).unwrap();
        let mut store = MetaStore::open(&dir, 4).unwrap();
        let want = store.query(BlockId(0), SubDatasetId(3)).unwrap();

        // Shard 0 is cached now; clobber it on disk.
        fs::write(dir.join("shard-0000.json"), b"not json").unwrap();
        assert_eq!(store.query(BlockId(0), SubDatasetId(3)).unwrap(), want);

        // A fresh store must go to disk and hit the corruption.
        let mut fresh = MetaStore::open(&dir, 4).unwrap();
        assert!(fresh.query(BlockId(0), SubDatasetId(3)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_missing_shard_is_an_error() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("corrupt");
        MetaStore::save(&arr, &dir, 6).unwrap();
        let count = {
            let store = MetaStore::open(&dir, 1).unwrap();
            store.manifest().shard_count()
        };
        assert!(count >= 2, "need >= 2 shards");

        // Truncated JSON in the middle of a shard.
        fs::write(dir.join("shard-0001.json"), b"[{\"trunc").unwrap();
        let mut store = MetaStore::open(&dir, 1).unwrap();
        assert!(store.shard(1).is_err());
        // Other shards are unaffected.
        assert!(store.shard(0).is_ok());

        // A deleted shard file surfaces as NotFound.
        fs::remove_file(dir.join(format!("shard-{:04}.json", count - 1))).unwrap();
        let err = store.shard(count - 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        // Streaming a view over the broken directory fails too.
        assert!(store.view(SubDatasetId(0)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("version");
        MetaStore::save(&arr, &dir, 8).unwrap();
        // Corrupt the version.
        let mut manifest: Manifest =
            serde_json::from_slice(&fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        manifest.version = 999;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_vec(&manifest).unwrap(),
        )
        .unwrap();
        assert!(MetaStore::open(&dir, 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmpdir("missing");
        assert!(MetaStore::open(&dir, 1).is_err());
    }
}
