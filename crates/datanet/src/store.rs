//! Persistent, sharded, **replicated** meta-data storage — the scale-out
//! path the paper defers ("as the problem size becomes extremely large, the
//! meta-data may not be able to reside in memory. In such cases, the
//! meta-data can be stored into a database or distributed among multiple
//! machines", Section V-B-1) made resilient.
//!
//! The ElasticMap array is split into fixed-size **shards** of consecutive
//! blocks. Each shard is serialised twice per replica directory (a simulated
//! datanode):
//!
//! * `shard-NNNN.json` — the full ElasticMaps (exact sizes + tail bloom);
//! * `summary-NNNN.json` — a tiny bloom-only sidecar ([`BlockSummary`]) in
//!   the spirit of HAIL's per-replica heterogeneous indexes: when every full
//!   copy of a shard is lost, the summary still answers *membership* (and a
//!   δ bound), dropping the shard's blocks to rung 2 of the degradation
//!   ladder instead of rung 3 (see [`crate::degrade`]).
//!
//! The [`Manifest`] records a CRC-32 per shard and per summary, so a read
//! distinguishes corruption from absence. Read paths do bounded same-replica
//! retries with exponential backoff, then fail over to the next replica;
//! shards with no healthy copy anywhere are **quarantined** (subsequent
//! reads fail fast). A [`MetaStore::scrub`] pass detects bad copies and
//! repairs them from a healthy replica, HDFS-block-scanner style.
//!
//! Queries stream shard-by-shard through a bounded LRU cache, so a dataset
//! whose meta-data exceeds memory can still be scanned for a view.

use crate::bloom::BloomFilter;
use crate::degrade::{DegradedView, MetaHealth, ShardSource};
use crate::distribution::SubDatasetView;
use crate::elasticmap::{ElasticMap, Separation, SizeInfo, BLOOM_EPSILON};
use crate::scan::ElasticMapArray;
use datanet_dfs::{BlockId, SubDatasetId};
use datanet_obs::{Category, Domain, FlightKind, Recorder, SpanCtx};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Current on-disk format version. Version 1 (no checksums, no summaries)
/// is still readable: CRC verification is skipped and every shard loss is
/// rung-3 (no sidecar to fall back to). Version 2 (flat bloom layout,
/// hash-map exact sides) also loads unchanged — the per-structure serde
/// keeps both shapes decodable. Version 3 writes cache-line-blocked bloom
/// filters, which pre-3 readers would mis-probe, hence the bump.
pub const FORMAT_VERSION: u32 = 3;

/// Typed errors of the metadata store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A file exists but its contents are invalid: truncated or malformed
    /// JSON, a checksum mismatch, or fields that fail validation.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The manifest was written by a newer format version than this build
    /// understands — never a panic, always this typed error.
    FutureVersion {
        /// Version found on disk.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The shard was quarantined by an earlier failed read or scrub pass;
    /// reads fail fast instead of re-probing dead replicas.
    Quarantined {
        /// Quarantined shard index.
        shard: usize,
    },
    /// Every replica of the shard failed verification or I/O.
    AllReplicasFailed {
        /// Affected shard index.
        shard: usize,
        /// Last per-replica failure, for diagnostics.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "metadata i/o error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt metadata file {}: {detail}", path.display())
            }
            StoreError::FutureVersion { found, supported } => write!(
                f,
                "metadata format version {found} is newer than supported ({supported})"
            ),
            StoreError::Quarantined { shard } => write!(f, "shard {shard} is quarantined"),
            StoreError::AllReplicasFailed { shard, detail } => {
                write!(f, "every replica of shard {shard} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the Ethernet/zip one), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// The retry/backoff policy moved to `datanet::retry` (it is shared with the
// engine's re-execution budget and the pipeline checkpoint writer); this
// re-export keeps the historical `datanet::store::RetryPolicy` path working.
pub use crate::retry::RetryPolicy;

/// Manifest describing a sharded meta-data directory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Manifest {
    /// Total number of per-block maps.
    pub blocks: usize,
    /// Blocks per shard (last shard may be short).
    pub shard_blocks: usize,
    /// Separation policy the maps were built with.
    pub policy: Separation,
    /// Format version for forward compatibility.
    pub version: u32,
    /// CRC-32 of each `shard-NNNN.json` (empty for v1 stores: verification
    /// skipped).
    pub shard_crc: Vec<u32>,
    /// CRC-32 of each `summary-NNNN.json` (empty for v1 stores).
    pub summary_crc: Vec<u32>,
    /// Ingest epoch this manifest describes. Stores written by one-shot
    /// [`MetaStore::save_replicated`] are epoch 0; streaming-ingest commits
    /// bump it once per durable snapshot.
    pub epoch: u64,
    /// CRC-32 of the per-epoch tail shard (`epoch-NNNN.json`) holding the
    /// blocks past the last complete shard; `None` when the block count is
    /// an exact multiple of `shard_blocks` (every non-ingest store).
    pub tail_crc: Option<u32>,
    /// CRC-32 of the tail's summary sidecar (`epoch-NNNN-summary.json`).
    pub tail_summary_crc: Option<u32>,
}

// Hand-written so that (a) a v1 manifest without checksum fields still
// loads (they default to empty), and (b) a future-versioned manifest is
// rejected with a clear message instead of a field-shape decode error.
// The vendored serde derive has no `#[serde(default)]`, hence manual.
impl Deserialize for Manifest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::expected("manifest object", v));
        }
        let field = |name: &str| -> Result<&Value, DeError> {
            v.get(name)
                .ok_or_else(|| DeError::msg(format!("manifest missing field `{name}`")))
        };
        let version = u32::from_value(field("version")?)?;
        if version > FORMAT_VERSION {
            return Err(DeError::msg(format!(
                "manifest version {version} is newer than supported ({FORMAT_VERSION})"
            )));
        }
        let crc_list = |name: &str| -> Result<Vec<u32>, DeError> {
            match v.get(name) {
                None | Some(Value::Null) => Ok(Vec::new()),
                Some(list) => Vec::<u32>::from_value(list),
            }
        };
        Ok(Self {
            blocks: usize::from_value(field("blocks")?)?,
            shard_blocks: usize::from_value(field("shard_blocks")?)?,
            policy: Separation::from_value(field("policy")?)?,
            version,
            shard_crc: crc_list("shard_crc")?,
            summary_crc: crc_list("summary_crc")?,
            epoch: match v.get("epoch") {
                None | Some(Value::Null) => 0,
                Some(e) => u64::from_value(e)?,
            },
            tail_crc: Option::<u32>::from_value(v.get("tail_crc").unwrap_or(&Value::Null))?,
            tail_summary_crc: Option::<u32>::from_value(
                v.get("tail_summary_crc").unwrap_or(&Value::Null),
            )?,
        })
    }
}

impl Manifest {
    /// Number of shard files.
    pub fn shard_count(&self) -> usize {
        self.blocks.div_ceil(self.shard_blocks)
    }

    /// Whether shard index `i` is the per-epoch tail file rather than a
    /// complete `shard-NNNN.json` (streaming-ingest stores only).
    fn is_tail(&self, i: usize) -> bool {
        self.tail_crc.is_some() && i == self.blocks / self.shard_blocks
    }

    /// File holding the maps of shard `i` (the tail lives in its epoch file).
    fn shard_file_name(&self, i: usize) -> String {
        if self.is_tail(i) {
            epoch_file(self.epoch)
        } else {
            shard_file(i)
        }
    }

    /// File holding the summaries of shard `i`.
    fn summary_file_name(&self, i: usize) -> String {
        if self.is_tail(i) {
            epoch_summary_file(self.epoch)
        } else {
            summary_file(i)
        }
    }

    /// Expected CRC of shard `i`, when the store records checksums.
    fn expected_shard_crc(&self, i: usize) -> Option<u32> {
        if self.is_tail(i) {
            self.tail_crc
        } else {
            self.shard_crc.get(i).copied()
        }
    }

    /// Expected CRC of summary `i`, when the store records checksums.
    fn expected_summary_crc(&self, i: usize) -> Option<u32> {
        if self.is_tail(i) {
            self.tail_summary_crc
        } else {
            self.summary_crc.get(i).copied()
        }
    }
}

/// Bloom-only metadata summary of one block — the sidecar that keeps a
/// block on rung 2 when its full ElasticMap is lost.
///
/// A bloom filter cannot be enumerated, so the summary carries **two**
/// filters: a fresh one over the sub-datasets the full map stored exactly
/// (`head`), plus a copy of the full map's existing tail filter (`tail`).
/// Membership is the union; δ is the smallest known per-sub-dataset size in
/// the block. No sizes survive — that is the point: the summary is a few
/// bytes per sub-dataset, cheap enough to replicate everywhere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockSummary {
    block: BlockId,
    head: BloomFilter,
    tail: BloomFilter,
    delta: u64,
}

impl BlockSummary {
    /// Summarise a full ElasticMap.
    pub fn of(map: &ElasticMap) -> Self {
        let mut head = BloomFilter::with_rate(map.exact_len().max(1), BLOOM_EPSILON);
        let mut min_exact: Option<u64> = None;
        for (id, size) in map.exact_entries() {
            head.insert(id);
            min_exact = Some(min_exact.map_or(size, |m| m.min(size)));
        }
        let delta = match (min_exact, map.bloom_len()) {
            (Some(e), n) if n > 0 => e.min(map.bloom_delta_hint()),
            (Some(e), _) => e,
            (None, n) if n > 0 => map.bloom_delta_hint(),
            _ => 0,
        };
        Self {
            block: map.block(),
            head,
            tail: map.bloom().clone(),
            delta,
        }
    }

    /// The block this summary describes.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// Whether the sub-dataset *may* be present (no false negatives).
    pub fn contains(&self, s: SubDatasetId) -> bool {
        self.head.contains(s) || self.tail.contains(s)
    }

    /// δ bound: smallest known per-sub-dataset size in the block.
    pub fn delta(&self) -> u64 {
        self.delta
    }
}

/// What one scrub pass found and fixed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Shards examined.
    pub scrubbed: usize,
    /// Bad or missing shard copies rewritten from a healthy replica.
    pub repaired: usize,
    /// Bad or missing summary copies rewritten from a healthy replica.
    pub summaries_repaired: usize,
    /// Replica manifests rewritten from the in-memory manifest.
    pub manifests_repaired: usize,
    /// Shards with no healthy full copy anywhere — quarantined.
    pub quarantined: Vec<usize>,
    /// Shards whose summaries are also gone everywhere (rung 3 on loss).
    pub summaries_lost: Vec<usize>,
}

/// Why a single-replica read failed (drives health counters).
enum ReadFail {
    Io(io::Error),
    Corrupt(String),
}

impl ReadFail {
    fn describe(&self) -> String {
        match self {
            ReadFail::Io(e) => e.to_string(),
            ReadFail::Corrupt(d) => d.clone(),
        }
    }
}

/// On-disk handle to sharded, replicated meta-data.
#[derive(Debug)]
pub struct MetaStore {
    /// Replica directories in read-preference order.
    dirs: Vec<PathBuf>,
    manifest: Manifest,
    /// Manifest file this handle reads and scrub-repairs: `manifest.json`
    /// for the live store, `manifest-eNNNN.json` when opened at a historical
    /// epoch (so a time-travel handle never clobbers the live manifest).
    manifest_name: String,
    /// LRU cache of decoded shards: back = most recently used.
    cache: VecDeque<(usize, Vec<ElasticMap>)>,
    cache_shards: usize,
    retry: RetryPolicy,
    /// Shards with no healthy full copy; reads fail fast.
    quarantined: BTreeSet<usize>,
    /// Running resilience accounting (reads, repairs, quarantines).
    health: MetaHealth,
    /// Observability sink (disabled by default): shard-load and scrub
    /// spans on the wall clock, cache/failover counters.
    rec: Recorder,
}

pub(crate) fn shard_file(i: usize) -> String {
    format!("shard-{i:04}.json")
}

pub(crate) fn summary_file(i: usize) -> String {
    format!("summary-{i:04}.json")
}

/// Per-epoch tail shard: the (< `shard_blocks`) newest maps at epoch `e`.
pub(crate) fn epoch_file(e: u64) -> String {
    format!("epoch-{e:04}.json")
}

/// Summary sidecar of the per-epoch tail shard.
pub(crate) fn epoch_summary_file(e: u64) -> String {
    format!("epoch-{e:04}-summary.json")
}

/// Immutable per-epoch manifest; `manifest.json` always mirrors the newest.
pub(crate) fn epoch_manifest_file(e: u64) -> String {
    format!("manifest-e{e:04}.json")
}

impl MetaStore {
    /// Persist an [`ElasticMapArray`] into `dir` (created if needed) as
    /// `manifest.json` plus `shard-NNNN.json` / `summary-NNNN.json` files of
    /// `shard_blocks` consecutive blocks each. Single-replica convenience
    /// for [`MetaStore::save_replicated`].
    ///
    /// # Errors
    /// I/O or serialisation failures.
    ///
    /// # Panics
    /// Panics if `shard_blocks == 0`.
    pub fn save(
        array: &ElasticMapArray,
        dir: &Path,
        shard_blocks: usize,
    ) -> Result<(), StoreError> {
        Self::save_replicated(array, &[dir], shard_blocks)
    }

    /// Persist an [`ElasticMapArray`] into every directory of `dirs` — k-way
    /// replication across simulated datanodes. Shards and summaries are
    /// serialised once; every replica gets byte-identical files, so the
    /// manifest's CRCs hold for all of them.
    ///
    /// # Errors
    /// I/O or serialisation failures.
    ///
    /// # Panics
    /// Panics if `shard_blocks == 0` or `dirs` is empty.
    pub fn save_replicated(
        array: &ElasticMapArray,
        dirs: &[&Path],
        shard_blocks: usize,
    ) -> Result<(), StoreError> {
        assert!(shard_blocks > 0, "shards must hold at least one block");
        assert!(!dirs.is_empty(), "need at least one replica directory");
        let mut shard_bytes = Vec::new();
        let mut summary_bytes = Vec::new();
        let mut shard_crc = Vec::new();
        let mut summary_crc = Vec::new();
        for chunk in array.maps().chunks(shard_blocks) {
            let bytes = serde_json::to_vec(&chunk).map_err(io::Error::from)?;
            shard_crc.push(crc32(&bytes));
            shard_bytes.push(bytes);
            let summaries: Vec<BlockSummary> = chunk.iter().map(BlockSummary::of).collect();
            let bytes = serde_json::to_vec(&summaries).map_err(io::Error::from)?;
            summary_crc.push(crc32(&bytes));
            summary_bytes.push(bytes);
        }
        let manifest = Manifest {
            blocks: array.len(),
            shard_blocks,
            policy: array.policy().clone(),
            version: FORMAT_VERSION,
            shard_crc,
            summary_crc,
            epoch: 0,
            tail_crc: None,
            tail_summary_crc: None,
        };
        let manifest_bytes = serde_json::to_vec_pretty(&manifest).map_err(io::Error::from)?;
        for dir in dirs {
            fs::create_dir_all(dir)?;
            fs::write(dir.join("manifest.json"), &manifest_bytes)?;
            for (i, bytes) in shard_bytes.iter().enumerate() {
                fs::write(dir.join(shard_file(i)), bytes)?;
            }
            for (i, bytes) in summary_bytes.iter().enumerate() {
                fs::write(dir.join(summary_file(i)), bytes)?;
            }
        }
        Ok(())
    }

    /// Open a persisted single-replica store with a cache of `cache_shards`
    /// decoded shards (LRU eviction; 0 disables caching).
    ///
    /// # Errors
    /// Missing/corrupt manifest or an unsupported future format version.
    pub fn open(dir: &Path, cache_shards: usize) -> Result<Self, StoreError> {
        Self::open_replicated(&[dir], cache_shards)
    }

    /// Open a store replicated across `dirs`. The manifest is taken from
    /// the first replica that yields a valid one; shard reads fail over
    /// across all of them.
    ///
    /// # Errors
    /// [`StoreError::FutureVersion`] as soon as any replica's manifest is
    /// newer than this build; otherwise the last per-replica failure when
    /// no replica has a readable manifest.
    ///
    /// # Panics
    /// Panics if `dirs` is empty.
    pub fn open_replicated(dirs: &[&Path], cache_shards: usize) -> Result<Self, StoreError> {
        Self::open_replicated_named(dirs, "manifest.json", cache_shards)
    }

    /// Open a replicated store **as of ingest epoch `epoch`** via its
    /// immutable per-epoch manifest (`manifest-eNNNN.json`). Only stores
    /// written by the streaming ingestor carry these; the handle answers
    /// queries exactly as the live store did at that epoch and its scrub
    /// pass repairs the epoch manifest, never `manifest.json`.
    ///
    /// # Errors
    /// Same as [`MetaStore::open_replicated`]; a missing epoch manifest
    /// surfaces as the underlying I/O error.
    pub fn open_replicated_at_epoch(
        dirs: &[&Path],
        epoch: u64,
        cache_shards: usize,
    ) -> Result<Self, StoreError> {
        Self::open_replicated_named(dirs, &epoch_manifest_file(epoch), cache_shards)
    }

    fn open_replicated_named(
        dirs: &[&Path],
        manifest_name: &str,
        cache_shards: usize,
    ) -> Result<Self, StoreError> {
        assert!(!dirs.is_empty(), "need at least one replica directory");
        let mut last_err: Option<StoreError> = None;
        let mut manifest: Option<Manifest> = None;
        for dir in dirs {
            match Self::read_manifest_named(dir, manifest_name) {
                Ok(m) => {
                    manifest = Some(m);
                    break;
                }
                Err(e @ StoreError::FutureVersion { .. }) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        let Some(manifest) = manifest else {
            return Err(last_err.expect("at least one replica was tried"));
        };
        Ok(Self {
            dirs: dirs.iter().map(|d| d.to_path_buf()).collect(),
            manifest,
            manifest_name: manifest_name.to_string(),
            cache: VecDeque::new(),
            cache_shards,
            retry: RetryPolicy::default(),
            quarantined: BTreeSet::new(),
            health: MetaHealth::default(),
            rec: Recorder::off(),
        })
    }

    /// Decode one replica's manifest, distinguishing future versions from
    /// corruption *before* the full decode (a future manifest may have
    /// fields this build cannot even parse).
    fn read_manifest_named(dir: &Path, name: &str) -> Result<Manifest, StoreError> {
        let path = dir.join(name);
        let bytes = fs::read(&path)?;
        let value = serde_json::parse_value(&bytes).map_err(|e| StoreError::Corrupt {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        if let Some(v) = value.get("version") {
            let found = u32::from_value(v).map_err(|e| StoreError::Corrupt {
                path: path.clone(),
                detail: e.to_string(),
            })?;
            if found > FORMAT_VERSION {
                return Err(StoreError::FutureVersion {
                    found,
                    supported: FORMAT_VERSION,
                });
            }
        }
        Manifest::from_value(&value).map_err(|e| StoreError::Corrupt {
            path,
            detail: e.to_string(),
        })
    }

    /// The manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Replica directories, read-preference order.
    pub fn replica_dirs(&self) -> &[PathBuf] {
        &self.dirs
    }

    /// Override the read retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        assert!(retry.attempts_per_replica >= 1, "need at least one attempt");
        self.retry = retry;
    }

    /// Attach an observability recorder: subsequent shard reads emit
    /// wall-clock `shard-load`/`summary-load` spans and cache counters, and
    /// scrub passes emit `scrub` spans. Pass [`Recorder::off`] to detach.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Resilience accounting accumulated by this handle's reads and scrubs.
    pub fn health(&self) -> &MetaHealth {
        &self.health
    }

    /// Currently quarantined shard indices.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }

    /// Blocks covered by shard `i`: `[start, end)`.
    fn shard_span(&self, i: usize) -> (usize, usize) {
        let start = i * self.manifest.shard_blocks;
        let end = (start + self.manifest.shard_blocks).min(self.manifest.blocks);
        (start, end)
    }

    /// One verified read attempt of `file` in `dir`.
    fn try_read(dir: &Path, file: &str, expect_crc: Option<u32>) -> Result<Vec<u8>, ReadFail> {
        let bytes = fs::read(dir.join(file)).map_err(ReadFail::Io)?;
        if let Some(want) = expect_crc {
            let got = crc32(&bytes);
            if got != want {
                return Err(ReadFail::Corrupt(format!(
                    "checksum mismatch: recorded {want:#010x}, computed {got:#010x}"
                )));
            }
        }
        Ok(bytes)
    }

    /// Read `file` with bounded retry + backoff per replica, failing over
    /// across replicas; `decode` validates and parses the verified bytes.
    fn read_with_failover<T>(
        &mut self,
        shard: usize,
        file: &str,
        expect_crc: Option<u32>,
        decode: impl Fn(&[u8]) -> Result<T, String>,
    ) -> Result<T, StoreError> {
        let mut last = String::from("no replica tried");
        for (d, dir) in self.dirs.clone().iter().enumerate() {
            if d > 0 {
                self.health.failovers += 1;
                self.rec.add("meta_failovers", 1);
                self.rec.flight(
                    FlightKind::Retry,
                    Domain::Wall,
                    self.rec.wall_us(),
                    None,
                    format!("failover to replica {d} for {file}"),
                );
            }
            for attempt in 0..self.retry.attempts_per_replica {
                if attempt > 0 {
                    self.health.retries += 1;
                    self.rec.add("meta_retries", 1);
                    self.rec.flight(
                        FlightKind::Retry,
                        Domain::Wall,
                        self.rec.wall_us(),
                        None,
                        format!("retry {attempt} of {file} on replica {d}"),
                    );
                    // Deterministic per-(shard, replica) jitter: concurrent
                    // readers of different shards never sleep in lockstep.
                    let seed = (shard as u64) << 8 | d as u64;
                    std::thread::sleep(self.retry.backoff_jittered(attempt, seed));
                }
                let outcome = Self::try_read(dir, file, expect_crc)
                    .and_then(|bytes| decode(&bytes).map_err(ReadFail::Corrupt));
                match outcome {
                    Ok(v) => return Ok(v),
                    Err(fail) => {
                        match &fail {
                            ReadFail::Io(_) => self.health.io_failures += 1,
                            ReadFail::Corrupt(_) => self.health.checksum_failures += 1,
                        }
                        last = format!("{}: {}", dir.join(file).display(), fail.describe());
                    }
                }
            }
        }
        Err(StoreError::AllReplicasFailed {
            shard,
            detail: last,
        })
    }

    /// Mark a shard irreparable; counts once per shard.
    fn quarantine(&mut self, shard: usize) {
        if self.quarantined.insert(shard) {
            self.health.shards_quarantined += 1;
        }
    }

    /// Load one shard (through the LRU cache), retrying and failing over
    /// across replicas. An exhausted read quarantines the shard.
    ///
    /// # Errors
    /// [`StoreError::Quarantined`] for known-dead shards,
    /// [`StoreError::AllReplicasFailed`] when every replica fails now.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn shard(&mut self, index: usize) -> Result<&[ElasticMap], StoreError> {
        assert!(
            index < self.manifest.shard_count(),
            "shard {index} out of range"
        );
        if let Some(pos) = self.cache.iter().position(|(i, _)| *i == index) {
            // LRU touch-on-hit: move to the back, then return it.
            let entry = self.cache.remove(pos).expect("position is valid");
            self.cache.push_back(entry);
            self.rec.add("shard_cache_hits", 1);
            return Ok(&self.cache.back().expect("just pushed").1);
        }
        if self.quarantined.contains(&index) {
            return Err(StoreError::Quarantined { shard: index });
        }
        self.rec.add("shard_cache_misses", 1);
        let span = self.rec.begin(
            Category::ShardLoad,
            "shard-load",
            Domain::Wall,
            self.rec.wall_us(),
            SpanCtx::default().note(self.manifest.shard_file_name(index)),
        );
        let (start, end) = self.shard_span(index);
        let expect = self.manifest.expected_shard_crc(index);
        let file = self.manifest.shard_file_name(index);
        let maps = match self.read_with_failover(index, &file, expect, |bytes| {
            let maps: Vec<ElasticMap> = serde_json::from_slice(bytes).map_err(|e| e.to_string())?;
            if maps.len() != end - start {
                return Err(format!(
                    "expected {} block maps, found {}",
                    end - start,
                    maps.len()
                ));
            }
            Ok(maps)
        }) {
            Ok(maps) => {
                self.rec.end(span, self.rec.wall_us());
                maps
            }
            Err(e) => {
                self.quarantine(index);
                self.rec
                    .end_with_note(span, self.rec.wall_us(), "all replicas failed");
                return Err(e);
            }
        };
        if self.cache_shards == 0 {
            // No caching: keep exactly one transient slot.
            self.cache.clear();
            self.cache.push_back((index, maps));
        } else {
            while self.cache.len() >= self.cache_shards {
                self.cache.pop_front();
            }
            self.cache.push_back((index, maps));
        }
        Ok(&self.cache.back().expect("just pushed").1)
    }

    /// Load one shard's bloom-only summary sidecar (uncached — summaries
    /// are a few bytes per block).
    ///
    /// # Errors
    /// Every replica failed, or the store predates summaries (v1).
    pub fn summary(&mut self, index: usize) -> Result<Vec<BlockSummary>, StoreError> {
        assert!(
            index < self.manifest.shard_count(),
            "shard {index} out of range"
        );
        let (start, end) = self.shard_span(index);
        let expect = self.manifest.expected_summary_crc(index);
        let span = self.rec.begin(
            Category::ShardLoad,
            "summary-load",
            Domain::Wall,
            self.rec.wall_us(),
            SpanCtx::default().note(self.manifest.summary_file_name(index)),
        );
        let file = self.manifest.summary_file_name(index);
        let out = self.read_with_failover(index, &file, expect, |bytes| {
            let sums: Vec<BlockSummary> =
                serde_json::from_slice(bytes).map_err(|e| e.to_string())?;
            if sums.len() != end - start {
                return Err(format!(
                    "expected {} block summaries, found {}",
                    end - start,
                    sums.len()
                ));
            }
            Ok(sums)
        });
        match &out {
            Ok(_) => self.rec.end(span, self.rec.wall_us()),
            Err(_) => self
                .rec
                .end_with_note(span, self.rec.wall_us(), "all replicas failed"),
        }
        out
    }

    /// Indices of the shards currently decoded in the cache, least recently
    /// used first (the front is the next eviction victim).
    pub fn cached_shards(&self) -> Vec<usize> {
        self.cache.iter().map(|(i, _)| *i).collect()
    }

    /// Query one `(block, sub-dataset)` cell from disk.
    ///
    /// # Errors
    /// Shard read failures (after retry/failover).
    pub fn query(
        &mut self,
        block: datanet_dfs::BlockId,
        s: SubDatasetId,
    ) -> Result<SizeInfo, StoreError> {
        let shard = block.index() / self.manifest.shard_blocks;
        let offset = block.index() % self.manifest.shard_blocks;
        Ok(self.shard(shard)?[offset].query(s))
    }

    /// Stream all shards to assemble a sub-dataset view — identical result
    /// to [`ElasticMapArray::view`], without holding the full array in
    /// memory. Strict rung-1 semantics: any unreadable shard is an error
    /// (use [`MetaStore::view_degraded`] to keep going).
    ///
    /// # Errors
    /// Shard read failures (after retry/failover).
    pub fn view(&mut self, s: SubDatasetId) -> Result<SubDatasetView, StoreError> {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        for i in 0..self.manifest.shard_count() {
            for m in self.shard(i)? {
                match m.query(s) {
                    SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                    SizeInfo::Approximate => {
                        bloom.push(m.block());
                        delta_hint = delta_hint.min(m.bloom_delta_hint());
                    }
                    SizeInfo::Absent => {}
                }
            }
        }
        Ok(SubDatasetView::new(s, exact, bloom, delta_hint))
    }

    /// Batched [`MetaStore::view`]: one view per input id, in input order,
    /// bit-identical to N single `view` calls — but each shard is decoded
    /// (or fetched from cache) **once** for the whole batch instead of once
    /// per id, and the per-block exact sides are merge-joined against the
    /// sorted probe list ([`ElasticMap::query_batch`]). This is the path
    /// scheduling-time multi-query workloads should use.
    ///
    /// # Errors
    /// Shard read failures (after retry/failover).
    pub fn views(&mut self, ids: &[SubDatasetId]) -> Result<Vec<SubDatasetView>, StoreError> {
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by_key(|&i| ids[i]);
        let sorted: Vec<SubDatasetId> = order.iter().map(|&i| ids[i]).collect();
        let mut exact: Vec<Vec<(BlockId, u64)>> = vec![Vec::new(); ids.len()];
        let mut bloom: Vec<Vec<BlockId>> = vec![Vec::new(); ids.len()];
        let mut delta: Vec<u64> = vec![u64::MAX; ids.len()];
        for i in 0..self.manifest.shard_count() {
            for m in self.shard(i)? {
                for (k, info) in m.query_batch(&sorted).into_iter().enumerate() {
                    let at = order[k];
                    match info {
                        SizeInfo::Exact(sz) => exact[at].push((m.block(), sz)),
                        SizeInfo::Approximate => {
                            bloom[at].push(m.block());
                            delta[at] = delta[at].min(m.bloom_delta_hint());
                        }
                        SizeInfo::Absent => {}
                    }
                }
            }
        }
        Ok(ids
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                SubDatasetView::new(
                    id,
                    std::mem::take(&mut exact[i]),
                    std::mem::take(&mut bloom[i]),
                    delta[i],
                )
            })
            .collect())
    }

    /// Assemble a sub-dataset view under metadata failures — the degradation
    /// ladder's read path. Never fails: per shard it tries the full copy
    /// (rung 1/2), then the bloom-only summary (rung 2), and finally gives
    /// the shard's whole block span to the rung-3 unknown pool.
    pub fn view_degraded(&mut self, s: SubDatasetId) -> DegradedView {
        let mut exact = Vec::new();
        let mut bloom = Vec::new();
        let mut delta_hint = u64::MAX;
        let mut unknown = Vec::new();
        let mut sources = Vec::new();
        for i in 0..self.manifest.shard_count() {
            match self.shard(i) {
                Ok(maps) => {
                    for m in maps {
                        match m.query(s) {
                            SizeInfo::Exact(sz) => exact.push((m.block(), sz)),
                            SizeInfo::Approximate => {
                                bloom.push(m.block());
                                delta_hint = delta_hint.min(m.bloom_delta_hint());
                            }
                            SizeInfo::Absent => {}
                        }
                    }
                    sources.push(ShardSource::Full);
                }
                Err(_) => match self.summary(i) {
                    Ok(sums) => {
                        for sum in &sums {
                            if sum.contains(s) {
                                bloom.push(sum.block());
                                delta_hint = delta_hint.min(sum.delta());
                            }
                        }
                        sources.push(ShardSource::Summary);
                        self.rec.flight(
                            FlightKind::RungChange,
                            Domain::Wall,
                            self.rec.wall_us(),
                            None,
                            format!("shard {i} degraded to summary (rung 2)"),
                        );
                    }
                    Err(_) => {
                        let (start, end) = self.shard_span(i);
                        unknown.extend((start..end).map(|b| BlockId(b as u32)));
                        sources.push(ShardSource::Lost);
                        self.rec.flight(
                            FlightKind::RungChange,
                            Domain::Wall,
                            self.rec.wall_us(),
                            None,
                            format!("shard {i} lost, blocks {start}..{end} unknown (rung 3)"),
                        );
                    }
                },
            }
        }
        DegradedView::new(
            SubDatasetView::new(s, exact, bloom, delta_hint),
            unknown,
            sources,
        )
    }

    /// Batched [`MetaStore::view_degraded`]: one degraded view per input
    /// id, in input order, element-wise identical to N single calls made
    /// against the same shard health. Shard/summary decode attempts happen
    /// once per shard for the whole batch (so the rung bookkeeping — and
    /// any repair-triggering side effects — fire once, not once per id).
    pub fn views_degraded(&mut self, ids: &[SubDatasetId]) -> Vec<DegradedView> {
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by_key(|&i| ids[i]);
        let sorted: Vec<SubDatasetId> = order.iter().map(|&i| ids[i]).collect();
        let mut exact: Vec<Vec<(BlockId, u64)>> = vec![Vec::new(); ids.len()];
        let mut bloom: Vec<Vec<BlockId>> = vec![Vec::new(); ids.len()];
        let mut delta: Vec<u64> = vec![u64::MAX; ids.len()];
        // Shard health is id-independent: one source row and one unknown
        // pool shared by every view in the batch.
        let mut unknown = Vec::new();
        let mut sources = Vec::new();
        for i in 0..self.manifest.shard_count() {
            match self.shard(i) {
                Ok(maps) => {
                    for m in maps {
                        for (k, info) in m.query_batch(&sorted).into_iter().enumerate() {
                            let at = order[k];
                            match info {
                                SizeInfo::Exact(sz) => exact[at].push((m.block(), sz)),
                                SizeInfo::Approximate => {
                                    bloom[at].push(m.block());
                                    delta[at] = delta[at].min(m.bloom_delta_hint());
                                }
                                SizeInfo::Absent => {}
                            }
                        }
                    }
                    sources.push(ShardSource::Full);
                }
                Err(_) => match self.summary(i) {
                    Ok(sums) => {
                        for sum in &sums {
                            for (k, &s) in sorted.iter().enumerate() {
                                if sum.contains(s) {
                                    let at = order[k];
                                    bloom[at].push(sum.block());
                                    delta[at] = delta[at].min(sum.delta());
                                }
                            }
                        }
                        sources.push(ShardSource::Summary);
                        self.rec.flight(
                            FlightKind::RungChange,
                            Domain::Wall,
                            self.rec.wall_us(),
                            None,
                            format!("shard {i} degraded to summary (rung 2)"),
                        );
                    }
                    Err(_) => {
                        let (start, end) = self.shard_span(i);
                        unknown.extend((start..end).map(|b| BlockId(b as u32)));
                        sources.push(ShardSource::Lost);
                        self.rec.flight(
                            FlightKind::RungChange,
                            Domain::Wall,
                            self.rec.wall_us(),
                            None,
                            format!("shard {i} lost, blocks {start}..{end} unknown (rung 3)"),
                        );
                    }
                },
            }
        }
        ids.iter()
            .enumerate()
            .map(|(i, &id)| {
                DegradedView::new(
                    SubDatasetView::new(
                        id,
                        std::mem::take(&mut exact[i]),
                        std::mem::take(&mut bloom[i]),
                        delta[i],
                    ),
                    unknown.clone(),
                    sources.clone(),
                )
            })
            .collect()
    }

    /// Background scrub: verify every copy of every shard and summary,
    /// repair bad copies from a healthy replica (HDFS block-scanner style),
    /// quarantine shards with no healthy copy anywhere, and lift the
    /// quarantine of shards that verify again (e.g. after an operator
    /// restored files).
    pub fn scrub(&mut self) -> ScrubReport {
        let span = self.rec.begin(
            Category::Scrub,
            "scrub",
            Domain::Wall,
            self.rec.wall_us(),
            SpanCtx::default(),
        );
        let mut report = ScrubReport {
            scrubbed: self.manifest.shard_count(),
            ..ScrubReport::default()
        };
        self.health.shards_scrubbed += self.manifest.shard_count();

        // Replica manifests first: a healthy shard copy is unreachable on a
        // replica whose manifest is gone.
        let manifest_bytes =
            serde_json::to_vec_pretty(&self.manifest).expect("manifest serialises");
        let manifest_name = self.manifest_name.clone();
        for dir in self.dirs.clone() {
            if Self::read_manifest_named(&dir, &manifest_name).is_err()
                && fs::create_dir_all(&dir).is_ok()
            {
                let _ = fs::write(dir.join(&manifest_name), &manifest_bytes);
                report.manifests_repaired += 1;
            }
        }

        for i in 0..self.manifest.shard_count() {
            let repaired = self.scrub_file(
                &self.manifest.shard_file_name(i),
                self.manifest.expected_shard_crc(i),
            );
            match repaired {
                Some(n) => {
                    report.repaired += n;
                    self.health.shards_repaired += n;
                    if self.quarantined.remove(&i) {
                        // Healthy again: lift the quarantine.
                        self.health.shards_quarantined =
                            self.health.shards_quarantined.saturating_sub(1);
                    }
                }
                None => {
                    self.quarantine(i);
                    report.quarantined.push(i);
                }
            }
            let summaries = self.scrub_file(
                &self.manifest.summary_file_name(i),
                self.manifest.expected_summary_crc(i),
            );
            match summaries {
                Some(n) => {
                    report.summaries_repaired += n;
                    self.health.summaries_repaired += n;
                }
                None => report.summaries_lost.push(i),
            }
        }
        self.rec.end_with_note(
            span,
            self.rec.wall_us(),
            &format!(
                "repaired {}, summaries {}, quarantined {}",
                report.repaired,
                report.summaries_repaired,
                report.quarantined.len()
            ),
        );
        report
    }

    /// Scrub one file across all replicas. Returns the number of bad copies
    /// rewritten from a healthy one, or `None` when no copy verifies.
    fn scrub_file(&mut self, file: &str, expect_crc: Option<u32>) -> Option<usize> {
        let dirs = self.dirs.clone();
        let mut healthy: Option<Vec<u8>> = None;
        let mut bad: Vec<&PathBuf> = Vec::new();
        for dir in &dirs {
            match Self::try_read(dir, file, expect_crc) {
                // Without recorded CRCs (v1), "verifies" = parses as JSON.
                Ok(bytes) if expect_crc.is_some() || serde_json::parse_value(&bytes).is_ok() => {
                    if healthy.is_none() {
                        healthy = Some(bytes);
                    }
                }
                Ok(_) | Err(_) => bad.push(dir),
            }
        }
        let healthy = healthy?;
        let mut repaired = 0;
        for dir in bad {
            if fs::write(dir.join(file), &healthy).is_ok() {
                repaired += 1;
            }
        }
        Some(repaired)
    }

    /// Total serialized bytes on disk in the primary replica directory
    /// (manifest + shards + summaries).
    ///
    /// # Errors
    /// Directory traversal failures.
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dirs[0])? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::Rung;
    use datanet_dfs::{BlockId, Dfs, DfsConfig, Record, Topology};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("datanet-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn replica_dirs(tag: &str, k: usize) -> Vec<PathBuf> {
        (0..k).map(|i| tmpdir(&format!("{tag}-r{i}"))).collect()
    }

    fn sample_array() -> (Dfs, ElasticMapArray) {
        let recs = (0..3000u64)
            .map(|i| Record::new(SubDatasetId(i % 50), i, 100 + (i % 7) as u32 * 40, i));
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 12_000,
                replication: 2,
                topology: Topology::single_rack(6),
                seed: 11,
            },
            recs,
        );
        let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(0.4));
        (dfs, arr)
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn roundtrip_preserves_queries_and_views() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("roundtrip");
        MetaStore::save(&arr, &dir, 7).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        assert_eq!(store.manifest().blocks, arr.len());
        assert_eq!(store.manifest().version, FORMAT_VERSION);
        assert_eq!(
            store.manifest().shard_crc.len(),
            store.manifest().shard_count()
        );
        for b in 0..arr.len() {
            for s in 0..60u64 {
                assert_eq!(
                    store.query(BlockId(b as u32), SubDatasetId(s)).unwrap(),
                    arr.query(BlockId(b as u32), SubDatasetId(s))
                );
            }
        }
        for s in 0..50u64 {
            assert_eq!(
                store.view(SubDatasetId(s)).unwrap(),
                arr.view(SubDatasetId(s))
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_views_match_single_views() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("batchviews");
        MetaStore::save(&arr, &dir, 7).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        // Unsorted, duplicated, and absent ids all answer identically.
        let ids: Vec<SubDatasetId> = [31u64, 2, 999, 2, 0, 49]
            .iter()
            .map(|&i| SubDatasetId(i))
            .collect();
        let batch = store.views(&ids).unwrap();
        assert_eq!(batch.len(), ids.len());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(batch[i], store.view(id).unwrap(), "view mismatch for {id}");
        }
        assert!(store.views(&[]).unwrap().is_empty());
        let degraded = store.views_degraded(&ids);
        for (i, &id) in ids.iter().enumerate() {
            let single = store.view_degraded(id);
            assert_eq!(degraded[i].view(), single.view());
            assert_eq!(degraded[i].rung_counts(), single.rung_counts());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_covers_all_blocks() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("shards");
        MetaStore::save(&arr, &dir, 4).unwrap();
        let store = MetaStore::open(&dir, 1).unwrap();
        let m = store.manifest();
        assert_eq!(m.shard_count(), arr.len().div_ceil(4));
        assert!(store.disk_bytes().unwrap() > 0);
        // Every shard and summary file exists.
        for i in 0..m.shard_count() {
            assert!(dir.join(shard_file(i)).exists());
            assert!(dir.join(summary_file(i)).exists());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_eviction_does_not_change_results() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("cache");
        MetaStore::save(&arr, &dir, 3).unwrap();
        // cache_shards = 0 (transient) and 1 (thrash) must agree.
        let mut a = MetaStore::open(&dir, 0).unwrap();
        let mut b = MetaStore::open(&dir, 1).unwrap();
        for s in (0..50u64).rev() {
            assert_eq!(
                a.view(SubDatasetId(s)).unwrap(),
                b.view(SubDatasetId(s)).unwrap()
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_evicts_oldest_first_and_refreshes_on_hit() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("evict");
        MetaStore::save(&arr, &dir, 3).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        assert!(store.manifest().shard_count() >= 3, "need >= 3 shards");

        store.shard(0).unwrap();
        store.shard(1).unwrap();
        assert_eq!(store.cached_shards(), vec![0, 1]);
        // A hit moves the shard to the back (most recently used).
        store.shard(0).unwrap();
        assert_eq!(store.cached_shards(), vec![1, 0]);
        // A miss at capacity evicts the front — shard 1, not the re-used 0.
        store.shard(2).unwrap();
        assert_eq!(store.cached_shards(), vec![0, 2]);

        // cache_shards = 0 keeps exactly one transient slot.
        let mut transient = MetaStore::open(&dir, 0).unwrap();
        transient.shard(0).unwrap();
        transient.shard(1).unwrap();
        assert_eq!(transient.cached_shards(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_hot_shard_survives_eviction_pressure() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("lru-hot");
        MetaStore::save(&arr, &dir, 3).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        let count = store.manifest().shard_count();
        assert!(count >= 4, "need >= 4 shards for real pressure");

        // Sweep every other shard repeatedly while re-touching shard 0
        // between each: under FIFO, shard 0 would be evicted once two other
        // shards had been loaded after it; under LRU the touch keeps it.
        store.shard(0).unwrap();
        for pass in 0..3 {
            for i in 1..count {
                store.shard(i).unwrap();
                store.shard(0).unwrap();
                assert!(
                    store.cached_shards().contains(&0),
                    "pass {pass}: hot shard evicted under pressure from shard {i}"
                );
            }
        }
        // The hot shard is served from cache even after total disk loss.
        fs::remove_dir_all(&dir).unwrap();
        assert!(store.shard(0).is_ok(), "hot shard must still be cached");
    }

    #[test]
    fn cache_hit_serves_even_after_disk_loss() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("hit");
        MetaStore::save(&arr, &dir, 5).unwrap();
        let mut store = MetaStore::open(&dir, 4).unwrap();
        let want = store.query(BlockId(0), SubDatasetId(3)).unwrap();

        // Shard 0 is cached now; clobber it on disk.
        fs::write(dir.join("shard-0000.json"), b"not json").unwrap();
        assert_eq!(store.query(BlockId(0), SubDatasetId(3)).unwrap(), want);

        // A fresh store must go to disk and hit the corruption.
        let mut fresh = MetaStore::open(&dir, 4).unwrap();
        assert!(fresh.query(BlockId(0), SubDatasetId(3)).is_err());
        assert!(fresh.health().checksum_failures > 0, "CRC caught it");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_missing_shard_is_an_error_and_quarantines() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("corrupt");
        MetaStore::save(&arr, &dir, 6).unwrap();
        let count = {
            let store = MetaStore::open(&dir, 1).unwrap();
            store.manifest().shard_count()
        };
        assert!(count >= 2, "need >= 2 shards");

        // Truncated JSON in the middle of a shard.
        fs::write(dir.join("shard-0001.json"), b"[{\"trunc").unwrap();
        let mut store = MetaStore::open(&dir, 1).unwrap();
        assert!(matches!(
            store.shard(1),
            Err(StoreError::AllReplicasFailed { shard: 1, .. })
        ));
        // The failed shard is quarantined: the next read fails fast.
        assert_eq!(store.quarantined_shards(), vec![1]);
        assert!(matches!(
            store.shard(1),
            Err(StoreError::Quarantined { shard: 1 })
        ));
        // Other shards are unaffected.
        assert!(store.shard(0).is_ok());

        // A deleted shard file surfaces as an I/O failure underneath.
        fs::remove_file(dir.join(shard_file(count - 1))).unwrap();
        assert!(store.shard(count - 1).is_err());
        assert!(store.health().io_failures > 0);
        // Streaming a strict view over the broken directory fails too.
        assert!(store.view(SubDatasetId(0)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("future");
        MetaStore::save(&arr, &dir, 8).unwrap();
        let mut manifest: Manifest =
            serde_json::from_slice(&fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        manifest.version = 999;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_vec(&manifest).unwrap(),
        )
        .unwrap();
        match MetaStore::open(&dir, 1) {
            Err(StoreError::FutureVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected FutureVersion, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_corrupt_manifest_is_a_typed_error() {
        let dir = tmpdir("trunc-manifest");
        fs::create_dir_all(&dir).unwrap();
        // Truncated mid-object.
        fs::write(dir.join("manifest.json"), b"{\"blocks\": 12, \"shard_b").unwrap();
        assert!(matches!(
            MetaStore::open(&dir, 1),
            Err(StoreError::Corrupt { .. })
        ));
        // Valid JSON, wrong shape.
        fs::write(dir.join("manifest.json"), b"[1, 2, 3]").unwrap();
        assert!(matches!(
            MetaStore::open(&dir, 1),
            Err(StoreError::Corrupt { .. })
        ));
        // Valid object, missing required field.
        fs::write(dir.join("manifest.json"), b"{\"version\": 2}").unwrap();
        match MetaStore::open(&dir, 1) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("missing field"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_manifest_without_checksums_still_opens() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("v1");
        MetaStore::save(&arr, &dir, 7).unwrap();
        // Rewrite the manifest as version 1 without the CRC fields.
        let m: Manifest =
            serde_json::from_slice(&fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        let v1 = format!(
            "{{\"blocks\": {}, \"shard_blocks\": {}, \"policy\": {}, \"version\": 1}}",
            m.blocks,
            m.shard_blocks,
            serde_json::to_string(&m.policy).unwrap()
        );
        fs::write(dir.join("manifest.json"), v1).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        assert_eq!(store.manifest().version, 1);
        assert!(store.manifest().shard_crc.is_empty());
        // Reads work, just without CRC verification.
        assert!(store.view(SubDatasetId(0)).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = tmpdir("missing");
        assert!(MetaStore::open(&dir, 1).is_err());
    }

    #[test]
    fn replicated_read_fails_over_on_corruption() {
        let (_dfs, arr) = sample_array();
        let dirs = replica_dirs("failover", 3);
        let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
        MetaStore::save_replicated(&arr, &refs, 5).unwrap();

        // Corrupt shard 0 in the primary, delete it in the secondary: the
        // tertiary still serves it, transparently.
        fs::write(dirs[0].join("shard-0000.json"), b"garbage").unwrap();
        fs::remove_file(dirs[1].join("shard-0000.json")).unwrap();
        let mut store = MetaStore::open_replicated(&refs, 2).unwrap();
        let view = store.view(SubDatasetId(1)).unwrap();
        assert_eq!(view, arr.view(SubDatasetId(1)));
        assert!(store.health().failovers >= 2, "two replicas were skipped");
        assert!(store.health().checksum_failures > 0);
        assert!(store.health().io_failures > 0);
        assert!(store.quarantined_shards().is_empty());
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn scrub_repairs_bad_copies_from_healthy_replica() {
        let (_dfs, arr) = sample_array();
        let dirs = replica_dirs("scrub", 2);
        let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
        MetaStore::save_replicated(&arr, &refs, 4).unwrap();
        let mut store = MetaStore::open_replicated(&refs, 2).unwrap();
        let count = store.manifest().shard_count();
        // Corrupt ~20% of shards (every 5th) in the primary only.
        let victims: Vec<usize> = (0..count).step_by(5).collect();
        for &i in &victims {
            fs::write(dirs[0].join(shard_file(i)), b"bit rot").unwrap();
        }
        let report = store.scrub();
        assert_eq!(report.scrubbed, count);
        assert_eq!(report.repaired, victims.len());
        assert!(report.quarantined.is_empty());
        assert_eq!(store.health().shards_repaired, victims.len());
        // Every repaired copy now verifies against the manifest CRC.
        for &i in &victims {
            let bytes = fs::read(dirs[0].join(shard_file(i))).unwrap();
            assert_eq!(crc32(&bytes), store.manifest().shard_crc[i]);
        }
        // Reads from the primary alone succeed again.
        let mut primary = MetaStore::open(&dirs[0], 1).unwrap();
        assert!(primary.view(SubDatasetId(0)).is_ok());
        assert_eq!(primary.health().checksum_failures, 0);
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn scrub_quarantines_irreparable_shards_and_lifts_on_recovery() {
        let (_dfs, arr) = sample_array();
        let dirs = replica_dirs("quarantine", 2);
        let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
        MetaStore::save_replicated(&arr, &refs, 4).unwrap();
        let mut store = MetaStore::open_replicated(&refs, 2).unwrap();
        let healthy_bytes = fs::read(dirs[0].join(shard_file(1))).unwrap();
        // Destroy every copy of shard 1.
        for d in &dirs {
            fs::write(d.join(shard_file(1)), b"gone").unwrap();
        }
        let report = store.scrub();
        assert_eq!(report.quarantined, vec![1]);
        assert_eq!(store.quarantined_shards(), vec![1]);
        assert_eq!(store.health().shards_quarantined, 1);
        assert!(matches!(
            store.shard(1),
            Err(StoreError::Quarantined { shard: 1 })
        ));
        // An operator restores one copy; the next scrub lifts the
        // quarantine and repairs the other replica.
        fs::write(dirs[1].join(shard_file(1)), &healthy_bytes).unwrap();
        let report = store.scrub();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.repaired, 1);
        assert!(store.quarantined_shards().is_empty());
        assert_eq!(store.health().shards_quarantined, 0);
        assert!(store.shard(1).is_ok());
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn scrub_restores_missing_replica_manifest() {
        let (_dfs, arr) = sample_array();
        let dirs = replica_dirs("manifest-heal", 2);
        let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
        MetaStore::save_replicated(&arr, &refs, 6).unwrap();
        let mut store = MetaStore::open_replicated(&refs, 1).unwrap();
        fs::remove_file(dirs[1].join("manifest.json")).unwrap();
        let report = store.scrub();
        assert_eq!(report.manifests_repaired, 1);
        assert!(MetaStore::open(&dirs[1], 1).is_ok());
        for d in &dirs {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn degraded_view_steps_down_the_ladder() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("ladder");
        MetaStore::save(&arr, &dir, 4).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        let count = store.manifest().shard_count();
        assert!(count >= 3, "need >= 3 shards");
        let s = SubDatasetId(0);
        let healthy = store.view(s).unwrap();

        // Shard 0: full copy lost, summary intact → its blocks drop to
        // bloom-only (rung 2). Shard 1: both lost → unknown (rung 3).
        fs::write(dir.join(shard_file(0)), b"dead").unwrap();
        fs::write(dir.join(shard_file(1)), b"dead").unwrap();
        fs::write(dir.join(summary_file(1)), b"dead").unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        let degraded = store.view_degraded(s);
        assert_eq!(degraded.shard_sources()[0], ShardSource::Summary);
        assert_eq!(degraded.shard_sources()[1], ShardSource::Lost);
        assert!(degraded.shard_sources()[2..]
            .iter()
            .all(|&src| src == ShardSource::Full));
        // Every healthy-view block of shard 0 is still *found*, now on
        // rung 2 (plus possible bloom false positives, never negatives).
        let span0: Vec<BlockId> = (0..4).map(BlockId).collect();
        for b in healthy.blocks().filter(|b| span0.contains(b)) {
            assert_eq!(degraded.rung_of(b), Some(Rung::Bloom), "{b:?}");
        }
        // The whole span of shard 1 is unknown — a correct run must scan it.
        for b in 4..8u32 {
            assert_eq!(degraded.rung_of(BlockId(b)), Some(Rung::Fallback));
        }
        // Healthy shards keep exact sizes.
        assert!(degraded.view().exact().iter().all(|&(b, _)| b.index() >= 8));
        assert!(degraded.rung_counts().any_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_view_on_healthy_store_matches_strict_view() {
        let (_dfs, arr) = sample_array();
        let dir = tmpdir("healthy-degraded");
        MetaStore::save(&arr, &dir, 5).unwrap();
        let mut store = MetaStore::open(&dir, 2).unwrap();
        for s in 0..10u64 {
            let strict = store.view(SubDatasetId(s)).unwrap();
            let degraded = store.view_degraded(SubDatasetId(s));
            assert!(degraded.is_healthy());
            assert_eq!(degraded.view(), &strict);
            assert!(degraded.unknown_blocks().is_empty());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn block_summary_has_no_false_negatives_and_bounds_delta() {
        let (_dfs, arr) = sample_array();
        for map in arr.maps() {
            let sum = BlockSummary::of(map);
            assert_eq!(sum.block(), map.block());
            for s in 0..60u64 {
                let id = SubDatasetId(s);
                if map.query(id) != SizeInfo::Absent {
                    assert!(sum.contains(id), "summary lost {id} in {:?}", map.block());
                    // δ never exceeds any present sub-dataset's true size
                    // bound known to the map.
                    if let SizeInfo::Exact(sz) = map.query(id) {
                        assert!(sum.delta() <= sz);
                    }
                }
            }
        }
    }
}
