//! On-disk dataset files shared between CLI commands: the record stream
//! plus the DFS configuration, so every command rebuilds an identical DFS
//! deterministically.

use datanet_dfs::{Dfs, DfsConfig, Record};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// A generated dataset, self-contained and reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetFile {
    /// The generator that produced it (for provenance).
    pub generator: String,
    /// DFS layout parameters.
    pub config: DfsConfig,
    /// The record stream in write order.
    pub records: Vec<Record>,
}

impl DatasetFile {
    /// Serialise to a JSON file.
    ///
    /// # Errors
    /// I/O or serialisation failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, serde_json::to_vec(self)?)
    }

    /// Load from a JSON file.
    ///
    /// # Errors
    /// I/O or deserialisation failures.
    pub fn load(path: &Path) -> io::Result<Self> {
        Ok(serde_json::from_slice(&std::fs::read(path)?)?)
    }

    /// Rebuild the DFS (deterministic under the stored config).
    pub fn to_dfs(&self) -> Dfs {
        Dfs::write_random(self.config.clone(), self.records.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{SubDatasetId, Topology};

    fn sample() -> DatasetFile {
        DatasetFile {
            generator: "test".into(),
            config: DfsConfig {
                block_size: 1000,
                replication: 2,
                topology: Topology::single_rack(4),
                seed: 9,
            },
            records: (0..50)
                .map(|i| Record::new(SubDatasetId(i % 5), i, 100, i))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_and_deterministic_dfs() {
        let ds = sample();
        let path = std::env::temp_dir().join(format!("datanet-ds-{}.json", std::process::id()));
        ds.save(&path).unwrap();
        let loaded = DatasetFile::load(&path).unwrap();
        assert_eq!(ds, loaded);
        let a = ds.to_dfs();
        let b = loaded.to_dfs();
        assert_eq!(a.namenode(), b.namenode());
        assert_eq!(a.total_bytes(), b.total_bytes());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(DatasetFile::load(Path::new("/nonexistent/nowhere.json")).is_err());
    }
}
