//! CLI command implementations. Each command takes parsed [`Args`] and
//! writes human-readable output to the given writer (injected for testing).

use crate::args::{ArgError, Args};
use crate::dataset::DatasetFile;
use datanet::{
    Algorithm1, ElasticMapArray, FordFulkersonPlanner, IngestConfig, Ingestor, MetaStore,
    Separation, StoreError,
};
use datanet_analytics::profiles::{
    histogram_profile, moving_average_profile, top_k_profile, word_count_profile,
};
use datanet_analytics::{
    histogram_pipeline, join_word_count_pipeline, moving_average_pipeline, top_k_pipeline,
    word_count_pipeline, Pipeline, PipelineEnv, ShuffleParams,
};
use datanet_bench::Table;
use datanet_dfs::{DfsConfig, NodeId, SubDatasetId, Topology};
use datanet_mapreduce::{
    range_matrix_estimate, range_matrix_truth, run_analysis_shuffled, run_pipeline,
    run_pipeline_traced, AnalysisConfig, DataNetScheduler, JobProfile, LocalityScheduler,
    SelectionConfig, ShufflePlan, ShufflePlanner,
};
use datanet_obs::Recorder;
use datanet_workloads::{GithubConfig, MoviesConfig, WorldCupConfig};
use serde::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Top-level error: argument problems, I/O, or failed invariant checks.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage.
    Args(ArgError),
    /// Filesystem/serialisation problems.
    Io(std::io::Error),
    /// Metadata-store problems (corruption, version, exhausted replicas).
    Store(StoreError),
    /// `datanet check` found invariant violations (details already
    /// printed; this carries the one-line verdict for the exit path).
    Check(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "usage error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Store(e) => write!(f, "metadata error: {e}"),
            CliError::Check(e) => write!(f, "check failed: {e}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        CliError::Store(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
datanet — sub-dataset distribution-aware analysis (DataNet, IPDPS'16)

USAGE:
  datanet gen <movies|github|worldcup> --out FILE
              [--records N] [--nodes N] [--block-kb N] [--seed N]
  datanet scan --dataset FILE --meta DIR[,DIR...] [--alpha F] [--shard-blocks N]
              [--trace OUT.json]
  datanet ingest --dataset FILE --meta DIR[,DIR...] [--alpha F] [--shard-blocks N]
              [--compact-every N] [--commit-every N] [--resume] [--trace OUT.json]
  datanet query --dataset FILE --meta DIR[,DIR...] --subdataset ID [--epoch N]
              [--trace OUT.json]
  datanet plan --dataset FILE --meta DIR[,DIR...] --subdataset ID [--planner alg1|maxflow]
              [--trace OUT.json]
  datanet scrub --meta DIR[,DIR...]
  datanet simulate --dataset FILE --subdataset ID
              [--job movingaverage|wordcount|histogram|topk] [--alpha F]
              [--shuffle off|aware|hash] [--key-ranges N] [--split-factor F]
              [--trace OUT.json]
  datanet pipeline --dataset FILE --subdataset ID --ckpt DIR[,DIR...]
              [--job wordcount|movingaverage|histogram|topk|join] [--with ID]
              [--window-secs N] [--alpha F] [--resume] [--json OUT.json]
              [--shuffle off|aware|hash] [--key-ranges N] [--split-factor F]
              [--trace OUT.json]
  datanet serve [--dataset FILE] [--tenants N] [--queries N] [--qps N | --gap-us N]
              [--mix uniform|skewed|adversarial] [--workers N] [--queue-cap N]
              [--quantum-kb N] [--max-wait-rounds N] [--no-cache]
              [--planner alg1|maxflow] [--ingest-at N[,N...]] [--lose-node I@N]
              [--subdatasets N] [--records N] [--nodes N] [--block-kb N]
              [--seed N] [--json OUT.json] [--trace OUT.json]
  datanet trace TRACE.json
  datanet top SNAPSHOT.json [--flight FLIGHT.json]
  datanet check [--seeds N] [--seed-start N] [--corpus FILE] [--shrink]
              [--repro-dir DIR]
  datanet check --repro FILE
  datanet bench [--quick] [--json OUT.json] [--baseline FILE]
  datanet help

`--trace OUT.json` records the run on the observability plane and writes a
Chrome trace_event file, loadable at https://ui.perfetto.dev. `datanet
trace` prints a terminal summary of such a file.

Every command that takes `--trace` also takes the always-on metrics plane
flags: `--metrics OUT.json` freezes the windowed metrics registry into a
snapshot (`.jsonl` for the line-per-series export), `--openmetrics
OUT.txt` writes the Prometheus/OpenMetrics exposition of the same
snapshot, `--metrics-window-ms N` sets the aggregation window (default
1000), `--flight OUT.json` dumps the bounded flight recorder (last
`--flight-events` significant events, default 256), and `--query-id N`
[`--tenant NAME`] stamps a causal query id on every recorded event.
`datanet top SNAPSHOT.json` renders a terminal dashboard from a metrics
snapshot: per-node utilisation, per-query latency percentiles,
retry/failover pressure, and EWMA anomaly alerts (add `--flight` for the
degradation-rung mix and recent significant events).

`datanet check` runs the deterministic simulation harness: each seed
expands into a full scenario (workload, cluster, faults, metadata
corruption) checked against every invariant oracle. `--corpus FILE` adds
fixed seeds (one per line, `#` comments); `--shrink` minimises failures
and writes self-contained repro files into `--repro-dir` (default `.`);
`--repro FILE` replays such a file.

`datanet bench` runs the core hot-path benchmark (ElasticMap build,
batched queries, planner) on the paper's 256-block workload, comparing
against frozen pre-optimization reference implementations. `--json`
writes the machine-readable report; `--baseline FILE` gates the measured
speedups against a committed baseline and fails on regression.

`datanet pipeline` runs one of the analysis jobs as a checkpointed
multi-stage pipeline: every completed stage commits a checksummed,
epoch-stamped checkpoint into the `--ckpt` replica directories under the
crash-safe write order. After a crash, re-run with `--resume` to restore
the last durable stage and execute only the remainder (`--job join`
semi-joins `--subdataset` against `--with` before counting words).

`--shuffle aware` routes aggregate stages through the distribution-aware
reduce-side partitioner: the intermediate key space is hashed into
`--key-ranges` ranges, Equation 6 prices each range from the ElasticMap,
and reducers are placed heaviest-range-first on the nodes already holding
the bytes, splitting any range heavier than `--split-factor` fair shares
across reducers (merged back deterministically, so answers never change).
`--shuffle hash` selects the classic skew- and locality-blind
`hash(key) % reducers` baseline. Both print an aware-vs-hash comparison:
network bytes, locality fraction, reduce imbalance and makespan.
The `shuffle` bench binary (`cargo run --release -p datanet-bench --bin
shuffle`) gates the reduction ratio in CI.

`datanet serve` runs the multi-tenant serving plane over a seeded query
stream on the simulated clock: a bounded admission queue with typed
rejections and load shedding, per-tenant fair-share quotas (deficit round
robin over Equation 6 byte estimates, `--quantum-kb` per round), and a
planner-result cache keyed on `(sub-dataset, cluster epoch)` that
invalidates itself on ingest commits (`--ingest-at`) and node loss
(`--lose-node I@N` fails node I before query N). The canonical answers
section is independent of `--workers` by construction — only the printed
latency/throughput section moves. `--json` writes the full report.

`datanet ingest` streams the dataset's blocks through the incremental
ingestor instead of a batch scan: per-block summaries at write time,
compaction every `--compact-every` arrivals, a durable epoch committed
every `--commit-every` blocks. `--resume` reopens an existing store and
continues from its last durable epoch (policy and shard size come from
the manifest). `datanet query --epoch N` answers from the frozen
epoch-N snapshot instead of the live manifest.
";

/// Dispatch a command line (tokens exclude the program name).
///
/// # Errors
/// Usage or I/O failures; the caller prints them and exits non-zero.
pub fn dispatch(tokens: Vec<String>, out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(tokens)?;
    match args.positional(0) {
        Some("gen") => cmd_gen(&args, out),
        Some("scan") => cmd_scan(&args, out),
        Some("ingest") => cmd_ingest(&args, out),
        Some("query") => cmd_query(&args, out),
        Some("plan") => cmd_plan(&args, out),
        Some("scrub") => cmd_scrub(&args, out),
        Some("simulate") => cmd_simulate(&args, out),
        Some("pipeline") => cmd_pipeline(&args, out),
        Some("serve") => cmd_serve(&args, out),
        Some("trace") => cmd_trace(&args, out),
        Some("top") => cmd_top(&args, out),
        Some("check") => cmd_check(&args, out),
        Some("bench") => cmd_bench(&args, out),
        Some("help") | None => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Some(other) => {
            Err(ArgError(format!("unknown command `{other}`; try `datanet help`")).into())
        }
    }
}

fn dfs_config(args: &Args) -> Result<DfsConfig, CliError> {
    let nodes: u32 = args.get_or("nodes", 16)?;
    let block_kb: u64 = args.get_or("block-kb", 256)?;
    let seed: u64 = args.get_or("seed", 0xDA7A)?;
    Ok(DfsConfig {
        block_size: block_kb * 1024,
        replication: 3,
        topology: Topology::single_rack(nodes),
        seed,
    })
}

fn cmd_gen(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = args.require_positional(1, "generator")?;
    let records: usize = args.get_or("records", 100_000)?;
    let seed: u64 = args.get_or("seed", 0xDA7A)?;
    let records = match kind {
        "movies" => {
            MoviesConfig {
                records,
                seed,
                ..Default::default()
            }
            .generate()
            .0
        }
        "github" => GithubConfig {
            records,
            seed,
            ..Default::default()
        }
        .generate(),
        "worldcup" => WorldCupConfig {
            records,
            seed,
            ..Default::default()
        }
        .generate(),
        other => return Err(ArgError(format!("unknown generator `{other}`")).into()),
    };
    let ds = DatasetFile {
        generator: kind.to_string(),
        config: dfs_config(args)?,
        records,
    };
    let path = args.require("out")?;
    ds.save(Path::new(path))?;
    let dfs = ds.to_dfs();
    writeln!(
        out,
        "wrote {} records ({} blocks, {} nodes) to {path}",
        ds.records.len(),
        dfs.block_count(),
        ds.config.topology.len()
    )?;
    Ok(())
}

/// `--meta` accepts a comma-separated replica list; the first directory is
/// the primary, shards are replicated across all of them.
fn meta_dirs(args: &Args) -> Result<Vec<std::path::PathBuf>, CliError> {
    let dirs: Vec<std::path::PathBuf> = args
        .require("meta")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
        .collect();
    if dirs.is_empty() {
        return Err(ArgError("--meta needs at least one directory".into()).into());
    }
    Ok(dirs)
}

fn open_store(args: &Args, cache_shards: usize) -> Result<MetaStore, CliError> {
    let dirs = meta_dirs(args)?;
    let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
    Ok(MetaStore::open_replicated(&refs, cache_shards)?)
}

/// Where the observability planes requested on the command line should be
/// written when the command finishes.
struct ObsOutputs {
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    openmetrics: Option<PathBuf>,
    flight: Option<PathBuf>,
}

impl ObsOutputs {
    /// Drain every requested plane of `rec` to its output file.
    fn finish(&self, rec: &Recorder, out: &mut dyn Write) -> Result<(), CliError> {
        if let Some(path) = &self.trace {
            write_trace(rec, path, out)?;
        }
        if self.metrics.is_some() || self.openmetrics.is_some() {
            let snap = rec.metrics_snapshot().expect("metrics plane attached");
            if let Some(path) = &self.metrics {
                // `.jsonl` gets the line-per-series export; anything else
                // the snapshot document `datanet top` reads.
                let body = if path.extension().is_some_and(|e| e == "jsonl") {
                    datanet_obs::to_jsonl(&snap)
                } else {
                    serde_json::to_string_pretty(&snap)
                        .map_err(|e| ArgError(format!("cannot serialise snapshot: {e}")))?
                };
                std::fs::write(path, body)?;
                writeln!(
                    out,
                    "wrote metrics snapshot to {} ({} series) — inspect with `datanet top`",
                    path.display(),
                    snap.counters.len() + snap.hists.len() + snap.gauges.len()
                )?;
            }
            if let Some(path) = &self.openmetrics {
                std::fs::write(path, datanet_obs::to_openmetrics(&snap))?;
                writeln!(out, "wrote OpenMetrics exposition to {}", path.display())?;
            }
        }
        if let Some(path) = &self.flight {
            let dump = rec.flight_dump().expect("flight plane attached");
            let json = serde_json::to_string_pretty(&dump)
                .map_err(|e| ArgError(format!("cannot serialise flight dump: {e}")))?;
            std::fs::write(path, json)?;
            writeln!(
                out,
                "wrote flight dump to {} ({} of {} event(s) kept)",
                path.display(),
                dump.events.len(),
                dump.recorded
            )?;
        }
        Ok(())
    }
}

/// Default flight-ring capacity for `--flight` without `--flight-events`.
const FLIGHT_CAPACITY: usize = 256;

/// Assemble the observability recorder from the shared flags:
/// `--trace OUT.json` (unbounded Chrome trace), `--metrics OUT.json[l]`
/// plus `--openmetrics OUT.txt` (windowed aggregates,
/// `--metrics-window-ms` wide), `--flight OUT.json` (last
/// `--flight-events` significant events), and `--query-id N` /
/// `--tenant NAME` (stamp a causal query scope on every event recorded).
/// With none of them every instrumented call degrades to its no-op twin.
fn recorder(args: &Args) -> Result<(Recorder, ObsOutputs), CliError> {
    let outputs = ObsOutputs {
        trace: args.get("trace").map(PathBuf::from),
        metrics: args.get("metrics").map(PathBuf::from),
        openmetrics: args.get("openmetrics").map(PathBuf::from),
        flight: args.get("flight").map(PathBuf::from),
    };
    let mut rec = if outputs.trace.is_some() {
        Recorder::new()
    } else {
        Recorder::off()
    };
    if outputs.metrics.is_some() || outputs.openmetrics.is_some() {
        let window_ms: u64 = args.get_or("metrics-window-ms", 1_000)?;
        if window_ms == 0 {
            return Err(ArgError("--metrics-window-ms must be positive".into()).into());
        }
        rec = rec.with_metrics(window_ms * 1_000);
    }
    if outputs.flight.is_some() {
        let cap: usize = args.get_or("flight-events", FLIGHT_CAPACITY)?;
        if cap == 0 {
            return Err(ArgError("--flight-events must be positive".into()).into());
        }
        rec = rec.with_flight(cap);
    }
    if let Some(q) = args.get("query-id") {
        let id: u64 = q
            .parse()
            .map_err(|e| ArgError(format!("--query-id: {e}")))?;
        let mut ctx = datanet_obs::QueryCtx::new(id);
        if let Some(t) = args.get("tenant") {
            ctx = ctx.tenant(t);
        }
        rec = rec.scoped(ctx);
    } else if let Some(t) = args.get("tenant") {
        return Err(ArgError(format!("--tenant {t} needs --query-id")).into());
    }
    Ok((rec, outputs))
}

/// Drain the recorder into a Chrome `trace_event` file and tell the user
/// where it went.
fn write_trace(rec: &Recorder, path: &Path, out: &mut dyn Write) -> Result<(), CliError> {
    let data = rec.take();
    std::fs::write(path, data.to_chrome_json())?;
    writeln!(
        out,
        "wrote Chrome trace to {} ({} spans, {} instants, {} unclosed) \
         — open it at https://ui.perfetto.dev",
        path.display(),
        data.spans.len(),
        data.instants.len(),
        data.unclosed_spans()
    )?;
    Ok(())
}

fn cmd_scan(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let alpha: f64 = args.get_or("alpha", 0.3)?;
    let shard_blocks: usize = args.get_or("shard-blocks", 64)?;
    let dfs = ds.to_dfs();
    let (rec, obs) = recorder(args)?;
    let arr = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(alpha), &rec);
    let dirs = meta_dirs(args)?;
    let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
    MetaStore::save_replicated(&arr, &refs, shard_blocks)?;
    let store = MetaStore::open_replicated(&refs, 1)?;
    writeln!(
        out,
        "scanned {} blocks at alpha={alpha}: {} bytes of meta-data on disk \
         ({}x smaller than the raw data), {} replica(s), accuracy chi = {:.1}%",
        arr.len(),
        store.disk_bytes()?,
        dfs.total_bytes() / store.disk_bytes()?.max(1),
        dirs.len(),
        arr.accuracy(&dfs) * 100.0
    )?;
    obs.finish(&rec, out)?;
    Ok(())
}

fn cmd_scrub(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut store = open_store(args, 1)?;
    let report = store.scrub();
    writeln!(
        out,
        "scrubbed {} shards: {} shard copies repaired, {} summaries repaired, \
         {} manifests repaired, {} quarantined",
        report.scrubbed,
        report.repaired,
        report.summaries_repaired,
        report.manifests_repaired,
        report.quarantined.len()
    )?;
    for shard in &report.quarantined {
        writeln!(
            out,
            "  shard {shard}: no healthy copy on any replica — quarantined \
             (blocks degrade to {})",
            if report.summaries_lost.contains(shard) {
                "rung 3, summary also lost"
            } else {
                "rung 2 via the bloom summary"
            }
        )?;
    }
    Ok(())
}

/// `datanet ingest` — stream the dataset's blocks through the incremental
/// [`Ingestor`] instead of a batch scan, committing durable epoch-stamped
/// snapshots along the way.
fn cmd_ingest(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let alpha: f64 = args.get_or("alpha", 0.3)?;
    let shard_blocks: usize = args.get_or("shard-blocks", 64)?;
    let compact_every: usize = args.get_or("compact-every", 64)?;
    let commit_every: usize = args.get_or("commit-every", compact_every.max(1))?;
    if compact_every == 0 || commit_every == 0 {
        return Err(ArgError("--compact-every/--commit-every must be positive".into()).into());
    }
    let dirs = meta_dirs(args)?;
    let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
    let cfg = IngestConfig {
        policy: Separation::Alpha(alpha),
        compact_every,
        shard_blocks,
    };
    let (rec, obs) = recorder(args)?;
    let dfs = ds.to_dfs();
    let mut ing = if args.flag("resume") {
        Ingestor::resume(cfg, &refs)?
    } else {
        Ingestor::new(cfg)
    };
    ing.set_recorder(rec.clone());
    let start = ing.blocks();
    for (k, b) in dfs.blocks().iter().enumerate().skip(start) {
        ing.append(b, k as u64 * 1_000);
        if (k + 1) % commit_every == 0 {
            ing.commit(&refs)?;
        }
    }
    let epoch = ing.commit(&refs)?;
    let st = ing.stats();
    writeln!(
        out,
        "ingested {} blocks ({} records, {} bytes) into {} replica(s){}",
        st.appended_blocks,
        st.appended_records,
        st.appended_bytes,
        dirs.len(),
        if st.resumed_blocks > 0 {
            format!(" after resuming {} durable blocks", st.resumed_blocks)
        } else {
            String::new()
        }
    )?;
    writeln!(
        out,
        "  {} compaction(s), {} re-dominance demotion(s), {} epoch(s) committed \
         — durable epoch {epoch}; time-travel with `datanet query --epoch E`",
        st.compactions, st.redominated, st.epochs_committed
    )?;
    obs.finish(&rec, out)?;
    Ok(())
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let mut store = match args.get("epoch") {
        None => open_store(args, 4)?,
        Some(e) => {
            let epoch: u64 = e.parse().map_err(|e| ArgError(format!("--epoch: {e}")))?;
            let dirs = meta_dirs(args)?;
            let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
            MetaStore::open_replicated_at_epoch(&refs, epoch, 4)?
        }
    };
    let (rec, obs) = recorder(args)?;
    store.set_recorder(rec.clone());
    let id: u64 = args
        .require("subdataset")?
        .parse()
        .map_err(|e| ArgError(format!("--subdataset: {e}")))?;
    let s = SubDatasetId(id);
    let view = store.view(s)?;
    let dfs = ds.to_dfs();
    let label = match args.get("epoch") {
        Some(e) => format!("sub-dataset {s} @ epoch {e}"),
        None => format!("sub-dataset {s}"),
    };
    writeln!(
        out,
        "{label}: {} blocks ({} exact + {} bloom), estimated {} bytes, \
         actual {} bytes, delta = {}",
        view.block_count(),
        view.exact().len(),
        view.bloom().len(),
        view.estimated_total(),
        dfs.subdataset_total(s),
        view.delta()
    )?;
    obs.finish(&rec, out)?;
    Ok(())
}

fn cmd_plan(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let mut store = open_store(args, 4)?;
    let (rec, obs) = recorder(args)?;
    store.set_recorder(rec.clone());
    let id: u64 = args
        .require("subdataset")?
        .parse()
        .map_err(|e| ArgError(format!("--subdataset: {e}")))?;
    let view = store.view(SubDatasetId(id))?;
    let dfs = ds.to_dfs();
    let planner = args.get("planner").unwrap_or("alg1");
    let plan = match planner {
        "alg1" => Algorithm1::new(&dfs, &view).plan_balanced(),
        "maxflow" => FordFulkersonPlanner::new(&dfs, &view).plan(),
        other => return Err(ArgError(format!("unknown planner `{other}`")).into()),
    };
    writeln!(
        out,
        "{planner} plan: {} tasks over {} nodes, imbalance {:.3}, locality {:.0}%",
        plan.assigned_blocks(),
        plan.node_count(),
        plan.imbalance(),
        plan.locality_fraction() * 100.0
    )?;
    for n in 0..plan.node_count() {
        writeln!(
            out,
            "  node {n}: {} blocks, {} bytes",
            plan.tasks_of(datanet_dfs::NodeId(n as u32)).len(),
            plan.workloads()[n]
        )?;
    }
    obs.finish(&rec, out)?;
    Ok(())
}

fn job_by_name(name: &str) -> Result<JobProfile, CliError> {
    Ok(match name {
        "movingaverage" => moving_average_profile(),
        "wordcount" => word_count_profile(),
        "histogram" => histogram_profile(),
        "topk" => top_k_profile(),
        other => return Err(ArgError(format!("unknown job `{other}`")).into()),
    })
}

/// The distribution-aware shuffle flags `simulate` and `pipeline` share:
/// `--shuffle off|aware|hash` picks the reduce-side partitioner (`off`,
/// the default, keeps the legacy unrouted reduce), `--key-ranges N` sets
/// the intermediate key-space granularity and `--split-factor F` the
/// heavy-key split threshold in fair shares.
fn shuffle_args(args: &Args) -> Result<Option<ShuffleParams>, CliError> {
    let key_ranges: usize = args.get_or("key-ranges", 32)?;
    let split_factor: f64 = args.get_or("split-factor", 1.25)?;
    if key_ranges < 2 {
        return Err(ArgError("--key-ranges must be at least 2".into()).into());
    }
    if !split_factor.is_finite() || split_factor < 1.0 {
        return Err(ArgError("--split-factor must be a finite value >= 1".into()).into());
    }
    let aware = match args.get("shuffle").unwrap_or("off") {
        "off" => return Ok(None),
        "aware" => true,
        "hash" => false,
        other => {
            return Err(ArgError(format!(
                "--shuffle must be off, aware or hash, got `{other}`"
            ))
            .into())
        }
    };
    Ok(Some(ShuffleParams {
        key_ranges,
        split_factor,
        aware,
    }))
}

/// The aware-vs-hash shuffle comparison both commands print when a
/// partitioner is selected: the aware plan is built from the ElasticMap
/// *estimate* (what the planner would see in production), then both plans
/// replay against the *true* per-(node, key-range) byte matrix.
fn print_shuffle_comparison(
    out: &mut dyn Write,
    dfs: &datanet_dfs::Dfs,
    view: &datanet::SubDatasetView,
    s: SubDatasetId,
    job: &JobProfile,
    p: &ShuffleParams,
    ana: &AnalysisConfig,
) -> Result<(), CliError> {
    let est = range_matrix_estimate(dfs, view, p.key_ranges);
    let truth = range_matrix_truth(dfs, s, p.key_ranges);
    let m = truth.len();
    let aware = ShufflePlanner::new(p.split_factor).plan(&est);
    let hash = ShufflePlan::hash(p.key_ranges, (0..m as u32).map(NodeId).collect());
    let splits = aware
        .assignments
        .iter()
        .filter(|frags| frags.len() > 1)
        .count();
    let a = run_analysis_shuffled(&truth, job, ana, &aware);
    let h = run_analysis_shuffled(&truth, job, ana, &hash);
    writeln!(
        out,
        "  shuffle [{}]: {} key range(s), split factor {:.2}, {} range(s) split",
        if p.aware { "aware" } else { "hash" },
        p.key_ranges,
        p.split_factor,
        splits
    )?;
    for (name, o) in [("hash ", &h), ("aware", &a)] {
        writeln!(
            out,
            "    {name}: {} byte(s) over the network (locality {:.0}%), \
             reduce imbalance {:.2}, makespan {:.3}s",
            o.network_bytes,
            100.0 * o.locality_fraction(),
            o.reduce_imbalance(),
            o.report.makespan_secs
        )?;
    }
    if a.network_bytes > 0 {
        writeln!(
            out,
            "    network bytes cut {:.2}x vs hash partitioning",
            h.network_bytes as f64 / a.network_bytes as f64
        )?;
    } else {
        writeln!(
            out,
            "    aware plan kept the entire shuffle node-local \
             (hash moved {} byte(s))",
            h.network_bytes
        )?;
    }
    Ok(())
}

fn cmd_simulate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let id: u64 = args
        .require("subdataset")?
        .parse()
        .map_err(|e| ArgError(format!("--subdataset: {e}")))?;
    let s = SubDatasetId(id);
    let job = job_by_name(args.get("job").unwrap_or("wordcount"))?;
    let alpha: f64 = args.get_or("alpha", 0.3)?;
    let dfs = ds.to_dfs();
    let sel = SelectionConfig::default();
    let ana = AnalysisConfig::default();

    // Only the DataNet side of the comparison is traced: it is the run the
    // user wants a timeline of, and the baseline stays untouched.
    let (rec, obs) = recorder(args)?;
    let mut base = LocalityScheduler::new(&dfs);
    let without = run_pipeline(&dfs, s, &mut base, &job, &sel, &ana);
    let view = ElasticMapArray::build_traced(&dfs, &Separation::Alpha(alpha), &rec).view(s);
    let mut dn = DataNetScheduler::new(&dfs, &view);
    let mut with = run_pipeline_traced(&dfs, s, &mut dn, &job, &sel, &ana, &rec);
    if rec.is_enabled() {
        with.obs = Some(rec.snapshot().summary(None));
    }

    writeln!(out, "{} over sub-dataset {s}:", job.name)?;
    writeln!(
        out,
        "  without DataNet: selection {:.3}s + job {:.3}s = {:.3}s (imbalance {:.2})",
        without.selection.end.as_secs_f64(),
        without.job.makespan_secs,
        without.total_secs(),
        without.selection.imbalance()
    )?;
    writeln!(
        out,
        "  with DataNet   : selection {:.3}s + job {:.3}s = {:.3}s (imbalance {:.2})",
        with.selection.end.as_secs_f64(),
        with.job.makespan_secs,
        with.total_secs(),
        with.selection.imbalance()
    )?;
    writeln!(
        out,
        "  improvement: {:.1}%",
        100.0 * (1.0 - with.total_secs() / without.total_secs())
    )?;
    if let Some(p) = shuffle_args(args)? {
        print_shuffle_comparison(out, &dfs, &view, s, &job, &p, &ana)?;
    }
    if let Some(obs) = &with.obs {
        writeln!(
            out,
            "  traced: {} spans over {:.3}s, {} straggler(s), {} idler(s)",
            obs.spans,
            obs.sim_end_us as f64 / 1e6,
            obs.stragglers.len(),
            obs.idlers.len()
        )?;
    }
    obs.finish(&rec, out)?;
    Ok(())
}

/// `--ckpt` replica list for pipeline checkpoints (same comma syntax as
/// `--meta`).
fn ckpt_dirs(args: &Args) -> Result<Vec<PathBuf>, CliError> {
    let dirs: Vec<PathBuf> = args
        .require("ckpt")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .collect();
    if dirs.is_empty() {
        return Err(ArgError("--ckpt needs at least one directory".into()).into());
    }
    Ok(dirs)
}

/// `datanet pipeline` — run an analysis job as a checkpointed multi-stage
/// pipeline: each completed stage commits a durable, checksummed
/// checkpoint into the `--ckpt` replicas under the crash-safe write order;
/// `--resume` restores the newest durable stage and executes only the
/// remainder.
fn cmd_pipeline(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = DatasetFile::load(Path::new(args.require("dataset")?))?;
    let id: u64 = args
        .require("subdataset")?
        .parse()
        .map_err(|e| ArgError(format!("--subdataset: {e}")))?;
    let s = SubDatasetId(id);
    let alpha: f64 = args.get_or("alpha", 0.3)?;
    let spec = match args.get("job").unwrap_or("wordcount") {
        "wordcount" => word_count_pipeline(s),
        "movingaverage" => moving_average_pipeline(s, args.get_or("window-secs", 86_400)?),
        "histogram" => histogram_pipeline(s),
        "topk" => top_k_pipeline(s),
        "join" => {
            let with: u64 = args
                .require("with")?
                .parse()
                .map_err(|e| ArgError(format!("--with: {e}")))?;
            join_word_count_pipeline(s, SubDatasetId(with))
        }
        other => return Err(ArgError(format!("unknown job `{other}`")).into()),
    };
    let dirs = ckpt_dirs(args)?;
    let refs: Vec<&Path> = dirs.iter().map(|d| d.as_path()).collect();
    let dfs = ds.to_dfs();
    let arr = ElasticMapArray::build(&dfs, &Separation::Alpha(alpha));
    let mut env = PipelineEnv::new(&dfs, &arr);
    env.shuffle = shuffle_args(args)?;
    let (rec, obs) = recorder(args)?;
    let pipe = Pipeline::new(spec);
    let report = if args.flag("resume") {
        pipe.resume(&mut env, &refs, &rec)?
    } else {
        pipe.run(&mut env, &refs, &rec)?
    };
    match report.resumed_from {
        Some(k) => writeln!(
            out,
            "pipeline {}: resumed after durable stage {k}, {} of {} stage(s) re-executed",
            report.pipeline,
            report.stages.len(),
            pipe.len()
        )?,
        None => writeln!(
            out,
            "pipeline {}: {} stage(s) executed from scratch",
            report.pipeline,
            report.stages.len()
        )?,
    }
    for st in &report.stages {
        writeln!(
            out,
            "  stage {} {}: {} -> {} record(s), {} aggregate(s), {:.3}s sim, \
             checkpoint crc {:#010x}",
            st.index,
            st.label,
            st.records_in,
            st.records_out,
            st.aggregates_out,
            st.sim_secs,
            st.checkpoint_crc
        )?;
    }
    writeln!(
        out,
        "output: {} record(s), {} aggregate(s), digest {:#010x} — checkpoints \
         in {} replica(s)",
        report.output.records,
        report.output.aggregates.len(),
        report.output.digest,
        dirs.len()
    )?;
    if let Some(p) = &env.shuffle {
        // The join pipeline's aggregate stage is a word count, so the
        // comparison prices every job the pipeline can run.
        let profile = match args.get("job").unwrap_or("wordcount") {
            "join" => word_count_profile(),
            name => job_by_name(name)?,
        };
        let view = arr.view(s);
        print_shuffle_comparison(out, &dfs, &view, s, &profile, p, &env.analysis)?;
    }
    if let Some(path) = args.get("json") {
        let bytes = serde_json::to_vec_pretty(&report)
            .map_err(|e| ArgError(format!("cannot serialise report: {e}")))?;
        std::fs::write(path, bytes)?;
        writeln!(out, "wrote JSON report to {path}")?;
    }
    obs.finish(&rec, out)?;
    Ok(())
}

/// `datanet check` — the deterministic simulation-check harness from the
/// command line: expand seeds into scenarios, run the full pipeline per
/// scenario, check every invariant oracle, optionally shrink failures to
/// minimal repro files.
fn cmd_check(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use datanet_check::{check_scenario_instrumented, shrink, CheckOptions, Repro, Scenario};

    // Replay mode: a repro file is the whole input.
    if let Some(path) = args.get("repro") {
        let repro = Repro::load(Path::new(path))?;
        let outcome = repro.replay();
        if outcome.passed() {
            writeln!(
                out,
                "repro {path} (originally seed {}) now passes all {} recorded oracle(s)",
                repro.original_seed,
                repro.violations.len()
            )?;
            return Ok(());
        }
        writeln!(
            out,
            "repro {path} (originally seed {}) still fails, {} blocks / {} nodes:",
            repro.original_seed, outcome.blocks, outcome.nodes
        )?;
        for v in &outcome.violations {
            writeln!(out, "  {v}")?;
        }
        if let Some(dump) = repro.flight_dump() {
            writeln!(
                out,
                "embedded flight recording: {} event(s) from the shrunk failing run \
                 (last: {})",
                dump.events.len(),
                dump.events
                    .last()
                    .map(|e| format!("{} — {}", e.kind.as_str(), e.detail))
                    .unwrap_or_else(|| "none".into())
            )?;
        }
        let mut oracles: Vec<String> = outcome.oracle_names().into_iter().collect();
        oracles.sort();
        writeln!(out, "violated oracle set: {}", oracles.join(", "))?;
        return Err(CliError::Check(format!(
            "{} violation(s) replaying {path}",
            outcome.violations.len()
        )));
    }

    // Seed set: fixed corpus lines plus a fresh batch.
    let mut seeds: Vec<u64> = Vec::new();
    if let Some(corpus) = args.get("corpus") {
        for line in std::fs::read_to_string(corpus)?.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            seeds.push(
                line.parse()
                    .map_err(|e| ArgError(format!("{corpus}: bad seed `{line}`: {e}")))?,
            );
        }
    }
    let fresh: u64 = args.get_or("seeds", if seeds.is_empty() { 50 } else { 0 })?;
    let start: u64 = args.get_or("seed-start", 0)?;
    seeds.extend(start..start.saturating_add(fresh));
    if seeds.is_empty() {
        return Err(
            ArgError("nothing to check: give --seeds N and/or --corpus FILE".into()).into(),
        );
    }

    let do_shrink = args.flag("shrink");
    let repro_dir = PathBuf::from(args.get("repro-dir").unwrap_or("."));
    // `--metrics`/`--openmetrics`/`--flight` meter the whole seed sweep;
    // the snapshot/dump covers every scenario checked.
    let (rec, obs) = recorder(args)?;
    let mut failed = 0usize;
    for &seed in &seeds {
        let outcome =
            check_scenario_instrumented(&Scenario::from_seed(seed), &CheckOptions::default(), &rec);
        if outcome.passed() {
            continue;
        }
        failed += 1;
        writeln!(
            out,
            "seed {seed} VIOLATED {} oracle(s) ({} blocks / {} nodes):",
            outcome.violations.len(),
            outcome.blocks,
            outcome.nodes
        )?;
        for v in &outcome.violations {
            writeln!(out, "  {v}")?;
        }
        if do_shrink {
            let sc = Scenario::from_seed(seed);
            if let Some(min) = shrink(&sc, &CheckOptions::default()) {
                std::fs::create_dir_all(&repro_dir)?;
                let path = repro_dir.join(format!("repro-seed-{seed}.json"));
                // One instrumented re-run of the *shrunk* scenario, so
                // the repro carries the flight recording of the minimal
                // failing world (not the original large one).
                let frec = Recorder::off().with_flight(FLIGHT_CAPACITY);
                check_scenario_instrumented(&min.scenario, &CheckOptions::default(), &frec);
                let flight = frec
                    .flight_dump()
                    .map(|d| d.to_value())
                    .unwrap_or(Value::Null);
                Repro {
                    original_seed: seed,
                    scenario: min.scenario,
                    options: CheckOptions::default(),
                    violations: min.outcome.violations.clone(),
                    flight,
                }
                .save(&path)?;
                writeln!(
                    out,
                    "  shrunk to {} blocks / {} nodes → {}",
                    min.outcome.blocks,
                    min.outcome.nodes,
                    path.display()
                )?;
            }
        }
    }
    // Write the observability outputs before deciding the exit path: a
    // failing sweep is exactly when the flight dump matters most.
    obs.finish(&rec, out)?;
    if failed > 0 {
        return Err(CliError::Check(format!(
            "{failed} of {} seed(s) violated invariants",
            seeds.len()
        )));
    }
    writeln!(
        out,
        "checked {} seed(s): every invariant oracle held",
        seeds.len()
    )?;
    Ok(())
}

/// `datanet bench` — the core hot-path benchmark with optional JSON
/// report and baseline gating. Flags are validated (and the baseline
/// parsed) *before* the measurement loop so a typo or a bad baseline
/// path fails in milliseconds, not after a full bench run.
fn cmd_bench(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use datanet_bench::{run_core_bench, CoreBenchReport};

    args.reject_unknown(&["quick", "json", "baseline"])?;
    let baseline = match args.get("baseline") {
        None => None,
        Some(path) => {
            let raw = std::fs::read_to_string(path)?;
            let report: CoreBenchReport = serde_json::from_str(&raw)
                .map_err(|e| ArgError(format!("{path}: not a bench report: {e}")))?;
            Some((path.to_string(), report))
        }
    };

    let report = run_core_bench(args.flag("quick"));
    write!(out, "{}", report.render())?;
    if let Some(path) = args.get("json") {
        let bytes = serde_json::to_vec_pretty(&report)
            .map_err(|e| ArgError(format!("cannot serialise report: {e}")))?;
        std::fs::write(path, bytes)?;
        writeln!(out, "wrote JSON report to {path}")?;
    }
    if let Some((path, base)) = baseline {
        let violations = report.gate_against(&base);
        if violations.is_empty() {
            writeln!(out, "perf gate: PASS against {path}")?;
        } else {
            for v in &violations {
                writeln!(out, "perf gate: {v}")?;
            }
            return Err(CliError::Check(format!(
                "{} perf-gate violation(s) against {path}",
                violations.len()
            )));
        }
    }
    Ok(())
}

fn val_u64(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::U64(n)) => *n,
        Some(Value::I64(n)) if *n >= 0 => *n as u64,
        Some(Value::F64(f)) if *f >= 0.0 => *f as u64,
        _ => 0,
    }
}

fn val_str(v: Option<&Value>) -> Option<&str> {
    match v {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

/// `datanet trace TRACE.json` — terminal summary of a Chrome trace written
/// by `--trace`: span counts and time per category, the busiest nodes on
/// the simulated clock, counter totals, and the unclosed-span count the CI
/// smoke job gates on.
/// `datanet serve` — run the multi-tenant serving plane over a seeded
/// query stream: bounded admission, deficit-round-robin fair-share
/// quotas, the epoch-keyed plan cache, and a seeded worker pool on the
/// simulated clock. The printed answers section is a pure function of
/// the stream and the scripted events; only the timing line moves with
/// `--workers`.
fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use datanet_serve::{
        generate_stream, serve, Disposition, ScriptedEvent, ServeConfig, ServeEvent, StreamConfig,
        TenantMix, World,
    };

    let seed: u64 = args.get_or("seed", 0xDA7A)?;
    let subdatasets: u64 = args.get_or("subdatasets", 8)?;
    if subdatasets == 0 {
        return Err(ArgError("--subdatasets must be positive".into()).into());
    }
    let alpha: f64 = args.get_or("alpha", 0.3)?;
    let dfs = match args.get("dataset") {
        Some(p) => DatasetFile::load(Path::new(p))?.to_dfs(),
        None => {
            // Synthetic world from the same knobs `datanet gen` takes, so
            // `datanet serve` works standalone.
            let records: u64 = args.get_or("records", 2_000)?;
            let nodes: u32 = args.get_or("nodes", 8)?;
            let block_kb: u64 = args.get_or("block-kb", 4)?;
            datanet_dfs::Dfs::write_random(
                DfsConfig {
                    block_size: block_kb * 1024,
                    replication: 2,
                    topology: Topology::single_rack(nodes),
                    seed,
                },
                (0..records).map(|i| {
                    datanet_dfs::Record::new(SubDatasetId(i % subdatasets), i, 260, seed ^ i)
                }),
            )
        }
    };
    let world = World::new(dfs, subdatasets, Separation::Alpha(alpha), seed);

    let tenants: u32 = args.get_or("tenants", 4)?;
    let queries: u32 = args.get_or("queries", 64)?;
    if tenants == 0 || queries == 0 {
        return Err(ArgError("--tenants and --queries must be positive".into()).into());
    }
    // Arrival cadence: `--gap-us` wins; otherwise derived from `--qps`.
    let gap_us: u64 = if args.get("gap-us").is_some() {
        args.get_or("gap-us", 0)?
    } else {
        let qps: u64 = args.get_or("qps", 500)?;
        if qps == 0 {
            return Err(ArgError("--qps must be positive".into()).into());
        }
        (1_000_000 / qps).max(1)
    };
    if gap_us == 0 {
        return Err(ArgError("--gap-us must be positive".into()).into());
    }
    let mix_s = args.get("mix").unwrap_or("skewed");
    let mix = TenantMix::parse(mix_s).ok_or_else(|| {
        ArgError(format!(
            "unknown mix `{mix_s}` (want uniform, skewed or adversarial)"
        ))
    })?;
    let stream = generate_stream(&StreamConfig {
        tenants,
        queries,
        gap_us,
        subdatasets,
        mix,
        seed,
    });

    let maxflow = match args.get("planner").unwrap_or("alg1") {
        "alg1" => false,
        "maxflow" => true,
        other => return Err(ArgError(format!("unknown planner `{other}`")).into()),
    };
    let quantum_kb: u64 = args.get_or("quantum-kb", 64)?;
    if quantum_kb == 0 {
        return Err(ArgError("--quantum-kb must be positive".into()).into());
    }
    let cfg = ServeConfig {
        workers: args.get_or("workers", 4)?,
        queue_cap: args.get_or("queue-cap", 32)?,
        quantum_bytes: quantum_kb * 1024,
        round_us: args.get_or("round-us", 2_000)?,
        max_wait_rounds: args.get_or("max-wait-rounds", 16)?,
        cache: !args.flag("no-cache"),
        maxflow,
        schedule_seed: args.get_or("schedule-seed", 0)?,
    };
    if cfg.workers == 0 || cfg.round_us == 0 {
        return Err(ArgError("--workers and --round-us must be positive".into()).into());
    }

    // Scripted world mutations, anchored to stream positions.
    let mut events: Vec<ScriptedEvent> = Vec::new();
    if let Some(list) = args.get("ingest-at") {
        let blocks: u32 = args.get_or("ingest-blocks", 2)?;
        for part in list.split(',').filter(|s| !s.is_empty()) {
            let at: u32 = part
                .parse()
                .map_err(|e| ArgError(format!("--ingest-at: {e}")))?;
            events.push(ScriptedEvent {
                at_query: at,
                event: ServeEvent::IngestCommit {
                    blocks: blocks.max(1),
                },
            });
        }
    }
    if let Some(spec) = args.get("lose-node") {
        let (node, at) = spec
            .split_once('@')
            .ok_or_else(|| ArgError(format!("--lose-node wants NODE@QUERY, got `{spec}`")))?;
        events.push(ScriptedEvent {
            at_query: at
                .parse()
                .map_err(|e| ArgError(format!("--lose-node position: {e}")))?,
            event: ServeEvent::NodeLoss {
                node: node
                    .parse()
                    .map_err(|e| ArgError(format!("--lose-node index: {e}")))?,
            },
        });
    }
    events.sort_by_key(|e| e.at_query);

    let (rec, obs) = recorder(args)?;
    let report = serve(world, &stream, &events, &cfg, &rec);

    let a = &report.answers;
    let completed = a
        .outcomes
        .iter()
        .filter(|o| matches!(o.disposition, Disposition::Completed { .. }))
        .count();
    let rejected: u32 = a.tenants.iter().map(|t| t.rejected).sum();
    let shed: u32 = a.tenants.iter().map(|t| t.shed).sum();
    writeln!(
        out,
        "served {} query(ies) from {} tenant(s), {} mix, {} event(s): \
         {completed} completed, {rejected} rejected, {shed} shed",
        stream.len(),
        tenants,
        mix.as_str(),
        events.len()
    )?;
    writeln!(
        out,
        "plan cache: {} hit(s), {} miss(es){}",
        a.cache_hits,
        a.cache_misses,
        if cfg.cache { "" } else { " (cache off)" }
    )?;
    let kib = |b: u64| format!("{:.1}", b as f64 / 1024.0);
    let mut t = Table::new([
        "tenant",
        "admitted",
        "rejected",
        "shed",
        "granted KiB",
        "served KiB",
        "forfeited KiB",
    ]);
    for ts in &a.tenants {
        t.row([
            format!("t{}", ts.tenant),
            ts.admitted.to_string(),
            ts.rejected.to_string(),
            ts.shed.to_string(),
            kib(ts.granted_bytes),
            kib(ts.served_bytes),
            kib(ts.forfeited_bytes),
        ]);
    }
    write!(out, "{}", t.render())?;
    let ti = &report.timing;
    writeln!(
        out,
        "timing ({} worker(s)): makespan {:.3}s, latency p50 {:.3}ms / p99 {:.3}ms, \
         {:.1} queries/s",
        ti.workers,
        ti.makespan_us as f64 / 1e6,
        ti.p50_latency_us as f64 / 1e3,
        ti.p99_latency_us as f64 / 1e3,
        ti.throughput_qps
    )?;
    if let Some(path) = args.get("json") {
        let bytes = serde_json::to_vec_pretty(&report)
            .map_err(|e| ArgError(format!("cannot serialise report: {e}")))?;
        std::fs::write(path, bytes)?;
        writeln!(out, "wrote JSON report to {path}")?;
    }
    obs.finish(&rec, out)?;
    Ok(())
}

fn cmd_trace(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.require_positional(1, "TRACE.json")?;
    let bytes = std::fs::read(path)?;
    let doc = serde_json::parse_value(&bytes)
        .map_err(|e| ArgError(format!("{path}: not a Chrome trace: {e}")))?;
    let events = match doc.get("traceEvents") {
        Some(Value::Array(events)) => events,
        _ => return Err(ArgError(format!("{path}: missing traceEvents array")).into()),
    };

    // Per-category and per-sim-node rollups over the complete ("X") spans.
    let mut cats: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
    let mut nodes: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
    let mut instants = 0u64;
    for e in events {
        match val_str(e.get("ph")) {
            Some("X") => {
                let cat = val_str(e.get("cat")).unwrap_or("?").to_string();
                let dur = val_u64(e.get("dur"));
                let c = cats.entry(cat).or_insert((0, 0));
                c.0 += 1;
                c.1 += dur;
                let tid = val_u64(e.get("tid"));
                if val_u64(e.get("pid")) == 0 && tid > 0 {
                    let n = nodes.entry(tid - 1).or_insert((0, 0));
                    n.0 += 1;
                    n.1 += dur;
                }
            }
            Some("i") => instants += 1,
            _ => {}
        }
    }

    let mut t = Table::new(["category", "spans", "total ms"]);
    for (cat, (count, dur)) in &cats {
        t.row([
            cat.clone(),
            count.to_string(),
            format!("{:.3}", *dur as f64 / 1e3),
        ]);
    }
    write!(out, "{}", t.render())?;

    if !nodes.is_empty() {
        writeln!(out)?;
        let mut t = Table::new(["node", "spans", "busy ms"]);
        for (node, (count, dur)) in &nodes {
            t.row([
                format!("node {node}"),
                count.to_string(),
                format!("{:.3}", *dur as f64 / 1e3),
            ]);
        }
        write!(out, "{}", t.render())?;
    }

    if let Some(Value::Object(counters)) = doc.get("otherData").and_then(|o| o.get("counters")) {
        if !counters.is_empty() {
            writeln!(out)?;
            let mut t = Table::new(["counter", "total"]);
            for (name, v) in counters {
                t.row([name.clone(), val_u64(Some(v)).to_string()]);
            }
            write!(out, "{}", t.render())?;
        }
    }

    let unclosed = val_u64(doc.get("otherData").and_then(|o| o.get("unclosed_spans")));
    writeln!(
        out,
        "\n{} instants, {unclosed} unclosed span(s){}",
        instants,
        if unclosed == 0 {
            ""
        } else {
            " — BROKEN TRACE"
        }
    )?;
    Ok(())
}

/// The value of one label inside a canonical series key, e.g.
/// `label_of("spans{cat=\"task\",query=\"7\"}", "query")` → `Some("7")`.
/// Dashboard-grade parsing: escaped quotes inside label values are rare
/// enough in practice that the first `"` terminates the value.
fn label_of(series: &str, label: &str) -> Option<String> {
    let needle = format!("{label}=\"");
    let labels = series.find('{').map(|i| &series[i..])?;
    let start = labels.find(&needle)? + needle.len();
    let rest = &labels[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// A 20-cell utilisation bar for the dashboard.
fn util_bar(fraction: f64) -> String {
    let cells = (fraction.clamp(0.0, 1.0) * 20.0).round() as usize;
    format!("[{}{}]", "#".repeat(cells), ".".repeat(20 - cells))
}

/// `datanet top SNAPSHOT.json` — terminal dashboard over a metrics
/// snapshot written by `--metrics`: per-node utilisation, per-query span
/// counts and latency percentiles, retry/failover pressure, EWMA anomaly
/// alerts, and (with `--flight FLIGHT.json`) the degradation-rung mix and
/// the last significant events.
fn cmd_top(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use datanet_obs::{detect_anomalies, split_series, FlightDump, MetricsSnapshot};

    let path = args.require_positional(1, "SNAPSHOT.json")?;
    let raw = std::fs::read_to_string(path)?;
    let snap: MetricsSnapshot = serde_json::from_str(&raw)
        .map_err(|e| ArgError(format!("{path}: not a metrics snapshot: {e}")))?;

    // The simulated horizon: the end of the latest window any series
    // touched (utilisation denominators need *some* notion of "the run").
    let horizon_us = snap
        .windowed
        .values()
        .flat_map(|w| w.iter().map(|&(start, _)| start + snap.window_us))
        .chain(
            snap.win_hists
                .values()
                .flat_map(|w| w.iter().map(|(start, _)| *start + snap.window_us)),
        )
        .max()
        .unwrap_or(0);
    writeln!(
        out,
        "datanet top — window {} ms, horizon {:.3} s, {} series",
        snap.window_us / 1_000,
        horizon_us as f64 / 1e6,
        snap.counters.len() + snap.hists.len() + snap.gauges.len()
    )?;

    // ---- per-node utilisation ----------------------------------------
    let mut busy: Vec<(String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| split_series(k).0 == "node_busy_us")
        .filter_map(|(k, &v)| label_of(k, "node").map(|n| (n, v)))
        .collect();
    // Node labels are numeric strings; sort numerically so node 10
    // lands after node 2, not after node 1.
    busy.sort_by_key(|(n, _)| n.parse::<u64>().unwrap_or(u64::MAX));
    if !busy.is_empty() && horizon_us > 0 {
        writeln!(out, "\nnode utilisation (busy / horizon):")?;
        for (node, busy_us) in &busy {
            let f = *busy_us as f64 / horizon_us as f64;
            writeln!(
                out,
                "  node {node:>3} {} {:5.1}% ({:.3}s busy)",
                util_bar(f),
                f * 100.0,
                *busy_us as f64 / 1e6
            )?;
        }
    }

    // ---- per-query latency -------------------------------------------
    // Group sim-clock span histograms by (query, tenant); unscoped spans
    // fall into the "-" row.
    let mut queries: std::collections::BTreeMap<(String, String), (u64, u64, u64, u64)> =
        Default::default();
    for (key, h) in &snap.hists {
        if split_series(key).0 != "span_us" || label_of(key, "clock").as_deref() != Some("sim") {
            continue;
        }
        let q = label_of(key, "query").unwrap_or_else(|| "-".into());
        let t = label_of(key, "tenant").unwrap_or_else(|| "-".into());
        let e = queries.entry((q, t)).or_insert((0, 0, 0, 0));
        e.0 += h.count;
        e.1 += h.sum;
        e.2 = e.2.max(h.p95);
        e.3 = e.3.max(h.p99);
    }
    if !queries.is_empty() {
        writeln!(out)?;
        let mut t = Table::new(["query", "tenant", "spans", "total ms", "p95 ms", "p99 ms"]);
        for ((q, tenant), (count, sum, p95, p99)) in &queries {
            t.row([
                q.clone(),
                tenant.clone(),
                count.to_string(),
                format!("{:.3}", *sum as f64 / 1e3),
                format!("{:.3}", *p95 as f64 / 1e3),
                format!("{:.3}", *p99 as f64 / 1e3),
            ]);
        }
        write!(out, "{}", t.render())?;
    }

    // ---- serving plane (per tenant) ----------------------------------
    // Group the serving-plane counters and latency histograms by tenant
    // label; a snapshot without them (no `datanet serve` run) skips the
    // section entirely.
    let mut serving: std::collections::BTreeMap<String, (u64, u64, u64, u64, u64)> =
        Default::default();
    for (k, &v) in &snap.counters {
        let slot = match split_series(k).0 {
            "serve_admitted_total" => 0,
            "serve_rejected_total" => 1,
            "serve_shed_total" => 2,
            _ => continue,
        };
        let t = label_of(k, "tenant").unwrap_or_else(|| "-".into());
        let e = serving.entry(t).or_insert((0, 0, 0, 0, 0));
        match slot {
            0 => e.0 += v,
            1 => e.1 += v,
            _ => e.2 += v,
        }
    }
    for (k, h) in &snap.hists {
        if split_series(k).0 != "serve_latency_us" {
            continue;
        }
        let t = label_of(k, "tenant").unwrap_or_else(|| "-".into());
        let e = serving.entry(t).or_insert((0, 0, 0, 0, 0));
        e.3 += h.count;
        e.4 = e.4.max(h.p99);
    }
    if !serving.is_empty() {
        let total = |name: &str| -> u64 {
            snap.counters
                .iter()
                .filter(|(k, _)| split_series(k).0 == name)
                .map(|(_, &v)| v)
                .sum()
        };
        writeln!(
            out,
            "\nserving plane: {} cache hit(s), {} miss(es)",
            total("serve_cache_hits_total"),
            total("serve_cache_misses_total")
        )?;
        let mut t = Table::new(["tenant", "admitted", "rejected", "shed", "latency p99 ms"]);
        for (tenant, (adm, rej, shed, lats, p99)) in &serving {
            t.row([
                tenant.clone(),
                adm.to_string(),
                rej.to_string(),
                shed.to_string(),
                if *lats == 0 {
                    "-".into()
                } else {
                    format!("{:.3}", *p99 as f64 / 1e3)
                },
            ]);
        }
        write!(out, "{}", t.render())?;
    }

    // ---- retry / failover pressure -----------------------------------
    let pressure: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            matches!(
                split_series(k).0,
                "meta_retries" | "meta_failovers" | "tasks_retried"
            )
        })
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    let replans: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| {
            split_series(k).0 == "events" && label_of(k, "cat").as_deref() == Some("replan")
        })
        .map(|(_, &v)| v)
        .sum();
    if !pressure.is_empty() || replans > 0 {
        writeln!(out, "\nretry/backoff pressure:")?;
        for (k, v) in &pressure {
            writeln!(out, "  {k}: {v}")?;
        }
        if replans > 0 {
            writeln!(out, "  replans: {replans}")?;
        }
    }

    // ---- EWMA anomaly alerts -----------------------------------------
    let alerts = detect_anomalies(&snap);
    if alerts.is_empty() {
        writeln!(
            out,
            "\nno anomalies: every windowed series within EWMA bounds"
        )?;
    } else {
        writeln!(out, "\nALERTS ({}):", alerts.len())?;
        for a in &alerts {
            writeln!(
                out,
                "  {} @ window {}ms: {:.0} vs EWMA {:.1} ({:.1}x)",
                a.series,
                a.window_us / 1_000,
                a.value,
                a.ewma,
                a.ratio
            )?;
        }
    }

    // ---- flight recorder ---------------------------------------------
    if let Some(fp) = args.get("flight") {
        let raw = std::fs::read_to_string(fp)?;
        let dump: FlightDump = serde_json::from_str(&raw)
            .map_err(|e| ArgError(format!("{fp}: not a flight dump: {e}")))?;
        let mut kinds: std::collections::BTreeMap<&str, u64> = Default::default();
        for e in &dump.events {
            *kinds.entry(e.kind.as_str()).or_insert(0) += 1;
        }
        writeln!(
            out,
            "\nflight recorder: {} of {} event(s) kept ({} dropped)",
            dump.events.len(),
            dump.recorded,
            dump.dropped
        )?;
        for (kind, n) in &kinds {
            writeln!(out, "  {kind}: {n}")?;
        }
        let rungs = dump
            .events
            .iter()
            .filter(|e| e.kind == datanet_obs::FlightKind::RungChange)
            .count();
        if rungs > 0 {
            writeln!(out, "degradation-rung changes ({rungs}):")?;
            for e in dump
                .events
                .iter()
                .filter(|e| e.kind == datanet_obs::FlightKind::RungChange)
                .rev()
                .take(5)
            {
                writeln!(out, "  seq {}: {}", e.seq, e.detail)?;
            }
        }
        if let Some(last) = dump.events.last() {
            writeln!(out, "last event: {} — {}", last.kind.as_str(), last.detail)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmd: &str) -> Result<String, CliError> {
        let mut out = Vec::new();
        dispatch(cmd.split_whitespace().map(String::from).collect(), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("datanet-cli-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let s = run("help").unwrap();
        assert!(s.contains("USAGE"));
        assert!(s.contains("datanet bench"), "{s}");
        let s = run("").unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn bench_fails_fast_on_bad_flags_and_baselines() {
        // All three error paths trip *before* the measurement loop runs,
        // so this test is milliseconds, not a bench run.
        let err = run("bench --quik").unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err}");
        assert!(format!("{err}").contains("--quik"), "{err}");

        let err = run("bench --baseline /nonexistent/base.json").unwrap_err();
        assert!(matches!(err, CliError::Io(_)), "{err}");

        let bogus = tmp("bogus-baseline.json");
        std::fs::write(&bogus, b"not json").unwrap();
        let err = run(&format!("bench --baseline {bogus}")).unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err}");
        let _ = std::fs::remove_file(&bogus);
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run("frobnicate").is_err());
    }

    #[test]
    fn full_workflow_gen_scan_query_plan_simulate() {
        let ds = tmp("ds.json");
        let meta = tmp("meta");
        let s = run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();
        assert!(s.contains("wrote 20000 records"), "{s}");

        let s = run(&format!("scan --dataset {ds} --meta {meta} --alpha 0.3")).unwrap();
        assert!(s.contains("meta-data"), "{s}");

        let s = run(&format!(
            "query --dataset {ds} --meta {meta} --subdataset 0"
        ))
        .unwrap();
        assert!(s.contains("sub-dataset s0"), "{s}");

        let s = run(&format!("plan --dataset {ds} --meta {meta} --subdataset 0")).unwrap();
        assert!(s.contains("alg1 plan"), "{s}");
        let s = run(&format!(
            "plan --dataset {ds} --meta {meta} --subdataset 0 --planner maxflow"
        ))
        .unwrap();
        assert!(s.contains("maxflow plan"), "{s}");

        let s = run(&format!(
            "simulate --dataset {ds} --subdataset 0 --job topk"
        ))
        .unwrap();
        assert!(s.contains("improvement"), "{s}");

        let _ = std::fs::remove_file(&ds);
        let _ = std::fs::remove_dir_all(&meta);
    }

    #[test]
    fn replicated_scan_scrub_heals_corruption() {
        let ds = tmp("repl-ds.json");
        let meta_a = tmp("repl-a");
        let meta_b = tmp("repl-b");
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();
        let s = run(&format!(
            "scan --dataset {ds} --meta {meta_a},{meta_b} --shard-blocks 8"
        ))
        .unwrap();
        assert!(s.contains("2 replica(s)"), "{s}");

        // Corrupt a shard in the primary; scrub repairs it from the second.
        std::fs::write(
            std::path::Path::new(&meta_a).join("shard-0000.json"),
            b"rot",
        )
        .unwrap();
        let s = run(&format!("scrub --meta {meta_a},{meta_b}")).unwrap();
        assert!(s.contains("1 shard copies repaired"), "{s}");
        assert!(s.contains("0 quarantined"), "{s}");

        // The primary alone is whole again.
        let s = run(&format!(
            "query --dataset {ds} --meta {meta_a} --subdataset 0"
        ))
        .unwrap();
        assert!(s.contains("sub-dataset s0"), "{s}");

        let _ = std::fs::remove_file(&ds);
        let _ = std::fs::remove_dir_all(&meta_a);
        let _ = std::fs::remove_dir_all(&meta_b);
    }

    #[test]
    fn trace_flag_writes_chrome_trace_and_trace_command_reads_it() {
        let ds = tmp("trace-ds.json");
        let meta = tmp("trace-meta");
        let trace = tmp("trace.json");
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();

        let s = run(&format!(
            "scan --dataset {ds} --meta {meta} --trace {trace}"
        ))
        .unwrap();
        assert!(s.contains("wrote Chrome trace"), "{s}");
        assert!(s.contains("0 unclosed"), "{s}");
        let raw = std::fs::read_to_string(&trace).unwrap();
        assert!(raw.contains("traceEvents"), "not a Chrome trace: {raw}");

        let s = run(&format!("trace {trace}")).unwrap();
        assert!(s.contains("category"), "{s}");
        assert!(s.contains("scan"), "{s}");
        assert!(s.contains("0 unclosed span(s)"), "{s}");

        // A traced simulate emits the engine spans and the obs summary.
        let s = run(&format!(
            "simulate --dataset {ds} --subdataset 0 --trace {trace}"
        ))
        .unwrap();
        assert!(s.contains("traced:"), "{s}");
        assert!(s.contains("wrote Chrome trace"), "{s}");
        let s = run(&format!("trace {trace}")).unwrap();
        assert!(s.contains("task"), "{s}");
        assert!(s.contains("node 0"), "{s}");

        // Untraced runs never mention the observability plane.
        let s = run(&format!("simulate --dataset {ds} --subdataset 0")).unwrap();
        assert!(!s.contains("traced:"), "{s}");

        let _ = std::fs::remove_file(&ds);
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_dir_all(&meta);
    }

    #[test]
    fn trace_command_rejects_garbage() {
        let bogus = tmp("bogus.json");
        std::fs::write(&bogus, b"not json").unwrap();
        assert!(run(&format!("trace {bogus}")).is_err());
        std::fs::write(&bogus, b"{\"no\":\"events\"}").unwrap();
        assert!(run(&format!("trace {bogus}")).is_err());
        let _ = std::fs::remove_file(&bogus);
    }

    #[test]
    fn gen_rejects_unknown_generator() {
        assert!(run("gen pigeons --out /tmp/x.json").is_err());
    }

    #[test]
    fn check_passes_on_fresh_seeds() {
        let s = run("check --seeds 3").unwrap();
        assert!(s.contains("checked 3 seed(s)"), "{s}");
        assert!(s.contains("every invariant oracle held"), "{s}");
    }

    #[test]
    fn check_reads_a_corpus_file() {
        let corpus = tmp("corpus.txt");
        std::fs::write(&corpus, "# two known-good seeds\n0\n1\n").unwrap();
        let s = run(&format!("check --corpus {corpus} --seeds 1 --seed-start 7")).unwrap();
        assert!(s.contains("checked 3 seed(s)"), "{s}");
        let _ = std::fs::remove_file(&corpus);
    }

    #[test]
    fn check_with_no_work_is_a_usage_error() {
        assert!(matches!(run("check --seeds 0"), Err(CliError::Args(_))));
    }

    #[test]
    fn check_replays_a_failing_repro_file() {
        use datanet_check::{shrink, CheckOptions, Repro, Scenario};
        // Build a genuinely failing repro with the planted-bug hook, then
        // make sure the CLI replays it to the same verdict and exits
        // through the Check error path (non-zero, no usage spam).
        let opts = CheckOptions {
            credit_skew: 1,
            ..CheckOptions::default()
        };
        let min = shrink(&Scenario::from_seed(5), &opts).expect("planted bug fails");
        let path = tmp("repro.json");
        Repro {
            original_seed: 5,
            scenario: min.scenario,
            options: opts,
            violations: min.outcome.violations,
            flight: Value::Null,
        }
        .save(Path::new(&path))
        .unwrap();
        let err = run(&format!("check --repro {path}")).unwrap_err();
        assert!(matches!(err, CliError::Check(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ingest_streams_commits_epochs_and_time_travels() {
        let ds = tmp("ing-ds.json");
        let meta = tmp("ing-meta");
        let _ = std::fs::remove_dir_all(&meta);
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();

        let s = run(&format!(
            "ingest --dataset {ds} --meta {meta} --shard-blocks 8 \
             --compact-every 4 --commit-every 8"
        ))
        .unwrap();
        assert!(s.contains("epoch(s) committed"), "{s}");
        assert!(!s.contains("after resuming"), "{s}");

        // The live store answers, and epoch 1 time-travels to the first
        // committed snapshot.
        let s = run(&format!(
            "query --dataset {ds} --meta {meta} --subdataset 0"
        ))
        .unwrap();
        assert!(s.contains("sub-dataset s0"), "{s}");
        let s = run(&format!(
            "query --dataset {ds} --meta {meta} --subdataset 0 --epoch 1"
        ))
        .unwrap();
        assert!(s.contains("@ epoch 1"), "{s}");

        // Resuming with nothing new appends nothing and keeps the epoch.
        let s = run(&format!("ingest --dataset {ds} --meta {meta} --resume")).unwrap();
        assert!(s.contains("ingested 0 blocks"), "{s}");
        assert!(s.contains("after resuming"), "{s}");

        let _ = std::fs::remove_file(&ds);
        let _ = std::fs::remove_dir_all(&meta);
    }

    #[test]
    fn pipeline_runs_checkpoints_and_resumes() {
        let ds = tmp("pipe-ds.json");
        let ckpt_a = tmp("pipe-ckpt-a");
        let ckpt_b = tmp("pipe-ckpt-b");
        let json = tmp("pipe-report.json");
        let _ = std::fs::remove_dir_all(&ckpt_a);
        let _ = std::fs::remove_dir_all(&ckpt_b);
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();

        let s = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_a},{ckpt_b} --json {json}"
        ))
        .unwrap();
        assert!(s.contains("executed from scratch"), "{s}");
        assert!(s.contains("stage 0 filter(s=0)"), "{s}");
        assert!(s.contains("output:"), "{s}");
        assert!(s.contains("2 replica(s)"), "{s}");
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"digest\""), "{report}");

        // Resuming over a fully-durable store re-executes nothing and
        // reproduces the same output digest.
        let digest = s
            .split("digest ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        let s = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_a},{ckpt_b} --resume"
        ))
        .unwrap();
        assert!(s.contains("resumed after durable stage"), "{s}");
        assert!(s.contains(&digest), "{s}");

        // The multi-stage join pipeline needs its right-hand side.
        let err = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_a} --job join"
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err}");
        let s = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --with 1 --ckpt {ckpt_a} --job join"
        ))
        .unwrap();
        assert!(s.contains("join(s=1)"), "{s}");

        let _ = std::fs::remove_file(&ds);
        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_dir_all(&ckpt_a);
        let _ = std::fs::remove_dir_all(&ckpt_b);
    }

    #[test]
    fn repro_replay_prints_the_violated_oracle_set() {
        use datanet_check::{shrink, CheckOptions, Repro, Scenario};
        let opts = CheckOptions {
            credit_skew: 1,
            ..CheckOptions::default()
        };
        let min = shrink(&Scenario::from_seed(5), &opts).expect("planted bug fails");
        let path = tmp("repro-oracles.json");
        Repro {
            original_seed: 5,
            scenario: min.scenario,
            options: opts,
            violations: min.outcome.violations,
            flight: Value::Null,
        }
        .save(Path::new(&path))
        .unwrap();
        let mut out = Vec::new();
        let err = dispatch(
            format!("check --repro {path}")
                .split_whitespace()
                .map(String::from)
                .collect(),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Check(_)), "{err}");
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("violated oracle set: "), "{s}");
        assert!(s.contains("greedy-conservation"), "{s}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_prints_the_shuffle_comparison_when_enabled() {
        let ds = tmp("shuf-sim-ds.json");
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();

        // Off by default: no shuffle section.
        let s = run(&format!("simulate --dataset {ds} --subdataset 0")).unwrap();
        assert!(!s.contains("shuffle ["), "{s}");

        let s = run(&format!(
            "simulate --dataset {ds} --subdataset 0 --shuffle aware \
             --key-ranges 16 --split-factor 1.1"
        ))
        .unwrap();
        assert!(s.contains("shuffle [aware]: 16 key range(s)"), "{s}");
        assert!(s.contains("hash :"), "{s}");
        assert!(s.contains("aware:"), "{s}");
        assert!(s.contains("reduce imbalance"), "{s}");

        // Bad flag values die before the simulation runs.
        for bad in [
            "--shuffle sideways",
            "--shuffle aware --key-ranges 1",
            "--shuffle aware --split-factor 0.5",
        ] {
            let err = run(&format!("simulate --dataset {ds} --subdataset 0 {bad}")).unwrap_err();
            assert!(matches!(err, CliError::Args(_)), "{bad}: {err}");
        }
        let _ = std::fs::remove_file(&ds);
    }

    #[test]
    fn pipeline_routes_through_the_partitioner_without_changing_answers() {
        let ds = tmp("shuf-pipe-ds.json");
        let ckpt_off = tmp("shuf-pipe-off");
        let ckpt_aware = tmp("shuf-pipe-aware");
        let ckpt_hash = tmp("shuf-pipe-hash");
        for d in [&ckpt_off, &ckpt_aware, &ckpt_hash] {
            let _ = std::fs::remove_dir_all(d);
        }
        run(&format!(
            "gen movies --records 20000 --nodes 8 --block-kb 64 --out {ds}"
        ))
        .unwrap();

        let digest_of = |s: &str| {
            s.split("digest ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_string()
        };
        let off = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_off}"
        ))
        .unwrap();
        assert!(!off.contains("shuffle ["), "{off}");
        let aware = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_aware} --shuffle aware"
        ))
        .unwrap();
        assert!(
            aware.contains("shuffle [aware]: 32 key range(s)"),
            "{aware}"
        );
        let hash = run(&format!(
            "pipeline --dataset {ds} --subdataset 0 --ckpt {ckpt_hash} --shuffle hash"
        ))
        .unwrap();
        assert!(hash.contains("shuffle [hash]"), "{hash}");
        // Routing may move bytes, never answers: all three digests agree.
        assert_eq!(digest_of(&off), digest_of(&aware));
        assert_eq!(digest_of(&off), digest_of(&hash));

        let _ = std::fs::remove_file(&ds);
        for d in [&ckpt_off, &ckpt_aware, &ckpt_hash] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn simulate_rejects_unknown_job() {
        let ds = tmp("dsx.json");
        run(&format!(
            "gen github --records 5000 --nodes 4 --block-kb 64 --out {ds}"
        ))
        .unwrap();
        let err = run(&format!(
            "simulate --dataset {ds} --subdataset 1 --job bogus"
        ));
        assert!(err.is_err());
        let _ = std::fs::remove_file(&ds);
    }

    #[test]
    fn serve_runs_standalone_and_feeds_the_dashboard() {
        let json = tmp("serve-report.json");
        let snap = tmp("serve-metrics.json");
        let s = run(&format!(
            "serve --tenants 3 --queries 24 --records 400 --nodes 4 --subdatasets 4 \
             --seed 7 --ingest-at 8 --lose-node 2@12 --json {json} --metrics {snap}"
        ))
        .unwrap();
        assert!(
            s.contains("served 24 query(ies) from 3 tenant(s), skewed mix, 2 event(s)"),
            "{s}"
        );
        assert!(s.contains("plan cache:"), "{s}");
        assert!(s.contains("tenant"), "{s}");
        assert!(s.contains("timing ("), "{s}");

        // The JSON report is the full ServeReport: one outcome per query.
        let doc = serde_json::parse_value(&std::fs::read(&json).unwrap()).unwrap();
        let outcomes = doc
            .get("answers")
            .and_then(|a| a.get("outcomes"))
            .expect("answers.outcomes present");
        assert!(
            matches!(outcomes, Value::Array(o) if o.len() == 24),
            "{doc:?}"
        );

        // The metrics snapshot surfaces per-tenant rows in `datanet top`.
        let top = run(&format!("top {snap}")).unwrap();
        assert!(top.contains("serving plane:"), "{top}");
        assert!(top.contains("t0"), "{top}");
        assert!(top.contains("admitted"), "{top}");

        let _ = std::fs::remove_file(&json);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn serve_answers_are_worker_independent_and_flags_validate() {
        let j1 = tmp("serve-w1.json");
        let j2 = tmp("serve-w6.json");
        let common = "serve --tenants 2 --queries 16 --records 300 --nodes 4 \
                      --subdatasets 3 --seed 11 --mix adversarial";
        run(&format!("{common} --workers 1 --json {j1}")).unwrap();
        run(&format!(
            "{common} --workers 6 --schedule-seed 99 --json {j2}"
        ))
        .unwrap();
        let a1 = serde_json::parse_value(&std::fs::read(&j1).unwrap()).unwrap();
        let a2 = serde_json::parse_value(&std::fs::read(&j2).unwrap()).unwrap();
        assert_eq!(
            a1.get("answers"),
            a2.get("answers"),
            "canonical answers moved with worker count"
        );
        assert_ne!(a1.get("timing"), a2.get("timing"));

        for bad in [
            "serve --mix sideways",
            "serve --qps 0",
            "serve --quantum-kb 0",
            "serve --lose-node 2",
            "serve --planner bogus",
        ] {
            let err = run(bad).unwrap_err();
            assert!(matches!(err, CliError::Args(_)), "{bad}: {err}");
        }

        let _ = std::fs::remove_file(&j1);
        let _ = std::fs::remove_file(&j2);
    }
}
