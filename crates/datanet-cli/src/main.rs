//! `datanet` — the command-line front end to the DataNet reproduction.
//!
//! ```text
//! datanet gen movies --records 100000 --out ds.json
//! datanet scan --dataset ds.json --meta meta/ --alpha 0.3
//! datanet query --dataset ds.json --meta meta/ --subdataset 0
//! datanet plan --dataset ds.json --meta meta/ --subdataset 0
//! datanet simulate --dataset ds.json --subdataset 0 --job topk
//! ```

mod args;
mod commands;
mod dataset;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = commands::dispatch(tokens, &mut stdout) {
        eprintln!("datanet: {e}");
        // Usage only helps with usage mistakes; invariant violations from
        // `datanet check` would scroll their repro pointers off the screen.
        if matches!(e, commands::CliError::Args(_)) {
            eprint!("{}", commands::USAGE);
        }
        std::process::exit(2);
    }
}
