//! A small, dependency-free command-line argument parser: `--key value`
//! flags plus positional arguments, with typed accessors and helpful
//! errors.

use std::collections::HashMap;
use std::fmt;

/// Parsed arguments: positionals in order plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

/// A parse or lookup failure, rendered for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw token stream (no program name). A `--flag` followed by
    /// another `--option` or the end of the stream is a boolean switch and
    /// stores the value `"true"` (see [`Args::flag`]).
    ///
    /// # Errors
    /// None today; the `Result` is kept so callers are ready for stricter
    /// parses (duplicate detection, unknown-flag rejection).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("just peeked"),
                    _ => "true".to_string(),
                };
                options.insert(key.to_string(), value);
            } else {
                positional.push(tok);
            }
        }
        Ok(Self {
            positional,
            options,
        })
    }

    /// Positional argument `i`, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Required positional argument `i`.
    ///
    /// # Errors
    /// Missing positional.
    pub fn require_positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional(i)
            .ok_or_else(|| ArgError(format!("missing <{name}> argument")))
    }

    /// Optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    /// Missing flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required --{key} <value>")))
    }

    /// Boolean switch: `--key` alone (or `--key true`) turns it on;
    /// absent, `--key false` or `--key 0` leave it off.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false" && v != "0")
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    /// Unparsable value.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("--{key} {raw}: {e}"))),
        }
    }

    /// Number of positional arguments.
    #[allow(dead_code)] // exercised by tests; kept for API symmetry
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// Reject any option outside `allowed` — commands with a closed flag
    /// set call this so a typo (`--quik`) fails loudly instead of being
    /// silently ignored.
    ///
    /// # Errors
    /// Names the first unknown flag and lists the accepted ones.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        let mut unknown: Vec<&str> = self
            .options
            .keys()
            .map(String::as_str)
            .filter(|k| !allowed.contains(k))
            .collect();
        unknown.sort_unstable();
        match unknown.first() {
            None => Ok(()),
            Some(flag) => Err(ArgError(format!(
                "unknown flag --{flag}; accepted flags: {}",
                allowed
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse("gen movies --records 100 --seed 7 out.json");
        assert_eq!(a.positional(0), Some("gen"));
        assert_eq!(a.positional(1), Some("movies"));
        assert_eq!(a.positional(2), Some("out.json"));
        assert_eq!(a.positional_len(), 3);
        assert_eq!(a.get("records"), Some("100"));
        assert_eq!(a.get_or("records", 5usize).unwrap(), 100);
        assert_eq!(a.get_or("missing", 5usize).unwrap(), 5);
        assert_eq!(a.require("seed").unwrap(), "7");
    }

    #[test]
    fn valueless_flag_is_a_boolean_switch() {
        let a = parse("check --shrink --seeds 10 --verbose");
        assert!(a.flag("shrink"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("absent"));
        assert_eq!(a.get("shrink"), Some("true"));
        assert_eq!(a.get_or("seeds", 0usize).unwrap(), 10);
        let a = parse("check --shrink false");
        assert!(!a.flag("shrink"));
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let a = parse("--records nope");
        assert!(a.get_or("records", 1usize).is_err());
    }

    #[test]
    fn missing_required_is_an_error() {
        let a = parse("gen");
        assert!(a.require("alpha").is_err());
        assert!(a.require_positional(3, "file").is_err());
    }

    #[test]
    fn bench_switches_round_trip() {
        let a = parse("bench --quick --json out.json --baseline BENCH_baseline.json");
        assert_eq!(a.positional(0), Some("bench"));
        assert!(a.flag("quick"));
        assert_eq!(a.get("json"), Some("out.json"));
        assert_eq!(a.get("baseline"), Some("BENCH_baseline.json"));
        a.reject_unknown(&["quick", "json", "baseline"]).unwrap();
        // Flag order must not matter.
        let b = parse("bench --baseline BENCH_baseline.json --quick");
        assert!(b.flag("quick"));
        assert_eq!(b.get("baseline"), Some("BENCH_baseline.json"));
        assert_eq!(b.get("json"), None);
    }

    #[test]
    fn unknown_flag_is_rejected_with_the_accepted_list() {
        let a = parse("bench --quik");
        let err = a
            .reject_unknown(&["quick", "json", "baseline"])
            .unwrap_err();
        assert!(err.0.contains("--quik"), "{err}");
        assert!(err.0.contains("--baseline"), "{err}");
    }
}
