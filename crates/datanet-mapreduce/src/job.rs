//! Cost profiles of MapReduce jobs.
//!
//! The simulator characterises a job by how much CPU work it does per input
//! byte in each phase and how much intermediate data it emits. The four
//! applications of Section V get profiles in `datanet-analytics`, calibrated
//! so the *relative* behaviour matches the paper: Moving Average iterates
//! (light), Word Count combines words (medium), Top-K compares sequences
//! (heavy).

use serde::{Deserialize, Serialize};

/// Static cost model of one MapReduce job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Human-readable job name.
    pub name: String,
    /// CPU work per map-input byte, as a multiple of the node's baseline
    /// scan rate (1.0 = plain iteration).
    pub map_compute_factor: f64,
    /// Map output bytes per map input byte (what enters the shuffle).
    pub output_ratio: f64,
    /// CPU work per reduce-input byte, as a multiple of the baseline rate.
    pub reduce_compute_factor: f64,
}

impl JobProfile {
    /// Create a profile.
    ///
    /// # Panics
    /// Panics on non-finite or negative parameters, or a zero map factor.
    pub fn new(
        name: impl Into<String>,
        map_compute_factor: f64,
        output_ratio: f64,
        reduce_compute_factor: f64,
    ) -> Self {
        let p = Self {
            name: name.into(),
            map_compute_factor,
            output_ratio,
            reduce_compute_factor,
        };
        p.validate();
        p
    }

    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn validate(&self) {
        assert!(
            self.map_compute_factor.is_finite() && self.map_compute_factor > 0.0,
            "map compute factor must be positive"
        );
        assert!(
            self.output_ratio.is_finite() && self.output_ratio >= 0.0,
            "output ratio must be non-negative"
        );
        assert!(
            self.reduce_compute_factor.is_finite() && self.reduce_compute_factor >= 0.0,
            "reduce compute factor must be non-negative"
        );
        assert!(!self.name.is_empty(), "job needs a name");
    }

    /// Map output bytes for a given input size.
    pub fn map_output_bytes(&self, input: u64) -> u64 {
        (input as f64 * self.output_ratio).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_output() {
        let j = JobProfile::new("wordcount", 3.0, 0.4, 1.0);
        assert_eq!(j.name, "wordcount");
        assert_eq!(j.map_output_bytes(1000), 400);
        assert_eq!(j.map_output_bytes(0), 0);
    }

    #[test]
    fn zero_output_ratio_allowed() {
        let j = JobProfile::new("sink", 1.0, 0.0, 0.0);
        assert_eq!(j.map_output_bytes(12345), 0);
    }

    #[test]
    #[should_panic]
    fn zero_map_factor_rejected() {
        JobProfile::new("bad", 0.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_output_rejected() {
        JobProfile::new("bad", 1.0, -0.1, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_name_rejected() {
        JobProfile::new("", 1.0, 0.1, 1.0);
    }
}
