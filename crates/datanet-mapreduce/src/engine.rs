//! The execution engine: selection phase, analysis phase, full pipeline.
//!
//! ### Selection (Section V-A: "we first launch map tasks to filter out our
//! target sub-dataset and store them locally")
//!
//! Demand-driven: each node has one task slot; the node whose slot frees
//! earliest asks the scheduler for its next block. A task scans a whole
//! block (disk read + CPU scan; plus a NIC hop for non-local blocks) and
//! appends the matching records to a local partition. The *actual* filtered
//! bytes credited to a node come from the DFS ground truth — schedulers that
//! plan with approximate ElasticMap weights therefore show exactly the
//! residual imbalance the paper measures at low α (Figure 10).
//!
//! ### Analysis (map → shuffle → reduce over the filtered partitions)
//!
//! Each node runs one map task over its partition (disk + job CPU), then
//! sends `1/R` of its map output to every other reducer over the simulated
//! NICs (its own share stays local). A reducer's shuffle time spans from the
//! *first* map completion to its last received byte — Hadoop's definition,
//! and the reason imbalanced maps inflate shuffle times 4–5× in Figure 7.

use crate::job::JobProfile;
use crate::report::{ExecutionReport, FaultStats, JobReport, SelectionOutcome, ShuffleOutcome};
use crate::scheduler::{MapScheduler, ResilientScheduler};
use crate::shuffle::{self, ShufflePlan};
use datanet::store::MetaStore;
use datanet::{AggregationPlan, Assignment, RetryBudget};
use datanet_cluster::{
    suspicion_schedule_traced, DetectorConfig, EventQueue, FaultPlan, NodeSpec, SimCluster, SimTime,
};
use datanet_dfs::{BlockId, Dfs, NodeId, SubDatasetId};
use datanet_obs::{Category, Domain, FlightKind, Recorder, SpanCtx};

/// Fixed per-task cost (scheduling heartbeat, JVM reuse, commit) — Hadoop
/// charges ~1 s per task; scaled here by the same 256× factor as the
/// data volume (see DESIGN.md), giving 6 ms.
const DEFAULT_TASK_OVERHEAD: SimTime = SimTime::from_millis(6);

/// Parameters of the selection phase.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Node hardware.
    pub spec: NodeSpec,
    /// CPU work per scanned byte (multiple of the baseline scan rate).
    pub scan_factor: f64,
    /// Cost per *filtered* byte, as a multiple of the disk rate: matching
    /// records are parsed, sorted and spilled to the local partition
    /// (Hadoop's map-side sort/spill), so hot blocks cost real extra time.
    pub filtered_cost_factor: f64,
    /// Bandwidth for reads that must cross racks. Marmot hangs every node
    /// off one switch, so the default equals the NIC rate; an oversubscribed
    /// spine (e.g. 4:1) is modelled by setting this lower.
    pub cross_rack_bps: u64,
    /// Concurrent map slots per node. Marmot's nodes are dual-core, so the
    /// Hadoop default of one slot per core gives 2; the per-slot disk and
    /// CPU rates in [`NodeSpec`] are per-slot shares.
    pub slots_per_node: u32,
    /// Fixed per-map-task overhead (startup + commit).
    pub task_overhead: SimTime,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            spec: NodeSpec::marmot(),
            scan_factor: 1.0,
            filtered_cost_factor: 1.0,
            cross_rack_bps: NodeSpec::marmot().nic_bps,
            slots_per_node: 1,
            task_overhead: DEFAULT_TASK_OVERHEAD,
        }
    }
}

/// Parameters of the analysis phase.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Node hardware.
    pub spec: NodeSpec,
    /// Fixed per-task overhead applied to each map and reduce task.
    pub task_overhead: SimTime,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            spec: NodeSpec::marmot(),
            task_overhead: DEFAULT_TASK_OVERHEAD,
        }
    }
}

/// Run the selection phase.
///
/// * `truth` — ground-truth bytes of the target sub-dataset per block
///   (`dfs.subdataset_distribution(s)`), credited to whichever node scans
///   the block.
/// * `scheduler` — decides block→node placement on demand.
///
/// # Panics
/// Panics if `truth.len() != dfs.block_count()`.
pub fn run_selection(
    dfs: &Dfs,
    truth: &[u64],
    scheduler: &mut dyn MapScheduler,
    cfg: &SelectionConfig,
) -> SelectionOutcome {
    run_selection_traced(dfs, truth, scheduler, cfg, &Recorder::off())
}

/// [`run_selection`] with a [`Recorder`] attached: emits one `select` task
/// span per granted block on the simulated clock (node/block attributes), a
/// `selection` phase span, a `task_us` duration histogram and locality
/// counters. With a disabled recorder this is exactly [`run_selection`] —
/// tracing never perturbs the simulation.
pub fn run_selection_traced(
    dfs: &Dfs,
    truth: &[u64],
    scheduler: &mut dyn MapScheduler,
    cfg: &SelectionConfig,
    rec: &Recorder,
) -> SelectionOutcome {
    assert_eq!(
        truth.len(),
        dfs.block_count(),
        "ground-truth vector must cover every block"
    );
    cfg.spec.validate();
    assert!(cfg.slots_per_node > 0, "need at least one slot per node");
    let m = dfs.config().topology.len();
    let mut per_node_bytes = vec![0u64; m];
    let mut tasks_per_node = vec![0usize; m];
    let mut per_node_end = vec![SimTime::ZERO; m];
    let mut local_tasks = 0usize;
    let mut total_tasks = 0usize;
    let mut bytes_read = 0u64;

    rec.flight(
        FlightKind::Plan,
        Domain::Sim,
        0,
        None,
        format!(
            "selection plan: {} tasks over {m} nodes",
            scheduler.remaining()
        ),
    );
    // Slot-free events: all slots free at t=0 (slots_per_node tokens per
    // node). FIFO tie-break keeps node order deterministic.
    let mut slots: EventQueue<NodeId> = EventQueue::new();
    for _ in 0..cfg.slots_per_node {
        for n in 0..m {
            slots.push(SimTime::ZERO, NodeId(n as u32));
        }
    }
    while let Some((now, node)) = slots.pop() {
        let Some((block, local)) = scheduler.next_task(node) else {
            if scheduler.remaining() > 0 {
                // The scheduler deferred this node (e.g. delay scheduling
                // waiting for a local slot): retry on the next heartbeat.
                slots.push(now + cfg.task_overhead.max(SimTime::from_millis(1)), node);
            } else {
                // Nothing left anywhere: the node stops requesting.
                per_node_end[node.index()] = per_node_end[node.index()].max(now);
            }
            continue;
        };
        let block_bytes = dfs.block(block).bytes();
        let filtered = truth[block.index()];
        let dur = map_task_duration(dfs, block, node, local, filtered, cfg, 1.0);
        let end = now + dur;
        let span = rec.begin(
            Category::Task,
            "select",
            Domain::Sim,
            now.as_micros(),
            SpanCtx::default()
                .node(node.index())
                .block(block.index() as u64),
        );
        rec.end(span, end.as_micros());
        rec.observe("task_us", dur.as_micros());
        per_node_bytes[node.index()] += filtered;
        tasks_per_node[node.index()] += 1;
        per_node_end[node.index()] = end;
        bytes_read += block_bytes;
        total_tasks += 1;
        if local {
            local_tasks += 1;
        }
        slots.push(end, node);
    }
    debug_assert_eq!(scheduler.remaining(), 0, "engine drained the scheduler");

    let end = per_node_end.iter().copied().max().unwrap_or(SimTime::ZERO);
    let phase = rec.begin(
        Category::Phase,
        "selection",
        Domain::Sim,
        0,
        SpanCtx::default(),
    );
    rec.end(phase, end.as_micros());
    rec.add("tasks_executed", total_tasks as u64);
    rec.add("local_tasks", local_tasks as u64);
    rec.add("remote_tasks", (total_tasks - local_tasks) as u64);
    rec.add("bytes_read", bytes_read);
    SelectionOutcome {
        scheduler: scheduler.name().to_string(),
        per_node_bytes,
        tasks_per_node,
        per_node_end,
        end,
        local_tasks,
        total_tasks,
        bytes_read,
        faults: FaultStats::default(),
        meta: datanet::MetaHealth::default(),
    }
}

/// Cost of one selection map task: disk read of the whole block, a NIC hop
/// for non-local reads (degraded by `nic_fraction` under fault injection,
/// at the cross-rack rate when no replica shares the reader's rack), scan
/// CPU over the block, and the sort/spill of the filtered bytes.
fn map_task_duration(
    dfs: &Dfs,
    block: BlockId,
    node: NodeId,
    local: bool,
    filtered: u64,
    cfg: &SelectionConfig,
    nic_fraction: f64,
) -> SimTime {
    let block_bytes = dfs.block(block).bytes();
    let mut dur = cfg.task_overhead + SimTime::for_bytes(block_bytes, cfg.spec.disk_bps);
    if !local {
        let topo = &dfs.config().topology;
        let rack_local = dfs.replicas(block).iter().any(|&h| topo.same_rack(h, node));
        let rate = if rack_local {
            cfg.spec.nic_bps
        } else {
            cfg.cross_rack_bps
        };
        let rate = ((rate as f64) * nic_fraction).max(1.0) as u64;
        dur += SimTime::for_bytes(block_bytes, rate);
    }
    dur += SimTime::for_bytes(
        (block_bytes as f64 * cfg.scan_factor).ceil() as u64,
        cfg.spec.cpu_bps,
    );
    dur += SimTime::for_bytes(
        (filtered as f64 * cfg.filtered_cost_factor).ceil() as u64,
        cfg.spec.disk_bps,
    );
    dur
}

/// Closed-form makespan of executing an already-planned assignment with one
/// map slot per node: each node runs its planned blocks back to back at the
/// engine's exact per-task cost, so the result equals
/// [`run_selection`] driven by a `PlannedScheduler` with
/// `slots_per_node = 1` — without paying for the event queue. The serving
/// plane (`datanet-serve`) prices every admitted query's execution with
/// this, which keeps per-query cost a pure function of the plan: worker
/// interleaving can reorder queries but never change what one costs.
///
/// # Panics
/// Panics if `truth` does not cover every block of `dfs`.
pub fn planned_makespan(
    dfs: &Dfs,
    truth: &[u64],
    plan: &Assignment,
    cfg: &SelectionConfig,
) -> SimTime {
    assert_eq!(
        truth.len(),
        dfs.block_count(),
        "ground-truth vector must cover every block"
    );
    let mut makespan = SimTime::ZERO;
    for n in 0..plan.node_count() {
        let node = NodeId(n as u32);
        let mut end = SimTime::ZERO;
        for &b in plan.tasks_of(node) {
            let local = dfs.namenode().is_local(b, node);
            end += map_task_duration(dfs, b, node, local, truth[b.index()], cfg, 1.0);
        }
        makespan = makespan.max(end);
    }
    makespan
}

/// Stretch a duration by a slowdown factor (≥ 1).
fn stretch(dur: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        dur
    } else {
        SimTime::from_micros((dur.as_micros() as f64 * factor).ceil() as u64)
    }
}

/// Fault-injection parameters for a selection run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The scripted fault schedule.
    pub plan: FaultPlan,
    /// How many times a block may be *re*-executed after crashes before the
    /// engine gives up on it (Hadoop's `mapreduce.map.maxattempts` − 1).
    pub max_retries: u32,
    /// `Some` switches crash notification from the PR 1 oracle (the engine
    /// reacts at the exact crash instant) to heartbeat-driven *suspicion*:
    /// recovery starts only once the failure detector's EWMA deadline
    /// passes, and every action in between is charged realistically — work
    /// "completing" on a dead-but-unsuspected node is void.
    pub detection: Option<DetectorConfig>,
}

impl FaultConfig {
    /// A plan with the default Hadoop-like retry budget of 3 and oracle
    /// crash notification (PR 1 semantics).
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            max_retries: 3,
            detection: None,
        }
    }

    /// Same, but crashes are learned through the failure detector.
    pub fn with_detection(plan: FaultPlan, detector: DetectorConfig) -> Self {
        Self {
            detection: Some(detector),
            ..Self::new(plan)
        }
    }
}

/// Events driving the fault-tolerant selection loop.
enum FaultEvent {
    /// A map slot on this node freed up (task completion or initial token).
    Slot(NodeId),
    /// The scripted crash of a node fires.
    Crash(NodeId),
}

/// Run the selection phase under fault injection.
///
/// Differs from [`run_selection`] in exactly the ways a fail-stop fault
/// model demands:
///
/// * filtered bytes are credited at task **completion**, not at grant —
///   a task in flight when its node dies contributes nothing;
/// * when a node crashes, its in-flight tasks *and* its completed filtered
///   partitions are lost. Every affected block with a surviving replica is
///   re-enqueued via [`MapScheduler::node_lost`] and re-executed (charged
///   full re-read cost); blocks whose replicas all died are reported in
///   [`FaultStats::unrecoverable_blocks`], and blocks exceeding the retry
///   budget in [`FaultStats::abandoned_blocks`];
/// * transient slow-node windows stretch task durations; NIC degradation
///   slows remote reads;
/// * nodes that went idle (scheduler drained) are woken again when a crash
///   requeues work.
///
/// The run is deterministic for a fixed `FaultPlan` and scheduler state.
pub fn run_selection_faulty(
    dfs: &Dfs,
    truth: &[u64],
    scheduler: &mut dyn MapScheduler,
    cfg: &SelectionConfig,
    faults: &FaultConfig,
) -> SelectionOutcome {
    run_selection_faulty_traced(dfs, truth, scheduler, cfg, faults, &Recorder::off())
}

/// [`run_selection_faulty`] with a [`Recorder`] attached. On top of the
/// healthy-engine spans this emits the full crash lifecycle on the simulated
/// clock: a `crash` instant at the physical failure time, a `suspect`
/// instant when the engine learns of it (the detector records it in
/// detection mode; the oracle records it at the crash itself), a `replan`
/// instant from [`MapScheduler::record_replan`], and every in-flight task
/// span on the dead node closed with a `lost` note. With a disabled
/// recorder this is exactly [`run_selection_faulty`].
pub fn run_selection_faulty_traced(
    dfs: &Dfs,
    truth: &[u64],
    scheduler: &mut dyn MapScheduler,
    cfg: &SelectionConfig,
    faults: &FaultConfig,
    rec: &Recorder,
) -> SelectionOutcome {
    assert_eq!(
        truth.len(),
        dfs.block_count(),
        "ground-truth vector must cover every block"
    );
    cfg.spec.validate();
    assert!(cfg.slots_per_node > 0, "need at least one slot per node");
    let m = dfs.config().topology.len();
    assert_eq!(
        faults.plan.nodes(),
        m,
        "fault plan sized for another cluster"
    );

    let mut per_node_bytes = vec![0u64; m];
    let mut tasks_per_node = vec![0usize; m];
    let mut per_node_end = vec![SimTime::ZERO; m];
    let mut local_tasks = 0usize;
    let mut total_tasks = 0usize;
    let mut bytes_read = 0u64;
    let mut stats = FaultStats::default();

    let mut alive = vec![true; m];
    // Blocks whose filtered output currently lives on node n.
    let mut done: Vec<Vec<BlockId>> = vec![Vec::new(); m];
    // Tasks running on node n: (block, was_local, completes_at, span).
    let mut in_flight: Vec<Vec<(BlockId, bool, SimTime, datanet_obs::SpanId)>> =
        vec![Vec::new(); m];
    // Slot tokens parked because the scheduler had nothing left; a crash
    // that requeues work revives them.
    let mut parked = vec![0u32; m];
    // Executions started per block (first run + retries), capped by the
    // shared retry budget (datanet::retry).
    let mut budget = RetryBudget::new(dfs.block_count(), faults.max_retries);
    let mut first_crash: Option<SimTime> = None;

    rec.flight(
        FlightKind::Plan,
        Domain::Sim,
        0,
        None,
        format!(
            "faulty selection plan: {} tasks over {m} nodes, {} planned crashes",
            scheduler.remaining(),
            faults.plan.crash_count()
        ),
    );
    let mut events: EventQueue<FaultEvent> = EventQueue::new();
    // Under detection, the engine learns of a crash at the *suspicion*
    // instant; under the oracle model, at the crash instant itself.
    let notifications = match faults.detection {
        Some(det) => suspicion_schedule_traced(&faults.plan, det, rec),
        None => faults.plan.crash_events(),
    };
    for (t, node) in notifications {
        events.push(t, FaultEvent::Crash(NodeId(node as u32)));
    }
    for _ in 0..cfg.slots_per_node {
        for n in 0..m {
            events.push(SimTime::ZERO, FaultEvent::Slot(NodeId(n as u32)));
        }
    }

    while let Some((now, event)) = events.pop() {
        match event {
            FaultEvent::Crash(dead) => {
                alive[dead.index()] = false;
                let crashed_at = faults.plan.crash_time(dead.index()).unwrap_or(now);
                first_crash.get_or_insert(crashed_at);
                stats.crashed_nodes.push(dead.index());
                rec.instant(
                    Category::Detection,
                    "crash",
                    Domain::Sim,
                    crashed_at.as_micros(),
                    SpanCtx::default().node(dead.index()),
                );
                if faults.detection.is_some() {
                    stats
                        .detection_latency_secs
                        .push((now.saturating_sub(crashed_at)).as_secs_f64());
                } else {
                    // Oracle notification: suspicion is instantaneous, but
                    // the chain still gets its `suspect` marker so crash
                    // timelines read uniformly across both modes.
                    rec.instant(
                        Category::Detection,
                        "suspect",
                        Domain::Sim,
                        now.as_micros(),
                        SpanCtx::default().node(dead.index()).note("oracle"),
                    );
                }
                per_node_end[dead.index()] = crashed_at;
                // Everything the node produced or was producing is gone.
                per_node_bytes[dead.index()] = 0;
                tasks_per_node[dead.index()] = 0;
                // Tasks still in flight died with the node: their spans end
                // at the physical crash, not at the (later) suspicion.
                for &(_, _, _, span) in &in_flight[dead.index()] {
                    rec.end_with_note(span, crashed_at.as_micros(), "lost");
                }
                let casualties: Vec<BlockId> = done[dead.index()]
                    .drain(..)
                    .chain(in_flight[dead.index()].drain(..).map(|(b, _, _, _)| b))
                    .collect();
                // Triage: re-enqueue what survivors can serve, report the rest.
                let mut requeue = Vec::new();
                for b in casualties {
                    if dfs.surviving_replicas(b, &alive).is_empty() {
                        stats.unrecoverable_blocks.push(b);
                    } else if budget.exhausted(b.index()) {
                        stats.abandoned_blocks.push(b);
                    } else {
                        requeue.push(b);
                    }
                }
                stats.requeued_tasks += requeue.len();
                scheduler.node_lost(dead, &requeue);
                scheduler.record_replan(rec, now.as_micros(), dead, requeue.len());
                // Wake idle survivors: new work just appeared.
                if !requeue.is_empty() {
                    for (n, tokens) in parked.iter_mut().enumerate() {
                        for _ in 0..*tokens {
                            events.push(now, FaultEvent::Slot(NodeId(n as u32)));
                        }
                        *tokens = 0;
                    }
                }
            }
            FaultEvent::Slot(node) => {
                if !alive[node.index()] {
                    // The token belonged to a node that died; drop it.
                    continue;
                }
                if !faults.plan.is_alive(node.index(), now) {
                    // Physically dead but not yet *suspected* (detection
                    // mode): the node emits nothing. Its completed work and
                    // credits are reaped when suspicion fires.
                    continue;
                }
                // Complete the task this token was running, if any.
                if let Some(pos) = in_flight[node.index()]
                    .iter()
                    .position(|&(_, _, e, _)| e == now)
                {
                    let (block, local, _, span) = in_flight[node.index()].remove(pos);
                    rec.end(span, now.as_micros());
                    done[node.index()].push(block);
                    per_node_bytes[node.index()] += truth[block.index()];
                    tasks_per_node[node.index()] += 1;
                    bytes_read += dfs.block(block).bytes();
                    total_tasks += 1;
                    if local {
                        local_tasks += 1;
                    }
                    per_node_end[node.index()] = now;
                }
                // Ask for the next task.
                let Some((block, local)) = scheduler.next_task(node) else {
                    if scheduler.remaining() > 0 {
                        events.push(
                            now + cfg.task_overhead.max(SimTime::from_millis(1)),
                            FaultEvent::Slot(node),
                        );
                    } else {
                        per_node_end[node.index()] = per_node_end[node.index()].max(now);
                        parked[node.index()] += 1;
                    }
                    continue;
                };
                if dfs.surviving_replicas(block, &alive).is_empty() {
                    // Every replica died while the block sat in the pool:
                    // nothing can serve the read. Report it and keep the
                    // token cycling (next_task advanced, so this terminates).
                    stats.unrecoverable_blocks.push(block);
                    events.push(now, FaultEvent::Slot(node));
                    continue;
                }
                if budget.tried(block.index()) {
                    stats.reexecuted_tasks += 1;
                    stats.wasted_bytes_read += dfs.block(block).bytes();
                }
                let attempt = budget.record(block.index());
                let dur = map_task_duration(
                    dfs,
                    block,
                    node,
                    local,
                    truth[block.index()],
                    cfg,
                    faults.plan.nic_fraction(node.index()),
                );
                let dur = stretch(dur, faults.plan.slow_factor(node.index(), now));
                let end = now + dur;
                let mut ctx = SpanCtx::default()
                    .node(node.index())
                    .block(block.index() as u64);
                if attempt > 1 {
                    ctx = ctx.note(format!("attempt {attempt}"));
                }
                let span = rec.begin(Category::Task, "select", Domain::Sim, now.as_micros(), ctx);
                rec.observe("task_us", dur.as_micros());
                in_flight[node.index()].push((block, local, end, span));
                events.push(end, FaultEvent::Slot(node));
            }
        }
    }
    debug_assert!(
        scheduler.remaining() == 0 || alive.iter().all(|&a| !a),
        "engine drained the scheduler or lost every node"
    );

    let end = per_node_end.iter().copied().max().unwrap_or(SimTime::ZERO);
    stats.recovery_secs = first_crash
        .map(|c| end.saturating_sub(c).as_secs_f64())
        .unwrap_or(0.0);
    let phase = rec.begin(
        Category::Phase,
        "selection",
        Domain::Sim,
        0,
        SpanCtx::default(),
    );
    rec.end(phase, end.as_micros());
    rec.add("tasks_executed", total_tasks as u64);
    rec.add("local_tasks", local_tasks as u64);
    rec.add("remote_tasks", (total_tasks - local_tasks) as u64);
    rec.add("bytes_read", bytes_read);
    rec.add("crashes", stats.crashed_nodes.len() as u64);
    rec.add("requeued_tasks", stats.requeued_tasks as u64);
    rec.add("reexecuted_tasks", stats.reexecuted_tasks as u64);
    rec.add("wasted_bytes_read", stats.wasted_bytes_read);
    rec.add(
        "unrecoverable_blocks",
        stats.unrecoverable_blocks.len() as u64,
    );
    rec.add("abandoned_blocks", stats.abandoned_blocks.len() as u64);
    SelectionOutcome {
        scheduler: scheduler.name().to_string(),
        per_node_bytes,
        tasks_per_node,
        per_node_end,
        end,
        local_tasks,
        total_tasks,
        bytes_read,
        faults: stats,
        meta: datanet::MetaHealth::default(),
    }
}

/// Run the selection phase straight off a (possibly degraded) [`MetaStore`]
/// — the full degradation ladder, end to end:
///
/// 1. [`MetaStore::view_degraded`] assembles the best available view, with
///    retry, replica failover and quarantine along the way;
/// 2. a [`ResilientScheduler`] places rung-1/2 blocks with Algorithm 1 and
///    rung-3 blocks (shard *and* summary lost) with the locality baseline;
/// 3. the run executes healthily or under fault injection (`faults`);
/// 4. the outcome's [`SelectionOutcome::meta`] records the store's health
///    counters, the per-rung block counts, and the relative error of the
///    degraded Equation 6 estimate against ground truth.
///
/// # Panics
/// Panics if the store's manifest does not cover `dfs`'s blocks.
pub fn run_selection_resilient(
    dfs: &Dfs,
    s: SubDatasetId,
    store: &mut MetaStore,
    cfg: &SelectionConfig,
    faults: Option<&FaultConfig>,
) -> SelectionOutcome {
    run_selection_resilient_traced(dfs, s, store, cfg, faults, &Recorder::off())
}

/// [`run_selection_resilient`] with a [`Recorder`] attached: the store's
/// shard loads and scrubs, the degraded-view assembly, and the selection run
/// itself all land in one trace. With a disabled recorder this is exactly
/// [`run_selection_resilient`].
pub fn run_selection_resilient_traced(
    dfs: &Dfs,
    s: SubDatasetId,
    store: &mut MetaStore,
    cfg: &SelectionConfig,
    faults: Option<&FaultConfig>,
    rec: &Recorder,
) -> SelectionOutcome {
    assert_eq!(
        store.manifest().blocks,
        dfs.block_count(),
        "metadata store describes a different DFS"
    );
    store.set_recorder(rec.clone());
    let truth = dfs.subdataset_distribution(s);
    let degraded = store.view_degraded(s);
    let mut scheduler = ResilientScheduler::new(dfs, &degraded);
    let mut out = match faults {
        Some(f) => run_selection_faulty_traced(dfs, &truth, &mut scheduler, cfg, f, rec),
        None => run_selection_traced(dfs, &truth, &mut scheduler, cfg, rec),
    };
    let mut meta = store.health().clone();
    meta.rungs = degraded.rung_counts();
    let actual = dfs.subdataset_total(s);
    if actual > 0 {
        let est = degraded.view().estimated_total();
        meta.est_error = (est as f64 - actual as f64).abs() / actual as f64;
    }
    out.meta = meta;
    out
}

/// Run one analysis job over per-node filtered partitions with the Hadoop
/// default reducer layout: one reducer per node, uniform partition shares.
///
/// Every node with a non-empty partition runs one map task starting at t=0
/// (the job is launched after selection completes).
pub fn run_analysis(filtered: &[u64], profile: &JobProfile, cfg: &AnalysisConfig) -> JobReport {
    run_analysis_traced(filtered, profile, cfg, SimTime::ZERO, &Recorder::off())
}

/// [`run_analysis`] with a [`Recorder`] attached. The analysis phase runs on
/// its own job-local clock starting at zero; `base` shifts every emitted
/// span onto the pipeline clock (pass the selection end so selection and
/// analysis line up on one timeline, or [`SimTime::ZERO`] for a standalone
/// job).
pub fn run_analysis_traced(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    base: SimTime,
    rec: &Recorder,
) -> JobReport {
    let m = filtered.len();
    assert!(m > 0, "need at least one partition");
    let default_plan = AggregationPlan {
        reducers: (0..m as u32).map(NodeId).collect(),
        shares: vec![1.0 / m as f64; m],
        est_traffic: 0,
    };
    run_analysis_aggregated_traced(filtered, profile, cfg, &default_plan, base, rec)
}

/// Run one analysis job with an explicit [`AggregationPlan`] (reducer
/// placement + weighted partition shares) — the traffic-aware extension of
/// Section IV-B.
pub fn run_analysis_aggregated(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    plan: &AggregationPlan,
) -> JobReport {
    run_analysis_aggregated_traced(
        filtered,
        profile,
        cfg,
        plan,
        SimTime::ZERO,
        &Recorder::off(),
    )
}

/// [`run_analysis_aggregated`] with a [`Recorder`] attached; see
/// [`run_analysis_traced`] for the meaning of `base`.
pub fn run_analysis_aggregated_traced(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    plan: &AggregationPlan,
    base: SimTime,
    rec: &Recorder,
) -> JobReport {
    let m = filtered.len();
    assert!(m > 0, "need at least one partition");
    let cluster = SimCluster::homogeneous(m, cfg.spec);
    run_analysis_on(filtered, profile, cfg, plan, cluster, base, rec)
}

/// Run one analysis job on a **heterogeneous** cluster (one spec per node)
/// with uniform reducers — the environment where Section IV-B's
/// capability-proportional targets matter.
pub fn run_analysis_hetero(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    specs: &[NodeSpec],
) -> JobReport {
    let m = filtered.len();
    assert_eq!(m, specs.len(), "one spec per partition/node");
    let plan = AggregationPlan {
        reducers: (0..m as u32).map(NodeId).collect(),
        shares: vec![1.0 / m as f64; m],
        est_traffic: 0,
    };
    let cluster = SimCluster::heterogeneous(specs);
    run_analysis_on(
        filtered,
        profile,
        cfg,
        &plan,
        cluster,
        SimTime::ZERO,
        &Recorder::off(),
    )
}

/// Run one analysis job routed by a [`ShufflePlan`] over a per-(node,
/// key-range) byte matrix (one row per node — see
/// [`crate::shuffle::range_matrix_truth`]). Map timing matches
/// [`run_analysis`] on the row sums; the shuffle sends each mapper's
/// output to the plan's per-range reducers (fragments of split ranges
/// spread by their shares, all integer splits largest-remainder exact),
/// and each reducer processes exactly what it received rather than a
/// uniform share.
pub fn run_analysis_shuffled(
    matrix: &[Vec<u64>],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    plan: &ShufflePlan,
) -> ShuffleOutcome {
    run_analysis_shuffled_traced(matrix, profile, cfg, plan, SimTime::ZERO, &Recorder::off())
}

/// [`run_analysis_shuffled`] with a [`Recorder`] attached; emits the same
/// span vocabulary as [`run_analysis_traced`] (`map`/`shuffle`/`reduce`
/// tasks under one `analysis` phase), shifted by `base`.
pub fn run_analysis_shuffled_traced(
    matrix: &[Vec<u64>],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    plan: &ShufflePlan,
    base: SimTime,
    rec: &Recorder,
) -> ShuffleOutcome {
    profile.validate();
    plan.validate();
    let m = matrix.len();
    assert!(m > 0, "need at least one node");
    let ranges = plan.key_ranges();
    assert!(
        matrix.iter().all(|row| row.len() == ranges),
        "matrix width must match the plan's key ranges"
    );
    assert_eq!(plan.reducers.len(), m, "one reducer slot per node expected");
    assert!(
        plan.reducers.iter().all(|r| r.index() < m),
        "reducer outside the cluster"
    );
    let mut cluster = SimCluster::homogeneous(m, cfg.spec);
    let filtered: Vec<u64> = matrix.iter().map(|row| row.iter().sum()).collect();

    // --- Map phase: identical to `run_analysis_on` over the row sums.
    let mut map_end = vec![SimTime::ZERO; m];
    let mut map_secs = Vec::with_capacity(m);
    for (i, &bytes) in filtered.iter().enumerate() {
        let (_, read_end) = cluster.node_mut(i).read_disk(cfg.task_overhead, bytes);
        let (_, cpu_end) = cluster
            .node_mut(i)
            .compute(read_end, bytes, profile.map_compute_factor);
        map_end[i] = cpu_end;
        map_secs.push(cpu_end.as_secs_f64());
        let span = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            base.as_micros(),
            SpanCtx::default().node(i),
        );
        rec.end(span, (base + cpu_end).as_micros());
        rec.observe("map_us", cpu_end.as_micros());
    }
    let first_map_end = map_end.iter().copied().min().unwrap_or(SimTime::ZERO);

    // --- Shuffle: mapper i's output is apportioned over its own key-range
    // column weights, each range's cell split over the plan's fragments,
    // and everything bound for one reducer slot batched into a single
    // transfer. Largest-remainder at both levels keeps the inflows summing
    // exactly to the total map output.
    let r_count = plan.reducers.len();
    let mut last_arrival = vec![first_map_end; r_count];
    let mut received = vec![0u64; r_count];
    let mut network_bytes = 0u64;
    let mut local_bytes = 0u64;
    for i in 0..m {
        let out = profile.map_output_bytes(filtered[i]);
        if out == 0 {
            continue;
        }
        let cells = crate::skewtune::apportion(out, &matrix[i]);
        let mut send = vec![0u64; r_count];
        for (g, &cell) in cells.iter().enumerate() {
            if cell == 0 {
                continue;
            }
            let frags = &plan.assignments[g];
            if frags.len() == 1 {
                send[frags[0].reducer] += cell;
            } else {
                let shares: Vec<f64> = frags.iter().map(|f| f.share).collect();
                for (f, bytes) in frags.iter().zip(shuffle::apportion_shares(cell, &shares)) {
                    send[f.reducer] += bytes;
                }
            }
        }
        for (ri, &bytes) in send.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            received[ri] += bytes;
            let rnode = plan.reducers[ri];
            if rnode.index() == i {
                local_bytes += bytes;
                last_arrival[ri] = last_arrival[ri].max(map_end[i]);
            } else {
                let (_, arr) = cluster.transfer(i, rnode.index(), map_end[i], bytes);
                network_bytes += bytes;
                last_arrival[ri] = last_arrival[ri].max(arr);
            }
        }
    }
    let shuffle_secs: Vec<f64> = last_arrival
        .iter()
        .map(|&t| t.saturating_sub(first_map_end).as_secs_f64())
        .collect();
    for (ri, &rnode) in plan.reducers.iter().enumerate() {
        let span = rec.begin(
            Category::Phase,
            "shuffle",
            Domain::Sim,
            (base + first_map_end).as_micros(),
            SpanCtx::default().node(rnode.index()),
        );
        rec.end(span, (base + last_arrival[ri]).as_micros());
    }
    rec.add("shuffle_bytes", network_bytes);

    // --- Reduce: each reducer processes exactly its inflow.
    let mut reduce_secs = Vec::with_capacity(r_count);
    let mut makespan = map_end.iter().copied().max().unwrap_or(SimTime::ZERO);
    for (ri, &rnode) in plan.reducers.iter().enumerate() {
        let inflow = received[ri];
        let ready = last_arrival[ri];
        let end = if inflow == 0 || profile.reduce_compute_factor == 0.0 {
            ready
        } else {
            let ready = ready + cfg.task_overhead;
            let (_, cpu_end) = cluster.node_mut(rnode.index()).compute(
                ready,
                inflow,
                profile.reduce_compute_factor,
            );
            let (_, w_end) = cluster.node_mut(rnode.index()).write_disk(cpu_end, inflow);
            w_end
        };
        reduce_secs.push((end.saturating_sub(ready)).as_secs_f64());
        makespan = makespan.max(end);
        let span = rec.begin(
            Category::Task,
            "reduce",
            Domain::Sim,
            (base + ready).as_micros(),
            SpanCtx::default().node(rnode.index()),
        );
        rec.end(span, (base + end).as_micros());
        rec.observe("reduce_us", end.saturating_sub(ready).as_micros());
    }
    let phase = rec.begin(
        Category::Phase,
        "analysis",
        Domain::Sim,
        base.as_micros(),
        SpanCtx::default().note(profile.name.clone()),
    );
    rec.end(phase, (base + makespan).as_micros());

    let cpu_util = (0..m)
        .map(|i| cluster.node(i).cpu().utilisation(makespan))
        .collect();
    ShuffleOutcome {
        report: JobReport {
            job: profile.name.clone(),
            map_secs,
            shuffle_secs,
            reduce_secs,
            makespan_secs: makespan.as_secs_f64(),
            shuffle_bytes: network_bytes,
            cpu_util,
        },
        received,
        network_bytes,
        local_bytes,
    }
}

/// Effective map throughput of a node for a given job, in bytes/second:
/// the harmonic combination of its disk rate and its job-adjusted CPU rate
/// (a map task reads then computes, so per-byte costs add). This is the
/// "computing capability" to feed Section IV-B's proportional targets
/// (`Algorithm1::with_capabilities`).
pub fn capability_of(spec: &NodeSpec, profile: &JobProfile) -> f64 {
    spec.validate();
    profile.validate();
    let per_byte = 1.0 / spec.disk_bps as f64 + profile.map_compute_factor / spec.cpu_bps as f64;
    1.0 / per_byte
}

/// Core analysis phase over an arbitrary prepared cluster. All spans are
/// emitted on the simulated clock shifted by `base` (the pipeline-relative
/// start of the job).
fn run_analysis_on(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    plan: &AggregationPlan,
    mut cluster: SimCluster,
    base: SimTime,
    rec: &Recorder,
) -> JobReport {
    profile.validate();
    plan.validate();
    let m = filtered.len();
    assert!(m > 0, "need at least one partition");
    assert_eq!(cluster.len(), m, "cluster size must match partitions");
    assert!(
        plan.reducers.iter().all(|r| r.index() < m),
        "reducer outside the cluster"
    );

    // --- Map phase: read partition + job CPU. One map task per node.
    let mut map_end = vec![SimTime::ZERO; m];
    let mut map_secs = Vec::with_capacity(m);
    for (i, &bytes) in filtered.iter().enumerate() {
        let (_, read_end) = cluster.node_mut(i).read_disk(cfg.task_overhead, bytes);
        let (_, cpu_end) = cluster
            .node_mut(i)
            .compute(read_end, bytes, profile.map_compute_factor);
        map_end[i] = cpu_end;
        map_secs.push(cpu_end.as_secs_f64());
        let span = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            base.as_micros(),
            SpanCtx::default().node(i),
        );
        rec.end(span, (base + cpu_end).as_micros());
        rec.observe("map_us", cpu_end.as_micros());
    }
    let first_map_end = map_end.iter().copied().min().unwrap_or(SimTime::ZERO);

    // --- Shuffle: mapper i sends `share_r · out_i` to each reducer r when
    // its map finishes; a reducer's own share stays local. Reducer r's
    // shuffle spans first_map_end → its last arrival.
    let r_count = plan.reducers.len();
    let mut last_arrival = vec![first_map_end; r_count];
    let mut shuffle_bytes = 0u64;
    for i in 0..m {
        let out = profile.map_output_bytes(filtered[i]);
        if out == 0 {
            continue;
        }
        for (ri, (&rnode, &share)) in plan.reducers.iter().zip(&plan.shares).enumerate() {
            let bytes = (out as f64 * share) as u64;
            if bytes == 0 {
                continue;
            }
            if rnode.index() == i {
                // Local share: available as soon as the map finishes.
                last_arrival[ri] = last_arrival[ri].max(map_end[i]);
            } else {
                let (_, arr) = cluster.transfer(i, rnode.index(), map_end[i], bytes);
                shuffle_bytes += bytes;
                last_arrival[ri] = last_arrival[ri].max(arr);
            }
        }
    }
    let shuffle_secs: Vec<f64> = last_arrival
        .iter()
        .map(|&t| t.saturating_sub(first_map_end).as_secs_f64())
        .collect();
    for (ri, &rnode) in plan.reducers.iter().enumerate() {
        let span = rec.begin(
            Category::Phase,
            "shuffle",
            Domain::Sim,
            (base + first_map_end).as_micros(),
            SpanCtx::default().node(rnode.index()),
        );
        rec.end(span, (base + last_arrival[ri]).as_micros());
    }
    rec.add("shuffle_bytes", shuffle_bytes);

    // --- Reduce: reducer r processes its share of the total map output.
    let total_out: u64 = filtered.iter().map(|&b| profile.map_output_bytes(b)).sum();
    let mut reduce_secs = Vec::with_capacity(r_count);
    let mut makespan = map_end.iter().copied().max().unwrap_or(SimTime::ZERO);
    for (ri, (&rnode, &share)) in plan.reducers.iter().zip(&plan.shares).enumerate() {
        let reduce_share = (total_out as f64 * share) as u64;
        let ready = last_arrival[ri];
        let end = if reduce_share == 0 || profile.reduce_compute_factor == 0.0 {
            ready
        } else {
            let ready = ready + cfg.task_overhead;
            let (_, cpu_end) = cluster.node_mut(rnode.index()).compute(
                ready,
                reduce_share,
                profile.reduce_compute_factor,
            );
            // Write the reduce output file.
            let (_, w_end) = cluster
                .node_mut(rnode.index())
                .write_disk(cpu_end, reduce_share);
            w_end
        };
        reduce_secs.push((end.saturating_sub(ready)).as_secs_f64());
        makespan = makespan.max(end);
        let span = rec.begin(
            Category::Task,
            "reduce",
            Domain::Sim,
            (base + ready).as_micros(),
            SpanCtx::default().node(rnode.index()),
        );
        rec.end(span, (base + end).as_micros());
        rec.observe("reduce_us", end.saturating_sub(ready).as_micros());
    }
    let phase = rec.begin(
        Category::Phase,
        "analysis",
        Domain::Sim,
        base.as_micros(),
        SpanCtx::default().note(profile.name.clone()),
    );
    rec.end(phase, (base + makespan).as_micros());

    let cpu_util = (0..m)
        .map(|i| cluster.node(i).cpu().utilisation(makespan))
        .collect();
    JobReport {
        job: profile.name.clone(),
        map_secs,
        shuffle_secs,
        reduce_secs,
        makespan_secs: makespan.as_secs_f64(),
        shuffle_bytes,
        cpu_util,
    }
}

/// Full pipeline: selection of `subdataset` under `scheduler`, then `job`
/// over the filtered partitions.
pub fn run_pipeline(
    dfs: &Dfs,
    subdataset: SubDatasetId,
    scheduler: &mut dyn MapScheduler,
    job: &JobProfile,
    sel_cfg: &SelectionConfig,
    ana_cfg: &AnalysisConfig,
) -> ExecutionReport {
    run_pipeline_traced(
        dfs,
        subdataset,
        scheduler,
        job,
        sel_cfg,
        ana_cfg,
        &Recorder::off(),
    )
}

/// [`run_pipeline`] with a [`Recorder`] attached: selection and analysis
/// spans share one simulated timeline (the analysis phase is based at the
/// selection end). With a disabled recorder this is exactly
/// [`run_pipeline`].
pub fn run_pipeline_traced(
    dfs: &Dfs,
    subdataset: SubDatasetId,
    scheduler: &mut dyn MapScheduler,
    job: &JobProfile,
    sel_cfg: &SelectionConfig,
    ana_cfg: &AnalysisConfig,
    rec: &Recorder,
) -> ExecutionReport {
    let truth = dfs.subdataset_distribution(subdataset);
    let selection = run_selection_traced(dfs, &truth, scheduler, sel_cfg, rec);
    let job = run_analysis_traced(&selection.per_node_bytes, job, ana_cfg, selection.end, rec);
    ExecutionReport {
        selection,
        job,
        obs: None,
    }
}

/// Run one analysis job over partitions when some nodes are dead: reducers
/// are placed only on survivors (uniform shares among them). Dead nodes
/// must hold empty partitions — the fault-tolerant selection rebuilt their
/// data on survivors — so they contribute no map output and no shuffle
/// traffic.
///
/// # Panics
/// Panics if a dead node still holds filtered bytes or no node survives.
pub fn run_analysis_surviving(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    alive: &[bool],
) -> JobReport {
    run_analysis_surviving_traced(
        filtered,
        profile,
        cfg,
        alive,
        SimTime::ZERO,
        &Recorder::off(),
    )
}

/// [`run_analysis_surviving`] with a [`Recorder`] attached; see
/// [`run_analysis_traced`] for the meaning of `base`.
pub fn run_analysis_surviving_traced(
    filtered: &[u64],
    profile: &JobProfile,
    cfg: &AnalysisConfig,
    alive: &[bool],
    base: SimTime,
    rec: &Recorder,
) -> JobReport {
    let m = filtered.len();
    assert_eq!(m, alive.len(), "one liveness flag per partition");
    let survivors: Vec<NodeId> = (0..m)
        .filter(|&n| alive[n])
        .map(|n| NodeId(n as u32))
        .collect();
    assert!(!survivors.is_empty(), "no surviving node to analyse on");
    for (n, &bytes) in filtered.iter().enumerate() {
        assert!(
            alive[n] || bytes == 0,
            "dead node {n} still credited with {bytes} filtered bytes"
        );
    }
    let share = 1.0 / survivors.len() as f64;
    let plan = AggregationPlan {
        shares: vec![share; survivors.len()],
        reducers: survivors,
        est_traffic: 0,
    };
    run_analysis_aggregated_traced(filtered, profile, cfg, &plan, base, rec)
}

/// Full pipeline under fault injection: fault-tolerant selection of
/// `subdataset`, then `job` over the filtered partitions with reducers on
/// the surviving nodes only.
pub fn run_pipeline_faulty(
    dfs: &Dfs,
    subdataset: SubDatasetId,
    scheduler: &mut dyn MapScheduler,
    job: &JobProfile,
    sel_cfg: &SelectionConfig,
    ana_cfg: &AnalysisConfig,
    faults: &FaultConfig,
) -> ExecutionReport {
    run_pipeline_faulty_traced(
        dfs,
        subdataset,
        scheduler,
        job,
        sel_cfg,
        ana_cfg,
        faults,
        &Recorder::off(),
    )
}

/// [`run_pipeline_faulty`] with a [`Recorder`] attached: the crash
/// lifecycle instants from selection and the survivor-only analysis spans
/// land on one simulated timeline. With a disabled recorder this is exactly
/// [`run_pipeline_faulty`].
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_faulty_traced(
    dfs: &Dfs,
    subdataset: SubDatasetId,
    scheduler: &mut dyn MapScheduler,
    job: &JobProfile,
    sel_cfg: &SelectionConfig,
    ana_cfg: &AnalysisConfig,
    faults: &FaultConfig,
    rec: &Recorder,
) -> ExecutionReport {
    let truth = dfs.subdataset_distribution(subdataset);
    let selection = run_selection_faulty_traced(dfs, &truth, scheduler, sel_cfg, faults, rec);
    let m = dfs.config().topology.len();
    let alive: Vec<bool> = (0..m)
        .map(|n| !selection.faults.crashed_nodes.contains(&n))
        .collect();
    let job = run_analysis_surviving_traced(
        &selection.per_node_bytes,
        job,
        ana_cfg,
        &alive,
        selection.end,
        rec,
    );
    ExecutionReport {
        selection,
        job,
        obs: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DataNetScheduler, LocalityScheduler};
    use datanet::{ElasticMapArray, Separation};
    use datanet_dfs::{DfsConfig, Record, Topology};

    /// Clustered dataset in the paper's regime: the per-block share of
    /// sub-dataset 0 follows a skewed Gamma law (Section II-B's model), so
    /// block weights are lumpy but no single block exceeds the per-node
    /// target.
    fn clustered_dfs(nodes: u32) -> Dfs {
        use datanet_stats::GammaDist;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let blocks = 160usize;
        let mut rng = StdRng::seed_from_u64(42);
        let g = GammaDist::new(0.5, 1.0);
        let shares: Vec<u64> = (0..blocks)
            .map(|_| (g.sample(&mut rng) * 25.0).min(90.0) as u64)
            .collect();
        let mut recs = Vec::new();
        for i in 0..(blocks as u64 * 100) {
            let block = (i / 100) as usize;
            let within = i % 100;
            let s = if within < shares[block] {
                0
            } else {
                1 + i % 25
            };
            recs.push(Record::new(SubDatasetId(s), i, 1000, i));
        }
        Dfs::write_random(
            DfsConfig {
                block_size: 100_000,
                replication: 3,
                topology: Topology::single_rack(nodes),
                seed: 1234,
            },
            recs,
        )
    }

    fn test_job() -> JobProfile {
        JobProfile::new("test", 3.0, 0.4, 1.0)
    }

    #[test]
    fn selection_credits_all_subdataset_bytes() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let mut sched = LocalityScheduler::new(&dfs);
        let out = run_selection(&dfs, &truth, &mut sched, &SelectionConfig::default());
        assert_eq!(
            out.per_node_bytes.iter().sum::<u64>(),
            dfs.subdataset_total(s)
        );
        assert_eq!(out.total_tasks, dfs.block_count());
        assert_eq!(out.bytes_read, dfs.total_bytes());
        assert!(out.end > SimTime::ZERO);
    }

    #[test]
    fn planned_makespan_matches_the_event_driven_engine() {
        use crate::scheduler::PlannedScheduler;
        use datanet::{Algorithm1, Assignment};
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let view = ElasticMapArray::build(&dfs, &Separation::All).view(s);
        let plan = Algorithm1::new(&dfs, &view).plan_balanced();
        let cfg = SelectionConfig::default(); // 1 slot per node
        let mut sched = PlannedScheduler::new(&plan, dfs.namenode());
        let out = run_selection(&dfs, &truth, &mut sched, &cfg);
        assert_eq!(
            planned_makespan(&dfs, &truth, &plan, &cfg),
            out.end,
            "closed form must reproduce the event-driven makespan exactly"
        );
        // An empty plan costs nothing.
        let empty = Assignment::new(8);
        assert_eq!(planned_makespan(&dfs, &truth, &empty, &cfg), SimTime::ZERO);
    }

    #[test]
    fn locality_scheduler_is_mostly_local_but_imbalanced() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let mut sched = LocalityScheduler::new(&dfs);
        let out = run_selection(&dfs, &truth, &mut sched, &SelectionConfig::default());
        assert!(
            out.locality_fraction() > 0.8,
            "got {}",
            out.locality_fraction()
        );
        assert!(
            out.imbalance() > 1.2,
            "clustered data should imbalance the blind scheduler, got {}",
            out.imbalance()
        );
    }

    #[test]
    fn datanet_scheduler_balances_and_reads_less() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let view = ElasticMapArray::build(&dfs, &Separation::All).view(s);

        let mut base = LocalityScheduler::new(&dfs);
        let without = run_selection(&dfs, &truth, &mut base, &SelectionConfig::default());
        let mut dn = DataNetScheduler::new(&dfs, &view);
        let with = run_selection(&dfs, &truth, &mut dn, &SelectionConfig::default());

        assert!(
            with.imbalance() < without.imbalance(),
            "datanet {} vs locality {}",
            with.imbalance(),
            without.imbalance()
        );
        assert!(
            with.bytes_read <= without.bytes_read,
            "block skipping must not read more"
        );
        assert_eq!(
            with.per_node_bytes.iter().sum::<u64>(),
            without.per_node_bytes.iter().sum::<u64>()
        );
    }

    #[test]
    fn analysis_makespan_tracks_slowest_map() {
        let balanced = vec![1_000_000u64; 8];
        let mut skewed = vec![500_000u64; 8];
        skewed[0] = 4_500_000; // same total, one straggler
        let cfg = AnalysisConfig::default();
        let jb = run_analysis(&balanced, &test_job(), &cfg);
        let js = run_analysis(&skewed, &test_job(), &cfg);
        assert!(
            js.makespan_secs > jb.makespan_secs,
            "skewed {} vs balanced {}",
            js.makespan_secs,
            jb.makespan_secs
        );
        // Map spread mirrors the partition spread.
        assert!(js.map_summary().max() / js.map_summary().min() > 5.0);
        assert!(jb.map_summary().max() / jb.map_summary().min() < 1.05);
        // Under skew, the idle nodes' CPU utilisation craters while the
        // straggler's stays high.
        assert!(js.util_summary().min() < 0.3 * js.util_summary().max());
        assert!(jb.util_summary().min() > 0.7 * jb.util_summary().max());
    }

    #[test]
    fn imbalance_inflates_shuffle_times() {
        // Figure 7's mechanism: reducers wait for the straggler map.
        let balanced = vec![1_000_000u64; 8];
        let mut skewed = vec![500_000u64; 8];
        skewed[0] = 4_500_000;
        let cfg = AnalysisConfig::default();
        let jb = run_analysis(&balanced, &test_job(), &cfg);
        let js = run_analysis(&skewed, &test_job(), &cfg);
        assert!(
            js.shuffle_summary().max() > 2.0 * jb.shuffle_summary().max(),
            "skewed shuffle {} vs balanced {}",
            js.shuffle_summary().max(),
            jb.shuffle_summary().max()
        );
    }

    #[test]
    fn zero_output_job_skips_shuffle_and_reduce() {
        let parts = vec![1_000_000u64; 4];
        let job = JobProfile::new("scanonly", 1.0, 0.0, 0.0);
        let r = run_analysis(&parts, &job, &AnalysisConfig::default());
        assert!(r.shuffle_secs.iter().all(|&s| s == 0.0));
        assert!(r.reduce_secs.iter().all(|&s| s == 0.0));
        assert!(r.makespan_secs > 0.0);
    }

    #[test]
    fn pipeline_composes_selection_and_job() {
        let dfs = clustered_dfs(4);
        let s = SubDatasetId(0);
        let mut sched = LocalityScheduler::new(&dfs);
        let rep = run_pipeline(
            &dfs,
            s,
            &mut sched,
            &test_job(),
            &SelectionConfig::default(),
            &AnalysisConfig::default(),
        );
        assert!(rep.total_secs() > rep.job.makespan_secs);
        assert_eq!(
            rep.selection.per_node_bytes.iter().sum::<u64>(),
            dfs.subdataset_total(s)
        );
    }

    #[test]
    fn deterministic_pipeline() {
        let dfs = clustered_dfs(4);
        let s = SubDatasetId(0);
        let run = || {
            let mut sched = LocalityScheduler::new(&dfs);
            run_pipeline(
                &dfs,
                s,
                &mut sched,
                &test_job(),
                &SelectionConfig::default(),
                &AnalysisConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capability_aware_partitions_beat_uniform_on_hetero_cluster() {
        // 4 fast nodes (2x CPU) + 4 slow. Equal partitions leave the slow
        // nodes straggling; capability-proportional partitions equalise
        // completion.
        let fast = NodeSpec {
            cpu_bps: 400_000_000,
            ..NodeSpec::marmot()
        };
        let slow = NodeSpec {
            cpu_bps: 200_000_000,
            ..NodeSpec::marmot()
        };
        let specs: Vec<NodeSpec> = (0..8).map(|i| if i < 4 { fast } else { slow }).collect();
        let total = 8_000_000u64;
        let uniform = vec![total / 8; 8];
        let job = test_job();
        // Proportional to effective map throughput (disk + job CPU).
        let cap_fast = capability_of(&fast, &job);
        let cap_slow = capability_of(&slow, &job);
        let cap_sum = 4.0 * (cap_fast + cap_slow);
        let proportional: Vec<u64> = (0..8)
            .map(|i| {
                let c = if i < 4 { cap_fast } else { cap_slow };
                (total as f64 * c / cap_sum) as u64
            })
            .collect();
        let cfg = AnalysisConfig::default();
        let ju = run_analysis_hetero(&uniform, &job, &cfg, &specs);
        let jp = run_analysis_hetero(&proportional, &job, &cfg, &specs);
        assert!(
            jp.makespan_secs < ju.makespan_secs,
            "proportional {} !< uniform {}",
            jp.makespan_secs,
            ju.makespan_secs
        );
        // Uniform partitions: fast maps finish ~2x sooner than slow.
        let u_ratio = ju.map_summary().max() / ju.map_summary().min();
        let p_ratio = jp.map_summary().max() / jp.map_summary().min();
        assert!(u_ratio > 1.2, "got {u_ratio}");
        assert!(p_ratio < u_ratio, "{p_ratio} !< {u_ratio}");
    }

    #[test]
    fn aggregation_plan_reduces_shuffle_bytes() {
        // Concentrated map output: placing reducers on the data-rich nodes
        // with skewed shares must cut network traffic without changing
        // results semantics.
        let mut filtered = vec![50_000u64; 8];
        filtered[2] = 2_000_000;
        filtered[5] = 1_500_000;
        let job = test_job();
        let cfg = AnalysisConfig::default();
        let default_run = run_analysis(&filtered, &job, &cfg);
        let plan = datanet::plan_aggregation(
            &filtered
                .iter()
                .map(|&b| job.map_output_bytes(b))
                .collect::<Vec<_>>(),
            2,
            2.0,
        );
        let planned_run = run_analysis_aggregated(&filtered, &job, &cfg, &plan);
        assert!(
            planned_run.shuffle_bytes < default_run.shuffle_bytes,
            "planned {} !< default {}",
            planned_run.shuffle_bytes,
            default_run.shuffle_bytes
        );
        assert_eq!(planned_run.shuffle_secs.len(), 2);
        assert_eq!(planned_run.reduce_secs.len(), 2);
    }

    #[test]
    fn default_analysis_matches_uniform_plan() {
        let filtered = vec![100_000u64, 300_000, 50_000, 250_000];
        let job = test_job();
        let cfg = AnalysisConfig::default();
        let a = run_analysis(&filtered, &job, &cfg);
        let plan = datanet::AggregationPlan {
            reducers: (0..4).map(datanet_dfs::NodeId).collect(),
            shares: vec![0.25; 4],
            est_traffic: 0,
        };
        let b = run_analysis_aggregated(&filtered, &job, &cfg, &plan);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn aggregation_reducer_outside_cluster_panics() {
        let plan = datanet::AggregationPlan {
            reducers: vec![datanet_dfs::NodeId(9)],
            shares: vec![1.0],
            est_traffic: 0,
        };
        run_analysis_aggregated(
            &[1_000, 1_000],
            &test_job(),
            &AnalysisConfig::default(),
            &plan,
        );
    }

    #[test]
    fn two_slots_roughly_halve_the_selection_phase() {
        let dfs = clustered_dfs(8);
        let truth = dfs.subdataset_distribution(SubDatasetId(0));
        let run = |slots: u32| {
            let mut sched = LocalityScheduler::new(&dfs);
            let cfg = SelectionConfig {
                slots_per_node: slots,
                ..Default::default()
            };
            run_selection(&dfs, &truth, &mut sched, &cfg)
        };
        let one = run(1);
        let two = run(2);
        // Same data is filtered either way.
        assert_eq!(
            one.per_node_bytes.iter().sum::<u64>(),
            two.per_node_bytes.iter().sum::<u64>()
        );
        let ratio = two.end.as_secs_f64() / one.end.as_secs_f64();
        assert!(
            (0.4..0.75).contains(&ratio),
            "2 slots should roughly halve the phase, got ratio {ratio}"
        );
    }

    #[test]
    fn cross_rack_penalty_slows_remote_heavy_schedules() {
        // Two racks, rack-aware placement, an oversubscribed spine: a
        // schedule with remote reads pays more when the spine is 8x slower.
        use datanet_dfs::RackAwarePlacement;
        let recs = (0..4000u64).map(|i| Record::new(SubDatasetId(i % 9), i, 500, i));
        let dfs = Dfs::write_dataset(
            DfsConfig {
                block_size: 50_000,
                replication: 2,
                topology: Topology::new(8, 4),
                seed: 77,
            },
            recs,
            &RackAwarePlacement,
        );
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let view = datanet::ElasticMapArray::build(&dfs, &datanet::Separation::All).view(s);
        let run = |cross_rack_bps: u64| {
            let mut sched = DataNetScheduler::new(&dfs, &view);
            let cfg = SelectionConfig {
                cross_rack_bps,
                ..Default::default()
            };
            run_selection(&dfs, &truth, &mut sched, &cfg)
        };
        let flat = run(NodeSpec::marmot().nic_bps);
        let oversubscribed = run(NodeSpec::marmot().nic_bps / 8);
        assert!(
            flat.locality_fraction() < 1.0,
            "test needs at least one remote read to be meaningful"
        );
        assert!(
            oversubscribed.end >= flat.end,
            "slower spine cannot make the phase faster"
        );
    }

    #[test]
    #[should_panic]
    fn truth_length_mismatch_panics() {
        let dfs = clustered_dfs(4);
        let mut sched = LocalityScheduler::new(&dfs);
        run_selection(&dfs, &[1, 2, 3], &mut sched, &SelectionConfig::default());
    }

    #[test]
    fn fault_free_plan_matches_healthy_engine() {
        let dfs = clustered_dfs(8);
        let truth = dfs.subdataset_distribution(SubDatasetId(0));
        let cfg = SelectionConfig::default();
        let mut a = LocalityScheduler::new(&dfs);
        let healthy = run_selection(&dfs, &truth, &mut a, &cfg);
        let mut b = LocalityScheduler::new(&dfs);
        let faults = FaultConfig::new(datanet_cluster::FaultPlan::none(8));
        let faulty = run_selection_faulty(&dfs, &truth, &mut b, &cfg, &faults);
        assert_eq!(healthy, faulty, "empty fault plan must not perturb a run");
    }

    #[test]
    fn crash_mid_selection_credits_bytes_exactly_once() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let cfg = SelectionConfig::default();
        let mut probe = LocalityScheduler::new(&dfs);
        let healthy = run_selection(&dfs, &truth, &mut probe, &cfg);
        let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);

        let plan = datanet_cluster::FaultPlan::none(8).crash(3, crash_at);
        let mut sched = LocalityScheduler::new(&dfs);
        let out = run_selection_faulty(&dfs, &truth, &mut sched, &cfg, &FaultConfig::new(plan));
        assert_eq!(out.faults.crashed_nodes, vec![3]);
        assert_eq!(out.per_node_bytes[3], 0, "the dead node keeps nothing");
        assert_eq!(out.tasks_per_node[3], 0);
        assert_eq!(
            out.per_node_bytes.iter().sum::<u64>(),
            dfs.subdataset_total(s),
            "every sub-dataset byte is credited exactly once despite the crash"
        );
        assert!(out.faults.requeued_tasks > 0, "mid-phase crash loses work");
        assert_eq!(out.faults.reexecuted_tasks, out.faults.requeued_tasks);
        assert!(out.faults.wasted_bytes_read > 0);
        assert!(
            out.faults.unrecoverable_blocks.is_empty(),
            "3-way replication"
        );
        assert!(out.faults.recovery_secs > 0.0);
        assert!(out.end > healthy.end, "recovery costs time");
    }

    #[test]
    fn faulty_run_is_deterministic_for_fixed_seed() {
        let dfs = clustered_dfs(8);
        let truth = dfs.subdataset_distribution(SubDatasetId(0));
        let cfg = SelectionConfig::default();
        let run = || {
            let plan = datanet_cluster::FaultPlan::random(8, 0xF417, 0.3, SimTime::from_secs(2));
            let mut sched = LocalityScheduler::new(&dfs);
            run_selection_faulty(&dfs, &truth, &mut sched, &cfg, &FaultConfig::new(plan))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn datanet_scheduler_survives_crashes_too() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let view = ElasticMapArray::build(&dfs, &Separation::All).view(s);
        let cfg = SelectionConfig::default();
        let mut probe = DataNetScheduler::new(&dfs, &view);
        let healthy = run_selection(&dfs, &truth, &mut probe, &cfg);
        let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);
        let plan = datanet_cluster::FaultPlan::none(8).crash(5, crash_at);
        let mut sched = DataNetScheduler::new(&dfs, &view);
        let out = run_selection_faulty(&dfs, &truth, &mut sched, &cfg, &FaultConfig::new(plan));
        assert_eq!(
            out.per_node_bytes.iter().sum::<u64>(),
            dfs.subdataset_total(s),
            "DataNet re-plan recovers all bytes"
        );
        assert_eq!(out.per_node_bytes[5], 0);
    }

    #[test]
    fn slow_window_stretches_the_phase() {
        let dfs = clustered_dfs(8);
        let truth = dfs.subdataset_distribution(SubDatasetId(0));
        let cfg = SelectionConfig::default();
        let mut a = LocalityScheduler::new(&dfs);
        let base = run_selection_faulty(
            &dfs,
            &truth,
            &mut a,
            &cfg,
            &FaultConfig::new(datanet_cluster::FaultPlan::none(8)),
        );
        let plan = datanet_cluster::FaultPlan::none(8).slow(
            0,
            SimTime::ZERO,
            SimTime::from_secs(3600),
            4.0,
        );
        let mut b = LocalityScheduler::new(&dfs);
        let slowed = run_selection_faulty(&dfs, &truth, &mut b, &cfg, &FaultConfig::new(plan));
        assert!(
            slowed.end > base.end,
            "a 4x-slowed node must lengthen the phase: {:?} !> {:?}",
            slowed.end,
            base.end
        );
        assert_eq!(
            slowed.per_node_bytes.iter().sum::<u64>(),
            base.per_node_bytes.iter().sum::<u64>(),
            "slowness never loses data"
        );
    }

    #[test]
    fn unreplicated_blocks_die_with_their_node() {
        // Replication 1: node 1's blocks exist nowhere else, so killing it
        // makes them unrecoverable — reported, not silently dropped.
        let recs = (0..400u64).map(|i| Record::new(SubDatasetId(i % 3), i, 100, i));
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 2_000,
                replication: 1,
                topology: Topology::single_rack(2),
                seed: 9,
            },
            recs,
        );
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let cfg = SelectionConfig::default();
        let plan = datanet_cluster::FaultPlan::none(2).crash(1, SimTime::from_millis(20));
        let mut sched = LocalityScheduler::new(&dfs);
        let out = run_selection_faulty(&dfs, &truth, &mut sched, &cfg, &FaultConfig::new(plan));
        assert!(
            !out.faults.unrecoverable_blocks.is_empty(),
            "unreplicated blocks on the dead node must be reported lost"
        );
        let lost_bytes: u64 = out
            .faults
            .unrecoverable_blocks
            .iter()
            .map(|&b| truth[b.index()])
            .sum();
        assert_eq!(
            out.per_node_bytes.iter().sum::<u64>() + lost_bytes,
            dfs.subdataset_total(s),
            "credited + reported-lost covers the whole sub-dataset"
        );
    }

    #[test]
    fn retry_budget_zero_abandons_lost_work() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let cfg = SelectionConfig::default();
        let mut probe = LocalityScheduler::new(&dfs);
        let healthy = run_selection(&dfs, &truth, &mut probe, &cfg);
        let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);
        let plan = datanet_cluster::FaultPlan::none(8).crash(2, crash_at);
        let mut sched = LocalityScheduler::new(&dfs);
        let faults = FaultConfig {
            max_retries: 0,
            ..FaultConfig::new(plan)
        };
        let out = run_selection_faulty(&dfs, &truth, &mut sched, &cfg, &faults);
        assert!(
            !out.faults.abandoned_blocks.is_empty(),
            "with no retry budget, executed-then-lost blocks are abandoned"
        );
        assert_eq!(out.faults.requeued_tasks, 0);
        assert!(
            out.per_node_bytes.iter().sum::<u64>() < dfs.subdataset_total(s),
            "abandoned work leaves a gap, and the stats say exactly where"
        );
    }

    #[test]
    fn faulty_pipeline_places_reducers_on_survivors() {
        let dfs = clustered_dfs(8);
        let s = SubDatasetId(0);
        let truth = dfs.subdataset_distribution(s);
        let cfg = SelectionConfig::default();
        let mut probe = LocalityScheduler::new(&dfs);
        let healthy = run_selection(&dfs, &truth, &mut probe, &cfg);
        let crash_at = SimTime::from_micros(healthy.end.as_micros() / 2);
        let plan = datanet_cluster::FaultPlan::none(8).crash(6, crash_at);
        let mut sched = LocalityScheduler::new(&dfs);
        let rep = run_pipeline_faulty(
            &dfs,
            s,
            &mut sched,
            &test_job(),
            &cfg,
            &AnalysisConfig::default(),
            &FaultConfig::new(plan),
        );
        assert!(rep.faults().any());
        assert_eq!(
            rep.job.shuffle_secs.len(),
            7,
            "one reducer per surviving node"
        );
        assert_eq!(
            rep.selection.per_node_bytes.iter().sum::<u64>(),
            dfs.subdataset_total(s)
        );
    }
}
