//! Pluggable map-task schedulers.
//!
//! The engine drives a demand-driven ("pull") protocol exactly like Hadoop's
//! TaskTracker heartbeats: when a node's task slot frees up, the scheduler
//! is asked for that node's next block.

use datanet::planner::{Algorithm1, Assignment, BalancePolicy};
use datanet::{DegradedView, RungCounts, SubDatasetView};
use datanet_dfs::{BlockId, Dfs, NameNode, NodeId};
use datanet_obs::{Category, Domain, Recorder, SpanCtx};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Demand-driven map-task source.
pub trait MapScheduler {
    /// Serve a task request from `node`. Returns the block and whether it
    /// is node-local, or `None` when this scheduler has nothing (left) for
    /// that node.
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)>;

    /// Number of blocks not yet handed out.
    fn remaining(&self) -> usize;

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Fail-stop notification: `node` crashed and `requeue` is every block
    /// it had been handed (in-flight *and* completed — its filtered
    /// partitions died with it). The scheduler must make those blocks
    /// servable again to the survivors and stop counting on the dead node.
    /// The engine guarantees each requeued block has at least one surviving
    /// replica; blocks with none are triaged as unrecoverable before this
    /// call.
    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]);

    /// Record the re-plan that [`MapScheduler::node_lost`] just performed:
    /// a `replan` instant at `now_us` (simulated clock) attributed to the
    /// dead node, which closes the crash→suspicion→re-plan chain in
    /// traces. The engine calls this right after `node_lost`; overrides add
    /// a scheduler-specific note (what the re-plan actually did) but must
    /// keep the `replan` instant itself.
    fn record_replan(&self, rec: &Recorder, now_us: u64, dead: NodeId, requeued: usize) {
        rec.instant(
            Category::Replan,
            "replan",
            Domain::Sim,
            now_us,
            SpanCtx::default()
                .node(dead.index())
                .note(format!("requeued {requeued}")),
        );
    }
}

/// Hadoop's default block-locality scheduling (the paper's "without
/// DataNet"): serve a node-local unassigned block when one exists, else an
/// arbitrary unassigned block (a remote read). Entirely oblivious to
/// sub-dataset content. Local picks are in an arbitrary (seeded, per-node
/// shuffled) order, matching Hadoop's hash-ordered split lists — a
/// lowest-id rule would accidentally stripe a contiguous hot region evenly
/// across nodes and hide the very imbalance the paper measures.
#[derive(Debug, Clone)]
pub struct LocalityScheduler {
    /// Unassigned blocks (ordered for determinism).
    pub(crate) remaining: BTreeSet<BlockId>,
    /// `local[n]` = blocks with a replica on node `n`, in serving order.
    pub(crate) local: Vec<Vec<BlockId>>,
}

impl LocalityScheduler {
    /// Schedule all blocks of the DFS (the baseline cannot skip any block:
    /// it has no idea which ones contain the target sub-dataset).
    pub fn new(dfs: &Dfs) -> Self {
        Self::with_scope(dfs.namenode(), (0..dfs.block_count() as u32).map(BlockId))
    }

    /// Schedule an explicit scope of blocks.
    pub fn with_scope(namenode: &NameNode, scope: impl IntoIterator<Item = BlockId>) -> Self {
        let remaining: BTreeSet<BlockId> = scope.into_iter().collect();
        let mut rng = StdRng::seed_from_u64(0x10CA_1125_u64 ^ remaining.len() as u64);
        let local = (0..namenode.node_count())
            .map(|n| {
                let mut blocks: Vec<BlockId> = namenode
                    .blocks_on(NodeId(n as u32))
                    .iter()
                    .copied()
                    .filter(|b| remaining.contains(b))
                    .collect();
                blocks.shuffle(&mut rng);
                blocks
            })
            .collect();
        Self { remaining, local }
    }
}

impl MapScheduler for LocalityScheduler {
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        // Local preference: next unassigned block in the node's (shuffled)
        // local list.
        let local_pick = self.local[node.index()]
            .iter()
            .copied()
            .find(|b| self.remaining.contains(b));
        if let Some(b) = local_pick {
            self.remaining.remove(&b);
            return Some((b, true));
        }
        // Fall back to any unassigned block (remote read).
        let b = *self.remaining.iter().next()?;
        self.remaining.remove(&b);
        Some((b, false))
    }

    fn remaining(&self) -> usize {
        self.remaining.len()
    }

    fn name(&self) -> &'static str {
        "locality"
    }

    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        // The dead node stops requesting; drop its local list so the
        // baseline never routes to it again, and put its blocks back in the
        // global pool. Survivors that hold replicas still find them in
        // their own (unchanged, accurate) local lists.
        self.local[node.index()].clear();
        self.remaining.extend(requeue.iter().copied());
    }

    fn record_replan(&self, rec: &Recorder, now_us: u64, dead: NodeId, requeued: usize) {
        rec.instant(
            Category::Replan,
            "replan",
            Domain::Sim,
            now_us,
            SpanCtx::default().node(dead.index()).note(format!(
                "locality: requeued {requeued} into pool of {}",
                self.remaining.len()
            )),
        );
    }
}

/// The DataNet scheduler: Algorithm 1 driven live by worker pulls
/// (the paper's "with DataNet"). Scope is the sub-dataset's view, so blocks
/// without target data are skipped entirely.
#[derive(Debug, Clone)]
pub struct DataNetScheduler {
    alg: Algorithm1,
}

impl DataNetScheduler {
    /// Build from the DFS and an ElasticMap view of the target sub-dataset
    /// with the default (paced) balance policy.
    pub fn new(dfs: &Dfs, view: &SubDatasetView) -> Self {
        Self {
            alg: Algorithm1::new(dfs, view),
        }
    }

    /// Build with an explicit balance policy (for ablations).
    pub fn with_policy(dfs: &Dfs, view: &SubDatasetView, policy: BalancePolicy) -> Self {
        Self {
            alg: Algorithm1::with_policy(dfs.namenode(), view, policy),
        }
    }
}

impl MapScheduler for DataNetScheduler {
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        self.alg.next_task_for(node)
    }

    fn remaining(&self) -> usize {
        self.alg.remaining()
    }

    fn name(&self) -> &'static str {
        "datanet"
    }

    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        // DataNet re-plans: Algorithm 1 strips the dead node from the
        // bipartite graph, reinserts the lost blocks against surviving
        // replicas, and recomputes capability-proportional targets over
        // the survivors.
        self.alg.node_lost(node, requeue);
    }

    fn record_replan(&self, rec: &Recorder, now_us: u64, dead: NodeId, requeued: usize) {
        rec.instant(
            Category::Replan,
            "replan",
            Domain::Sim,
            now_us,
            SpanCtx::default().node(dead.index()).note(format!(
                "algorithm1: requeued {requeued}, recomputed survivor targets, {} unassigned",
                self.alg.remaining()
            )),
        );
    }
}

/// The degradation-ladder scheduler: DataNet placement for every block the
/// (possibly degraded) metadata still covers — exact sizes on rung 1, the
/// δ-weighted bloom estimate on rung 2, both inside the wrapped
/// [`Algorithm1`] — plus the locality baseline for rung-3 blocks whose
/// shards were lost beyond repair. Membership there is unknowable, so those
/// blocks cannot be skipped: they are scanned exactly as a metadata-free
/// Hadoop would scan them, and only them.
#[derive(Debug, Clone)]
pub struct ResilientScheduler {
    alg: Algorithm1,
    fallback: LocalityScheduler,
    /// Blocks Algorithm 1 owns (rungs 1–2), for requeue routing.
    view_blocks: BTreeSet<BlockId>,
    rungs: RungCounts,
}

impl ResilientScheduler {
    /// Build from a degraded metadata read. With a healthy view this
    /// degenerates to exactly the [`DataNetScheduler`] behaviour (the
    /// fallback scope is empty).
    pub fn new(dfs: &Dfs, degraded: &DegradedView) -> Self {
        let view = degraded.view();
        Self {
            alg: Algorithm1::new(dfs, view),
            fallback: LocalityScheduler::with_scope(
                dfs.namenode(),
                degraded.unknown_blocks().iter().copied(),
            ),
            view_blocks: view.blocks().collect(),
            rungs: degraded.rung_counts(),
        }
    }

    /// Per-rung block counts of the view this scheduler was built from.
    pub fn rung_counts(&self) -> RungCounts {
        self.rungs
    }
}

impl MapScheduler for ResilientScheduler {
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        // Metadata-informed placement first; rung-3 scanning mops up after
        // — the balanced part of the phase should not wait behind blind
        // scans of possibly-empty blocks.
        self.alg
            .next_task_for(node)
            .or_else(|| self.fallback.next_task(node))
    }

    fn remaining(&self) -> usize {
        self.alg.remaining() + self.fallback.remaining()
    }

    fn name(&self) -> &'static str {
        "datanet-resilient"
    }

    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        // Route each orphan back to whichever rung owned it: Algorithm 1
        // re-plans its own blocks against the survivors and would reject
        // rung-3 strays, which belong to the baseline pool.
        let (planned, unknown): (Vec<BlockId>, Vec<BlockId>) = requeue
            .iter()
            .copied()
            .partition(|b| self.view_blocks.contains(b));
        self.alg.node_lost(node, &planned);
        self.fallback.node_lost(node, &unknown);
    }

    fn record_replan(&self, rec: &Recorder, now_us: u64, dead: NodeId, requeued: usize) {
        rec.instant(
            Category::Replan,
            "replan",
            Domain::Sim,
            now_us,
            SpanCtx::default().node(dead.index()).note(format!(
                "resilient: requeued {requeued} across rungs (planned {}, fallback {})",
                self.alg.remaining(),
                self.fallback.remaining()
            )),
        );
    }
}

/// Serves a precomputed [`Assignment`] (e.g. from the Ford–Fulkerson
/// planner): each node draws from its own planned queue.
#[derive(Debug, Clone)]
pub struct PlannedScheduler {
    /// Per-node planned blocks, consumed front to back.
    queues: Vec<std::collections::VecDeque<BlockId>>,
    /// Whether each planned block was local in the plan.
    locality: Vec<Vec<bool>>,
    remaining: usize,
    /// Replica map, consulted to re-home blocks after a node loss.
    namenode: NameNode,
    /// `alive[n]` — node `n` has not been reported lost.
    alive: Vec<bool>,
}

impl PlannedScheduler {
    /// Wrap an assignment. `namenode` is used to recompute locality flags.
    pub fn new(assignment: &Assignment, namenode: &NameNode) -> Self {
        let mut queues = Vec::with_capacity(assignment.node_count());
        let mut locality = Vec::with_capacity(assignment.node_count());
        let mut remaining = 0;
        for n in 0..assignment.node_count() {
            let blocks = assignment.tasks_of(NodeId(n as u32));
            remaining += blocks.len();
            queues.push(blocks.iter().copied().collect());
            locality.push(
                blocks
                    .iter()
                    .map(|&b| namenode.is_local(b, NodeId(n as u32)))
                    .collect(),
            );
        }
        Self {
            queues,
            locality,
            remaining,
            namenode: namenode.clone(),
            alive: vec![true; assignment.node_count()],
        }
    }
}

impl MapScheduler for PlannedScheduler {
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        let q = &mut self.queues[node.index()];
        let b = q.pop_front()?;
        let l = &mut self.locality[node.index()];
        let local = l.remove(0);
        self.remaining -= 1;
        Some((b, local))
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn name(&self) -> &'static str {
        "planned"
    }

    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        self.alive[node.index()] = false;
        // The dead node's unserved queue and its already-served blocks both
        // need new homes (the plan did not anticipate the crash).
        let orphans: Vec<BlockId> = self.queues[node.index()].drain(..).collect();
        self.locality[node.index()].clear();
        self.remaining += requeue.len(); // orphans were still counted
        for &b in orphans.iter().chain(requeue) {
            // Greedy repair of the static plan: append to the surviving
            // replica holder with the shortest queue (local read), else to
            // the least-loaded survivor (remote read). Ties break toward
            // the lowest node id for determinism.
            let survivors = self.namenode.surviving_replicas(b, &self.alive);
            let target = survivors
                .iter()
                .copied()
                .min_by_key(|n| (self.queues[n.index()].len(), n.index()))
                .unwrap_or_else(|| {
                    (0..self.alive.len())
                        .filter(|&n| self.alive[n])
                        .min_by_key(|&n| (self.queues[n].len(), n))
                        .map(|n| NodeId(n as u32))
                        .expect("at least one survivor")
                });
            self.queues[target.index()].push_back(b);
            self.locality[target.index()].push(survivors.contains(&target));
        }
    }

    fn record_replan(&self, rec: &Recorder, now_us: u64, dead: NodeId, requeued: usize) {
        rec.instant(
            Category::Replan,
            "replan",
            Domain::Sim,
            now_us,
            SpanCtx::default().node(dead.index()).note(format!(
                "planned: greedily re-homed {requeued} onto least-loaded survivors"
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet::{ElasticMapArray, Separation};
    use datanet_dfs::{DfsConfig, Record, SubDatasetId, Topology};

    fn dfs() -> Dfs {
        let recs = (0..1000u64).map(|i| {
            let s = if i < 300 { 0 } else { 1 + i % 10 };
            Record::new(SubDatasetId(s), i, 100, i)
        });
        Dfs::write_random(
            DfsConfig {
                block_size: 5_000,
                replication: 3,
                topology: Topology::single_rack(4),
                seed: 3,
            },
            recs,
        )
    }

    #[test]
    fn locality_hands_out_every_block_once() {
        let d = dfs();
        let mut s = LocalityScheduler::new(&d);
        assert_eq!(s.remaining(), d.block_count());
        let mut seen = std::collections::HashSet::new();
        let mut node = 0u32;
        while let Some((b, _)) = s.next_task(NodeId(node % 4)) {
            assert!(seen.insert(b), "block {b} issued twice");
            node += 1;
        }
        assert_eq!(seen.len(), d.block_count());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn locality_prefers_local_blocks() {
        let d = dfs();
        let mut s = LocalityScheduler::new(&d);
        // First request from node 0 must be a local block if node 0 holds
        // any replicas (with 3/4 replication it certainly does).
        let (b, local) = s.next_task(NodeId(0)).unwrap();
        assert!(local);
        assert!(d.namenode().is_local(b, NodeId(0)));
    }

    #[test]
    fn locality_falls_back_to_remote() {
        // Single node holds nothing: 1-node topology means it holds all,
        // so craft a 2-node namenode where node 1 holds nothing.
        let mut nn = NameNode::new(2);
        nn.register(BlockId(0), vec![NodeId(0)]);
        nn.register(BlockId(1), vec![NodeId(0)]);
        let mut s = LocalityScheduler::with_scope(&nn, vec![BlockId(0), BlockId(1)]);
        let (b, local) = s.next_task(NodeId(1)).unwrap();
        assert!(!local);
        assert_eq!(b, BlockId(0));
    }

    #[test]
    fn datanet_scheduler_skips_empty_blocks() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        let mut s = DataNetScheduler::new(&d, &view);
        assert_eq!(s.remaining(), view.block_count());
        assert!(view.block_count() < d.block_count(), "scope must shrink");
        let mut count = 0;
        let mut node = 0u32;
        while s.next_task(NodeId(node % 4)).is_some() {
            count += 1;
            node += 1;
        }
        assert_eq!(count, view.block_count());
    }

    #[test]
    fn delay_scheduler_defers_then_serves_remote() {
        // Node 1 holds nothing; with a skip budget of 2 it must return None
        // twice and then hand out a remote block.
        let mut nn = NameNode::new(2);
        nn.register(BlockId(0), vec![NodeId(0)]);
        nn.register(BlockId(1), vec![NodeId(0)]);
        let inner = LocalityScheduler::with_scope(&nn, vec![BlockId(0), BlockId(1)]);
        let mut s = DelayScheduler {
            inner,
            skips: vec![0; 2],
            max_skips: 2,
        };
        assert!(s.next_task(NodeId(1)).is_none());
        assert!(s.next_task(NodeId(1)).is_none());
        let (b, local) = s.next_task(NodeId(1)).expect("budget exhausted");
        assert!(!local);
        assert!(b == BlockId(0) || b == BlockId(1));
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    fn delay_scheduler_never_defers_local_work() {
        let d = dfs();
        let mut s = DelayScheduler::new(&d, 3);
        let (_, local) = s.next_task(NodeId(0)).expect("node 0 has local blocks");
        assert!(local);
    }

    #[test]
    fn delay_scheduler_still_drains_everything() {
        let d = dfs();
        let mut s = DelayScheduler::new(&d, 2);
        let mut served = 0;
        let mut spins = 0;
        while s.remaining() > 0 {
            for n in 0..4u32 {
                if s.next_task(NodeId(n)).is_some() {
                    served += 1;
                }
            }
            spins += 1;
            assert!(spins < 10_000, "scheduler wedged");
        }
        assert_eq!(served, d.block_count());
    }

    #[test]
    fn locality_node_lost_requeues_and_sidelines_node() {
        let d = dfs();
        let mut s = LocalityScheduler::new(&d);
        let (b0, _) = s.next_task(NodeId(1)).unwrap();
        let (b1, _) = s.next_task(NodeId(1)).unwrap();
        let before = s.remaining();
        s.node_lost(NodeId(1), &[b0, b1]);
        assert_eq!(s.remaining(), before + 2);
        // Survivors eventually drain everything, including b0 and b1.
        let mut seen = std::collections::HashSet::new();
        let mut node = 0u32;
        while let Some((b, _)) = s.next_task(NodeId([0, 2, 3][node as usize % 3])) {
            seen.insert(b);
            node += 1;
        }
        assert!(seen.contains(&b0) && seen.contains(&b1));
        assert_eq!(seen.len(), d.block_count());
    }

    #[test]
    fn planned_node_lost_rehomes_queue_and_served_blocks() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        let plan = datanet::FordFulkersonPlanner::new(&d, &view).plan();
        let total = plan.assigned_blocks();
        let mut s = PlannedScheduler::new(&plan, d.namenode());
        // Node 2 takes one task and dies with it.
        let served = s.next_task(NodeId(2)).map(|(b, _)| b);
        let requeue: Vec<BlockId> = served.into_iter().collect();
        s.node_lost(NodeId(2), &requeue);
        assert_eq!(s.remaining(), total, "served block is back in a queue");
        assert!(
            s.next_task(NodeId(2)).is_none(),
            "dead node's queue is empty"
        );
        // Survivors drain the full plan, nothing lost or duplicated.
        let mut seen = std::collections::HashSet::new();
        for n in [0u32, 1, 3] {
            while let Some((b, _)) = s.next_task(NodeId(n)) {
                assert!(seen.insert(b), "block {b} served twice");
            }
        }
        assert_eq!(seen.len(), total);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn resilient_with_healthy_view_matches_datanet() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        let healthy = datanet::DegradedView::new(view.clone(), vec![], vec![]);
        let mut a = DataNetScheduler::new(&d, &view);
        let mut b = ResilientScheduler::new(&d, &healthy);
        assert_eq!(a.remaining(), b.remaining());
        assert!(!b.rung_counts().any_degraded());
        let mut node = 0u32;
        loop {
            let (x, y) = (a.next_task(NodeId(node % 4)), b.next_task(NodeId(node % 4)));
            assert_eq!(x, y, "identical pull sequence must match");
            if x.is_none() {
                break;
            }
            node += 1;
        }
    }

    #[test]
    fn resilient_scans_unknown_blocks_after_planned_work() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        // Pretend two blocks outside the view lost their metadata shard.
        let in_view: std::collections::HashSet<BlockId> = view.blocks().collect();
        let unknown: Vec<BlockId> = (0..d.block_count() as u32)
            .map(BlockId)
            .filter(|b| !in_view.contains(b))
            .take(2)
            .collect();
        assert_eq!(unknown.len(), 2, "need blocks outside the view");
        let degraded = datanet::DegradedView::new(
            view.clone(),
            unknown.clone(),
            vec![datanet::ShardSource::Lost],
        );
        let mut s = ResilientScheduler::new(&d, &degraded);
        assert_eq!(s.remaining(), view.block_count() + 2);
        assert_eq!(s.rung_counts().fallback, 2);
        let mut seen = std::collections::HashSet::new();
        let mut node = 0u32;
        while let Some((b, _)) = s.next_task(NodeId(node % 4)) {
            assert!(seen.insert(b), "block {b} issued twice");
            node += 1;
        }
        for b in &unknown {
            assert!(seen.contains(b), "rung-3 block {b} must be scanned");
        }
        assert_eq!(seen.len(), view.block_count() + 2);
    }

    #[test]
    fn resilient_node_lost_routes_requeues_to_the_right_rung() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        let in_view: std::collections::HashSet<BlockId> = view.blocks().collect();
        let unknown: Vec<BlockId> = (0..d.block_count() as u32)
            .map(BlockId)
            .filter(|b| !in_view.contains(b))
            .collect();
        assert!(!unknown.is_empty());
        let degraded = datanet::DegradedView::new(view.clone(), unknown.clone(), vec![]);
        let mut s = ResilientScheduler::new(&d, &degraded);
        let total = s.remaining();
        // Node 1 draws one planned and (after draining its planned share)
        // rung-3 work too; kill it holding a mixed bag.
        let mut held = Vec::new();
        while held.len() < 3 {
            match s.next_task(NodeId(1)) {
                Some((b, _)) => held.push(b),
                None => break,
            }
        }
        let before = s.remaining();
        s.node_lost(NodeId(1), &held);
        assert_eq!(s.remaining(), before + held.len());
        // Survivors still drain everything exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut node = 0u32;
        while let Some((b, _)) = s.next_task(NodeId([0, 2, 3][node as usize % 3])) {
            assert!(seen.insert(b), "block {b} issued twice");
            node += 1;
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn planned_scheduler_serves_the_plan_exactly() {
        let d = dfs();
        let view = ElasticMapArray::build(&d, &Separation::All).view(SubDatasetId(0));
        let plan = datanet::FordFulkersonPlanner::new(&d, &view).plan();
        let mut s = PlannedScheduler::new(&plan, d.namenode());
        assert_eq!(s.remaining(), plan.assigned_blocks());
        for n in 0..4u32 {
            let expected: Vec<BlockId> = plan.tasks_of(NodeId(n)).to_vec();
            let mut got = Vec::new();
            while let Some((b, local)) = s.next_task(NodeId(n)) {
                assert!(local, "flow plans are all-local");
                got.push(b);
            }
            assert_eq!(got, expected);
        }
        assert_eq!(s.remaining(), 0);
    }
}

/// Delay scheduling (Zaharia et al., EuroSys 2010) on top of the locality
/// baseline: a node with no local unassigned block *waits* for up to
/// `max_skips` heartbeats before accepting a remote block, trading a little
/// latency for near-perfect locality. Like plain locality scheduling it is
/// oblivious to sub-dataset content, so it inherits the paper's imbalance —
/// included to show that better *locality* does not fix the *distribution*
/// problem.
#[derive(Debug, Clone)]
pub struct DelayScheduler {
    inner: LocalityScheduler,
    /// Consecutive skips per node.
    skips: Vec<u32>,
    max_skips: u32,
}

impl DelayScheduler {
    /// Wrap the full-DFS locality baseline with a skip budget.
    pub fn new(dfs: &Dfs, max_skips: u32) -> Self {
        let inner = LocalityScheduler::new(dfs);
        let nodes = dfs.config().topology.len();
        Self {
            inner,
            skips: vec![0; nodes],
            max_skips,
        }
    }

    /// Whether the node still has a local unassigned block.
    fn has_local(&self, node: NodeId) -> bool {
        self.inner.local[node.index()]
            .iter()
            .any(|b| self.inner.remaining.contains(b))
    }
}

impl MapScheduler for DelayScheduler {
    fn next_task(&mut self, node: NodeId) -> Option<(BlockId, bool)> {
        if self.inner.remaining.is_empty() {
            return None;
        }
        if !self.has_local(node) && self.skips[node.index()] < self.max_skips {
            // Defer: maybe a local block frees up (it cannot here — blocks
            // are not returned — but real Hadoop defers for new splits and
            // speculative re-execution; the waiting cost is what we model).
            self.skips[node.index()] += 1;
            return None;
        }
        self.skips[node.index()] = 0;
        self.inner.next_task(node)
    }

    fn remaining(&self) -> usize {
        self.inner.remaining()
    }

    fn name(&self) -> &'static str {
        "delay"
    }

    fn node_lost(&mut self, node: NodeId, requeue: &[BlockId]) {
        self.inner.node_lost(node, requeue);
        // Fresh work just appeared: reset every skip budget so survivors
        // re-evaluate instead of sitting out their delay.
        self.skips.fill(0);
    }
}
