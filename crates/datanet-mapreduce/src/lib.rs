//! A MapReduce execution engine over the simulated cluster — the framework
//! substrate the paper's experiments run on.
//!
//! The paper's experimental pipeline (Section V-A) is reproduced end to end:
//!
//! 1. **Selection** ([`engine::run_selection`]): map tasks scan every
//!    in-scope block, filter the target sub-dataset and store it locally.
//!    Which node scans which block is decided by a pluggable
//!    [`scheduler::MapScheduler`]:
//!    [`scheduler::LocalityScheduler`] (Hadoop's block-locality default,
//!    the paper's "without DataNet"),
//!    [`scheduler::DataNetScheduler`] (Algorithm 1, "with DataNet"),
//!    [`scheduler::PlannedScheduler`] (any precomputed assignment, e.g.
//!    Ford–Fulkerson).
//! 2. **Analysis** ([`engine::run_analysis`]): a MapReduce job
//!    ([`job::JobProfile`]) runs over the filtered per-node partitions —
//!    map (disk + job-specific CPU), shuffle (all-to-all transfers over the
//!    simulated NICs), reduce. The report records per-node map times,
//!    per-reducer shuffle times and the makespan — Figures 5, 6 and 7.
//! 3. **SkewTune-like baseline** ([`skewtune`]): the runtime-migration
//!    alternative the paper discusses (Section V-A-4) — rebalance the
//!    filtered partitions after selection and account the network cost.

pub mod engine;
pub mod job;
pub mod report;
pub mod scheduler;
pub mod shuffle;
pub mod skewtune;
pub mod speculation;

pub use engine::{
    capability_of, planned_makespan, run_analysis, run_analysis_aggregated,
    run_analysis_aggregated_traced, run_analysis_hetero, run_analysis_shuffled,
    run_analysis_shuffled_traced, run_analysis_surviving, run_analysis_surviving_traced,
    run_analysis_traced, run_pipeline, run_pipeline_faulty, run_pipeline_faulty_traced,
    run_pipeline_traced, run_selection, run_selection_faulty, run_selection_faulty_traced,
    run_selection_resilient, run_selection_resilient_traced, run_selection_traced, AnalysisConfig,
    FaultConfig, SelectionConfig,
};
pub use job::JobProfile;
pub use report::{
    total_secs, ExecutionReport, FaultStats, JobReport, SelectionOutcome, ShuffleOutcome,
};
pub use scheduler::{
    DataNetScheduler, DelayScheduler, LocalityScheduler, MapScheduler, PlannedScheduler,
    ResilientScheduler,
};
pub use shuffle::{
    key_range_of, planned_load_bound, range_matrix_estimate, range_matrix_truth, Fragment,
    ShufflePlan, ShufflePlanner,
};
pub use skewtune::{
    apportion, fragments_needed, rebalance, split_even, split_threshold, MigrationOutcome,
};
pub use speculation::{
    speculative_map_phase, speculative_map_phase_with_slowdowns, SpeculationConfig,
    SpeculativeMapOutcome,
};
