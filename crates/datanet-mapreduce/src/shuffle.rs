//! Distribution-aware shuffle: reduce-side partitioning from the key
//! distribution the ElasticMap already holds (ROADMAP item 1).
//!
//! The paper's largest single win (4–5× shuffle speedup, Figure 7) comes
//! from what crosses the network *after* the map side that Algorithm 1
//! balances. This module closes that gap on the reduce side:
//!
//! 1. **Per-key-range pricing.** The intermediate key space is hashed into
//!    a fixed number of ranges ([`key_range_of`]) and Equation 6 is
//!    evaluated *per range*: τ₁ blocks contribute their exact `|s∩b|`
//!    bytes scaled by the block's write-time range profile, τ₂ blocks
//!    contribute `δ` scaled the same way ([`range_matrix_estimate`]). The
//!    result is a per-(node, range) byte matrix — the per-block statistics
//!    argument of *Only Aggressive Elephants are Fast Elephants* applied
//!    to the shuffle.
//! 2. **Locality-first assignment.** [`ShufflePlanner::plan`] walks ranges
//!    heaviest-first (LPT) and parks each one on the node that already
//!    holds most of its bytes — the bipartite graph's node side — subject
//!    to a fair-share load cap, so a range whose bytes are concentrated on
//!    its writer node never crosses the network at all.
//! 3. **Heavy-key splitting.** A range heavier than
//!    [`crate::skewtune::split_threshold`] fragments across reducers
//!    ([`crate::skewtune::fragments_needed`]) instead of serialising one
//!    reducer — the proactive version of the SkewTune migration this
//!    crate's [`crate::skewtune`] module models after the fact. The split
//!    is merged back deterministically by the data plane (sequence-number
//!    sort), so answers are byte-identical to an unsplit run.
//!
//! The hash baseline ([`ShufflePlan::hash`]) is the classic
//! `hash(key) % reducers` partitioner: correct, skew-blind, and
//! locality-blind — exactly what the `datanet-bench --bin shuffle` gate
//! measures the planner against.

use crate::skewtune::{apportion, fragments_needed, split_even, split_threshold};
use datanet::SubDatasetView;
use datanet_dfs::{Block, Dfs, NodeId, SubDatasetId};
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer — the same deterministic scrambler the record
/// payloads use, applied here to spread keys over ranges and the hash
/// baseline over reducers.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The key range an intermediate key falls into. Both planes use this:
/// the planner prices ranges from write-time statistics, the data plane
/// routes each emitted `(key, value)` pair through the same function, so
/// plan and execution always agree on range boundaries.
///
/// # Panics
/// Panics if `ranges == 0`.
pub fn key_range_of(key: u64, ranges: usize) -> usize {
    assert!(ranges > 0, "need at least one key range");
    (splitmix(key) % ranges as u64) as usize
}

/// One fragment of a key range: which reducer slot receives it and what
/// fraction of the range's bytes it carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// Index into [`ShufflePlan::reducers`].
    pub reducer: usize,
    /// Fraction of the range routed to this fragment (fragments of one
    /// range sum to 1).
    pub share: f64,
}

/// A reduce-side partitioning: which node runs each reducer slot and how
/// every key range maps onto those slots — possibly split across several
/// when the range is heavier than the split threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShufflePlan {
    /// Node hosting each reducer slot.
    pub reducers: Vec<NodeId>,
    /// Per key range: the fragments it splits into (a single full-share
    /// fragment when the range is light).
    pub assignments: Vec<Vec<Fragment>>,
    /// Estimated bytes per key range the plan was built from (zeros for
    /// the hash baseline, which does not look at the distribution).
    pub est_ranges: Vec<u64>,
}

impl ShufflePlan {
    /// The classic hash partitioner: range `g` goes whole to reducer
    /// `scramble(g) % m`. Skew- and locality-blind; the baseline every
    /// aware plan is measured against.
    ///
    /// # Panics
    /// Panics if `reducers` is empty or `ranges == 0`.
    pub fn hash(ranges: usize, reducers: Vec<NodeId>) -> Self {
        assert!(!reducers.is_empty(), "need at least one reducer");
        assert!(ranges > 0, "need at least one key range");
        let m = reducers.len();
        let assignments = (0..ranges)
            .map(|g| {
                vec![Fragment {
                    reducer: (splitmix(g as u64) % m as u64) as usize,
                    share: 1.0,
                }]
            })
            .collect();
        Self {
            reducers,
            assignments,
            est_ranges: vec![0; ranges],
        }
    }

    /// Number of key ranges this plan covers.
    pub fn key_ranges(&self) -> usize {
        self.assignments.len()
    }

    /// Deterministic fragment pick for the `seq`-th emitted pair of a key
    /// range: share-weighted, but a pure function of `(range, seq)`, so
    /// every replay routes identically and the merge step can restore the
    /// exact emission order from the sequence numbers alone.
    ///
    /// Returns the *reducer slot* index.
    pub fn fragment_slot(&self, range: usize, seq: u64) -> usize {
        let frags = &self.assignments[range];
        if frags.len() == 1 {
            return frags[0].reducer;
        }
        let u = splitmix(seq ^ (range as u64).rotate_left(32)) as f64 / u64::MAX as f64;
        let mut acc = 0.0;
        for f in frags {
            acc += f.share;
            if u < acc {
                return f.reducer;
            }
        }
        frags.last().expect("validated non-empty").reducer
    }

    /// Planned bytes per reducer slot when the estimate matrix is exact:
    /// each range's estimate apportioned over its fragment shares
    /// (largest-remainder, so the loads sum to the estimate total).
    pub fn planned_load(&self) -> Vec<u64> {
        let mut load = vec![0u64; self.reducers.len()];
        for (g, frags) in self.assignments.iter().enumerate() {
            let shares: Vec<f64> = frags.iter().map(|f| f.share).collect();
            for (f, bytes) in frags
                .iter()
                .zip(apportion_shares(self.est_ranges[g], &shares))
            {
                load[f.reducer] += bytes;
            }
        }
        load
    }

    /// Structural invariants: aligned lengths, at least one reducer, every
    /// fragment pointing at a real slot, and per-range shares that are
    /// positive and sum to 1.
    ///
    /// # Panics
    /// Panics on violation.
    pub fn validate(&self) {
        assert!(!self.reducers.is_empty(), "plan needs reducers");
        assert!(!self.assignments.is_empty(), "plan needs key ranges");
        assert_eq!(
            self.assignments.len(),
            self.est_ranges.len(),
            "one estimate per key range"
        );
        for (g, frags) in self.assignments.iter().enumerate() {
            assert!(!frags.is_empty(), "range {g} has no fragment");
            let mut sum = 0.0;
            for f in frags {
                assert!(f.reducer < self.reducers.len(), "range {g}: bad slot");
                assert!(
                    f.share.is_finite() && f.share > 0.0,
                    "range {g}: non-positive share"
                );
                sum += f.share;
            }
            assert!((sum - 1.0).abs() < 1e-9, "range {g}: shares sum to {sum}");
        }
    }
}

/// Exact integer split of `total` over f64 `shares` (largest remainder on
/// the share weights scaled to integers). Shares are the validated plan
/// fractions, so a 2^32 fixed-point scaling loses nothing that matters.
pub(crate) fn apportion_shares(total: u64, shares: &[f64]) -> Vec<u64> {
    let weights: Vec<u64> = shares
        .iter()
        .map(|&s| (s * 4_294_967_296.0).round() as u64)
        .collect();
    apportion(total, &weights)
}

/// Builds [`ShufflePlan`]s from a per-(node, key-range) byte matrix.
#[derive(Debug, Clone)]
pub struct ShufflePlanner {
    split_factor: f64,
    /// Disables placement entirely and funnels every range onto slot 0 —
    /// always `false` in production. See
    /// [`ShufflePlanner::plant_reducer_overload`].
    overload: bool,
}

impl ShufflePlanner {
    /// A planner that splits any range heavier than `split_factor` fair
    /// shares.
    ///
    /// # Panics
    /// Panics unless `split_factor` is finite and ≥ 1.
    pub fn new(split_factor: f64) -> Self {
        assert!(
            split_factor.is_finite() && split_factor >= 1.0,
            "split factor must be a finite value >= 1"
        );
        Self {
            split_factor,
            overload: false,
        }
    }

    /// Fault injection for the simulation checker: route *every* key range
    /// to reducer slot 0, ignoring both locality and the load cap — the
    /// reducer-overload bug the `reduce-skew` oracle exists to catch.
    /// Hidden from docs; never set in production code.
    #[doc(hidden)]
    pub fn plant_reducer_overload(&mut self) {
        self.overload = true;
    }

    /// Build a plan from `est`, the per-(node, key-range) byte estimate
    /// matrix (one row per node; [`range_matrix_estimate`] produces it
    /// from the ElasticMap). One reducer slot per node.
    ///
    /// Ranges are walked heaviest-first. A range heavier than the split
    /// threshold fragments into even pieces (at most one per reducer);
    /// each fragment goes to the unused node holding the most of the
    /// range's bytes whose load stays under `fair + threshold`, falling
    /// back to the least-loaded unused node — the standard LPT argument
    /// then bounds every planned load by `fair + max(threshold,
    /// ceil(max_range / m))`, which is exactly what the `reduce-skew`
    /// oracle checks (plus estimation slack).
    ///
    /// # Panics
    /// Panics if `est` is empty, rows are ragged, or there are no ranges.
    pub fn plan(&self, est: &[Vec<u64>]) -> ShufflePlan {
        let m = est.len();
        assert!(m > 0, "need at least one node");
        let ranges = est[0].len();
        assert!(ranges > 0, "need at least one key range");
        assert!(
            est.iter().all(|row| row.len() == ranges),
            "ragged estimate matrix"
        );
        let reducers: Vec<NodeId> = (0..m as u32).map(NodeId).collect();
        let totals: Vec<u64> = (0..ranges)
            .map(|g| est.iter().map(|row| row[g]).sum())
            .collect();

        if self.overload {
            // Planted bug: everything onto slot 0.
            return ShufflePlan {
                reducers,
                assignments: (0..ranges)
                    .map(|_| {
                        vec![Fragment {
                            reducer: 0,
                            share: 1.0,
                        }]
                    })
                    .collect(),
                est_ranges: totals,
            };
        }

        let total: u64 = totals.iter().sum();
        let fair = total / m as u64;
        let threshold = split_threshold(total, m, self.split_factor);
        let cap = fair + threshold;
        let mut load = vec![0u64; m];
        let mut assignments: Vec<Vec<Fragment>> = vec![Vec::new(); ranges];

        let mut order: Vec<usize> = (0..ranges).collect();
        order.sort_by(|&a, &b| totals[b].cmp(&totals[a]).then(a.cmp(&b)));
        for g in order {
            let t = totals[g];
            if t == 0 {
                // Nothing to place; park on the hash slot so empty ranges
                // stay deterministic and load-neutral.
                assignments[g] = vec![Fragment {
                    reducer: (splitmix(g as u64) % m as u64) as usize,
                    share: 1.0,
                }];
                continue;
            }
            let nfrags = fragments_needed(t, threshold).min(m);
            let frag_bytes = split_even(t, nfrags);
            // Nodes ranked by how much of this range they already hold —
            // the node side of the bipartite distribution graph.
            let mut local_order: Vec<usize> = (0..m).collect();
            local_order.sort_by(|&a, &b| est[b][g].cmp(&est[a][g]).then(a.cmp(&b)));
            let mut used = vec![false; m];
            let mut frags = Vec::with_capacity(nfrags);
            for &fb in &frag_bytes {
                // Most-local unused node that still fits under the cap…
                let pick = local_order
                    .iter()
                    .copied()
                    .find(|&n| !used[n] && load[n] + fb <= cap)
                    // …otherwise the least-loaded unused node (exists:
                    // nfrags ≤ m).
                    .unwrap_or_else(|| {
                        (0..m)
                            .filter(|&n| !used[n])
                            .min_by_key(|&n| (load[n], n))
                            .expect("nfrags <= m leaves an unused node")
                    });
                used[pick] = true;
                load[pick] += fb;
                frags.push(Fragment {
                    reducer: pick,
                    share: fb as f64 / t as f64,
                });
            }
            assignments[g] = frags;
        }

        let plan = ShufflePlan {
            reducers,
            assignments,
            est_ranges: totals,
        };
        plan.validate();
        plan
    }
}

/// The write-time statistic: a block's bytes per key range, over all its
/// records (keyed by record timestamp — the proxy the meta-data plane
/// prices ranges with).
fn block_range_profile(block: &Block, ranges: usize) -> Vec<u64> {
    let mut profile = vec![0u64; ranges];
    for r in block.records() {
        profile[key_range_of(r.timestamp, ranges)] += u64::from(r.size);
    }
    profile
}

/// Equation 6 per key range, from the ElasticMap view: every block's Eq. 6
/// weight (`|s∩b|` for τ₁, `δ` for τ₂) is spread over ranges by the
/// block's write-time range profile and credited to the block's primary
/// holder. Rows are nodes, columns are key ranges.
pub fn range_matrix_estimate(dfs: &Dfs, view: &SubDatasetView, ranges: usize) -> Vec<Vec<u64>> {
    let nodes = dfs.namenode().node_count();
    let mut matrix = vec![vec![0u64; ranges]; nodes];
    for block in dfs.blocks() {
        let weight = view.weight(block.id());
        if weight == 0 {
            continue;
        }
        let home = dfs.replicas(block.id())[0].index();
        let profile = block_range_profile(block, ranges);
        for (g, bytes) in apportion(weight, &profile).into_iter().enumerate() {
            matrix[home][g] += bytes;
        }
    }
    matrix
}

/// Ground-truth per-(node, key-range) bytes of sub-dataset `s`: every
/// record credited to its block's primary holder and its timestamp's key
/// range. What the simulation engine executes against (the estimate
/// matrix is what the planner sees).
pub fn range_matrix_truth(dfs: &Dfs, s: SubDatasetId, ranges: usize) -> Vec<Vec<u64>> {
    let nodes = dfs.namenode().node_count();
    let mut matrix = vec![vec![0u64; ranges]; nodes];
    for block in dfs.blocks() {
        let home = dfs.replicas(block.id())[0].index();
        for r in block.records().iter().filter(|r| r.subdataset == s) {
            matrix[home][key_range_of(r.timestamp, ranges)] += u64::from(r.size);
        }
    }
    matrix
}

/// The load bound a correct planner guarantees, in the same byte units as
/// `range_totals`: `fair + max(threshold, ceil(max_range / m))`. The
/// second term covers the unavoidable case of a single range heavier than
/// `m` whole thresholds, which even a perfect splitter can only spread
/// over all `m` reducers.
pub fn planned_load_bound(range_totals: &[u64], reducers: usize, split_factor: f64) -> u64 {
    assert!(reducers > 0, "need at least one reducer");
    let total: u64 = range_totals.iter().sum();
    let fair = total / reducers as u64;
    let threshold = split_threshold(total, reducers, split_factor);
    let max_range = range_totals.iter().copied().max().unwrap_or(0);
    let widest = max_range.div_ceil(reducers as u64);
    fair + threshold.max(widest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{DfsConfig, Record, Topology};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A DFS whose target sub-dataset is strongly node-clustered: block k
    /// holds records whose timestamps all hash into a range "owned" by
    /// node k % n, so an aware plan can keep almost everything local.
    fn clustered_dfs(nodes: u32, ranges: usize) -> (Dfs, SubDatasetId) {
        let mut rng = StdRng::seed_from_u64(7);
        let target = SubDatasetId(1);
        let mut records = Vec::new();
        // Pre-compute a timestamp per range by rejection.
        let mut ts_for_range = vec![None; ranges];
        let mut ts = 0u64;
        while ts_for_range.iter().any(Option::is_none) {
            let g = key_range_of(ts, ranges);
            if ts_for_range[g].is_none() {
                ts_for_range[g] = Some(ts);
            }
            ts += 1;
        }
        for i in 0..2_000u64 {
            let g = (i % ranges as u64) as usize;
            let ts = ts_for_range[g].unwrap();
            let sub = if rng.gen_bool(0.8) {
                target
            } else {
                SubDatasetId(2)
            };
            records.push(Record::new(sub, ts, 200 + (i % 5) as u32 * 40, i));
        }
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 4_000,
                replication: 2,
                topology: Topology::single_rack(nodes),
                seed: 99,
            },
            records,
        );
        (dfs, target)
    }

    #[test]
    fn key_ranges_cover_and_spread() {
        let ranges = 16;
        let mut hits = vec![0usize; ranges];
        for k in 0..16_000u64 {
            hits[key_range_of(k, ranges)] += 1;
        }
        // SplitMix spreads sequential keys nearly uniformly.
        assert!(hits.iter().all(|&h| h > 600), "{hits:?}");
    }

    #[test]
    fn hash_plan_is_whole_range_and_valid() {
        let plan = ShufflePlan::hash(32, (0..4).map(NodeId).collect());
        plan.validate();
        assert!(plan.assignments.iter().all(|f| f.len() == 1));
        // Every slot gets some range (32 ranges over 4 slots).
        let mut seen = [false; 4];
        for f in &plan.assignments {
            seen[f[0].reducer] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn planner_respects_the_load_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let m = rng.gen_range(2..10usize);
            let ranges = rng.gen_range(4..40usize);
            let est: Vec<Vec<u64>> = (0..m)
                .map(|_| (0..ranges).map(|_| rng.gen_range(0..50_000u64)).collect())
                .collect();
            let factor = rng.gen_range(1.0..1.6);
            let plan = ShufflePlanner::new(factor).plan(&est);
            plan.validate();
            let totals = &plan.est_ranges;
            let bound = planned_load_bound(totals, m, factor);
            let max = plan.planned_load().into_iter().max().unwrap();
            // +ranges for per-range largest-remainder rounding.
            assert!(
                max <= bound + ranges as u64,
                "max load {max} > bound {bound} (m={m}, ranges={ranges})"
            );
        }
    }

    #[test]
    fn heavy_range_splits_across_reducers() {
        // One range dwarfs the rest: it must fragment, and its fragments
        // must land on distinct reducers.
        let m = 4;
        let mut est = vec![vec![100u64; 8]; m];
        est[0][3] = 100_000;
        let plan = ShufflePlanner::new(1.0).plan(&est);
        let frags = &plan.assignments[3];
        assert!(frags.len() >= 2, "heavy range did not split: {frags:?}");
        let mut slots: Vec<usize> = frags.iter().map(|f| f.reducer).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), frags.len(), "fragments share a reducer");
    }

    #[test]
    fn uniform_ranges_stay_whole() {
        let est = vec![vec![1_000u64; 16]; 4];
        let plan = ShufflePlanner::new(1.25).plan(&est);
        assert!(plan.assignments.iter().all(|f| f.len() == 1));
    }

    #[test]
    fn aware_plan_prefers_local_reducers() {
        // Diagonal concentration: node i holds all of range i. The aware
        // plan must put each range's reducer on its holder.
        let m = 6;
        let est: Vec<Vec<u64>> = (0..m)
            .map(|i| (0..m).map(|g| if g == i { 10_000 } else { 0 }).collect())
            .collect();
        let plan = ShufflePlanner::new(1.25).plan(&est);
        for (g, frags) in plan.assignments.iter().enumerate() {
            assert_eq!(frags.len(), 1);
            assert_eq!(frags[0].reducer, g, "range {g} placed off its holder");
        }
    }

    #[test]
    fn planted_overload_funnels_everything_to_slot_zero() {
        let est = vec![vec![1_000u64; 8]; 4];
        let mut planner = ShufflePlanner::new(1.25);
        planner.plant_reducer_overload();
        let plan = planner.plan(&est);
        plan.validate();
        assert!(plan
            .assignments
            .iter()
            .all(|f| f.len() == 1 && f[0].reducer == 0));
        let load = plan.planned_load();
        assert_eq!(load[0], 8 * 4 * 1_000);
        assert!(load[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn estimate_matrix_tracks_truth_on_clustered_data() {
        let (dfs, target) = clustered_dfs(5, 10);
        let arr = datanet::ElasticMapArray::build(&dfs, &datanet::Separation::Alpha(0.3));
        let view = arr.view(target);
        let est = range_matrix_estimate(&dfs, &view, 10);
        let truth = range_matrix_truth(&dfs, target, 10);
        let est_total: u64 = est.iter().flatten().sum();
        let truth_total: u64 = truth.iter().flatten().sum();
        assert_eq!(est_total, view.estimated_total());
        assert_eq!(truth_total, dfs.subdataset_total(target));
        // Equation 6 keeps the totals close on an α-separated workload.
        let err = (est_total as f64 - truth_total as f64).abs() / truth_total as f64;
        assert!(err < 0.5, "estimate off by {err:.2}");
    }

    #[test]
    fn fragment_slot_is_deterministic_and_share_weighted() {
        let plan = ShufflePlan {
            reducers: (0..4).map(NodeId).collect(),
            assignments: vec![vec![
                Fragment {
                    reducer: 1,
                    share: 0.75,
                },
                Fragment {
                    reducer: 3,
                    share: 0.25,
                },
            ]],
            est_ranges: vec![1_000],
        };
        plan.validate();
        let picks: Vec<usize> = (0..10_000).map(|s| plan.fragment_slot(0, s)).collect();
        assert_eq!(
            picks,
            (0..10_000)
                .map(|s| plan.fragment_slot(0, s))
                .collect::<Vec<_>>()
        );
        let to_one = picks.iter().filter(|&&p| p == 1).count();
        assert!(
            (6_500..8_500).contains(&to_one),
            "share skewed: {to_one}/10000"
        );
        assert!(picks.iter().all(|&p| p == 1 || p == 3));
    }
}
