//! Execution reports: everything the paper's figures read off a run.
//!
//! Every duration in these structs is **simulated** time — seconds (or
//! [`SimTime`] instants) on the discrete-event clock, never wall time.

use datanet::MetaHealth;
use datanet_cluster::SimTime;
use datanet_dfs::BlockId;
use datanet_obs::ObsSummary;
use datanet_stats::Summary;
use serde::{Deserialize, Serialize, Value};

/// End-to-end pipeline duration in simulated seconds: the selection phase
/// runs first, then the analysis job starts from its end. The single place
/// this sum is defined — report consumers and bench bins route through it
/// instead of re-deriving the arithmetic.
pub fn total_secs(selection_end: SimTime, job_makespan_secs: f64) -> f64 {
    selection_end.as_secs_f64() + job_makespan_secs
}

/// What fault injection did to a run and what recovery cost. All zeros /
/// empty for a fault-free execution ([`FaultStats::default`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Nodes that crashed during the phase, in crash order.
    pub crashed_nodes: Vec<usize>,
    /// Tasks re-enqueued because their node died (in-flight and
    /// completed-but-unconsumed alike).
    pub requeued_tasks: usize,
    /// Re-executions actually performed on survivors (≥ requeued minus
    /// abandoned/unrecoverable; a block can be requeued more than once).
    pub reexecuted_tasks: usize,
    /// Bytes read again from disk/network for re-executions — work the
    /// crash wasted.
    pub wasted_bytes_read: u64,
    /// Blocks whose every replica died: no survivor can serve them. The
    /// engine reports rather than silently drops them.
    pub unrecoverable_blocks: Vec<BlockId>,
    /// Blocks given up on after exhausting the retry limit.
    pub abandoned_blocks: Vec<BlockId>,
    /// Simulated seconds from the first crash to phase completion (0
    /// without faults).
    pub recovery_secs: f64,
    /// Simulated seconds between each crash and the moment the failure
    /// detector suspected the node, in crash order. Empty under the oracle
    /// model (PR 1 semantics: crashes are known instantly).
    pub detection_latency_secs: Vec<f64>,
}

impl FaultStats {
    /// Whether any fault fired during the run.
    pub fn any(&self) -> bool {
        !self.crashed_nodes.is_empty()
    }

    /// Blocks that could not be (re)processed, for any reason.
    pub fn lost_block_count(&self) -> usize {
        self.unrecoverable_blocks.len() + self.abandoned_blocks.len()
    }
}

/// Result of the selection (filter) phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionOutcome {
    /// Scheduler that drove the phase.
    pub scheduler: String,
    /// Ground-truth bytes of the target sub-dataset filtered onto each node
    /// — the Figure 1(b)/5(c) series.
    pub per_node_bytes: Vec<u64>,
    /// Map-task count per node.
    pub tasks_per_node: Vec<usize>,
    /// When each node finished its selection tasks (simulated instant).
    pub per_node_end: Vec<SimTime>,
    /// Phase completion (max of per-node ends; simulated instant).
    pub end: SimTime,
    /// Data-local task assignments.
    pub local_tasks: usize,
    /// Total tasks issued.
    pub total_tasks: usize,
    /// Total bytes read from disk (DataNet's block skipping shows up here).
    pub bytes_read: u64,
    /// Fault-injection accounting (all-default when the run was fault-free).
    pub faults: FaultStats,
    /// Metadata-plane health: shards repaired/quarantined, blocks per
    /// degradation-ladder rung, estimator error (all-default when the
    /// metadata was fully healthy).
    pub meta: MetaHealth,
}

impl SelectionOutcome {
    /// Fraction of tasks that read a local replica.
    pub fn locality_fraction(&self) -> f64 {
        if self.total_tasks == 0 {
            return 1.0;
        }
        self.local_tasks as f64 / self.total_tasks as f64
    }

    /// Summary of per-node filtered workload.
    pub fn workload_summary(&self) -> Summary {
        Summary::of(
            &self
                .per_node_bytes
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Max-over-mean workload imbalance.
    pub fn imbalance(&self) -> f64 {
        let s = self.workload_summary();
        if s.mean() == 0.0 {
            return 1.0;
        }
        s.max() / s.mean()
    }

    /// Gini coefficient of the per-node workload (0 = perfectly equal).
    pub fn gini(&self) -> f64 {
        datanet_stats::gini(
            &self
                .per_node_bytes
                .iter()
                .map(|&b| b as f64)
                .collect::<Vec<_>>(),
        )
    }
}

/// Result of running one analysis job over the filtered partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job name.
    pub job: String,
    /// Per-node map-task durations, simulated seconds — Figure 6(a).
    pub map_secs: Vec<f64>,
    /// Per-reducer shuffle durations, simulated seconds (first-map-finish →
    /// last byte received) — Figure 7.
    pub shuffle_secs: Vec<f64>,
    /// Per-reducer reduce durations, simulated seconds.
    pub reduce_secs: Vec<f64>,
    /// End-to-end job time, simulated seconds — the Figure 5(a) bar.
    pub makespan_secs: f64,
    /// Intermediate bytes that crossed the network during the shuffle.
    pub shuffle_bytes: u64,
    /// Per-node CPU utilisation over the job (busy time / makespan) — the
    /// paper's "nodes with less workload will be idle for a long time"
    /// made visible.
    pub cpu_util: Vec<f64>,
}

impl JobReport {
    /// min/avg/max of map times — Figure 6(b)(c).
    pub fn map_summary(&self) -> Summary {
        Summary::of(&self.map_secs)
    }

    /// min/avg/max of shuffle times — Figure 7.
    pub fn shuffle_summary(&self) -> Summary {
        Summary::of(&self.shuffle_secs)
    }

    /// min/avg/max of reduce times.
    pub fn reduce_summary(&self) -> Summary {
        Summary::of(&self.reduce_secs)
    }

    /// min/avg/max of per-node CPU utilisation.
    pub fn util_summary(&self) -> Summary {
        Summary::of(&self.cpu_util)
    }
}

/// A shuffle-planned analysis run: the [`JobReport`] plus the byte-level
/// routing accounting the shuffle oracles and the `shuffle` bench gate
/// read. Kept separate from [`JobReport`] so existing serialized reports
/// stay byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleOutcome {
    /// The standard job report (its `shuffle_bytes` equals
    /// [`ShuffleOutcome::network_bytes`]).
    pub report: JobReport,
    /// Map-output bytes each reducer slot received, local and remote —
    /// sums exactly to the total map output (conservation oracle).
    pub received: Vec<u64>,
    /// Bytes that crossed the simulated network.
    pub network_bytes: u64,
    /// Bytes that stayed on their mapper's node — the locality win.
    pub local_bytes: u64,
}

impl ShuffleOutcome {
    /// Fraction of the map output that never left its node.
    pub fn locality_fraction(&self) -> f64 {
        let total = self.network_bytes + self.local_bytes;
        if total == 0 {
            0.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }

    /// Largest reducer inflow over the mean — the reduce-skew metric.
    pub fn reduce_imbalance(&self) -> f64 {
        let total: u64 = self.received.iter().sum();
        let max = self.received.iter().copied().max().unwrap_or(0);
        if total == 0 {
            1.0
        } else {
            max as f64 * self.received.len() as f64 / total as f64
        }
    }
}

/// A full pipeline run: selection followed by one analysis job.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ExecutionReport {
    /// The selection phase.
    pub selection: SelectionOutcome,
    /// The analysis job.
    pub job: JobReport,
    /// Observability summary when the run was traced (`None` otherwise —
    /// and then entirely absent from the serialized report, so untraced
    /// output is byte-identical to pre-observability reports).
    pub obs: Option<ObsSummary>,
}

// Hand-written so `obs: None` is *omitted* rather than emitted as `null`:
// the vendored serde derive has no `#[serde(skip_serializing_if)]`, and
// recorder-off runs must serialize exactly as they did before the
// observability plane existed. The derived `Deserialize` above already
// treats a missing key as `None`.
impl Serialize for ExecutionReport {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("selection".to_string(), self.selection.to_value()),
            ("job".to_string(), self.job.to_value()),
        ];
        if let Some(obs) = &self.obs {
            entries.push(("obs".to_string(), obs.to_value()));
        }
        Value::Object(entries)
    }
}

impl ExecutionReport {
    /// Total pipeline duration in simulated seconds (selection + analysis),
    /// via the shared [`total_secs`] helper.
    pub fn total_secs(&self) -> f64 {
        total_secs(self.selection.end, self.job.makespan_secs)
    }

    /// Fault accounting for the pipeline (faults are injected during
    /// selection; the analysis phase runs on the survivors).
    pub fn faults(&self) -> &FaultStats {
        &self.selection.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> SelectionOutcome {
        SelectionOutcome {
            scheduler: "test".into(),
            per_node_bytes: vec![100, 300],
            tasks_per_node: vec![2, 2],
            per_node_end: vec![SimTime::from_secs(1), SimTime::from_secs(2)],
            end: SimTime::from_secs(2),
            local_tasks: 3,
            total_tasks: 4,
            bytes_read: 1000,
            faults: FaultStats::default(),
            meta: MetaHealth::default(),
        }
    }

    #[test]
    fn selection_metrics() {
        let o = outcome();
        assert!((o.locality_fraction() - 0.75).abs() < 1e-12);
        assert!((o.imbalance() - 1.5).abs() < 1e-12);
        // [100, 300]: G = 0.25.
        assert!((o.gini() - 0.25).abs() < 1e-12);
        let s = o.workload_summary();
        assert_eq!(s.min(), 100.0);
        assert_eq!(s.max(), 300.0);
    }

    #[test]
    fn job_summaries() {
        let j = JobReport {
            job: "wc".into(),
            map_secs: vec![1.0, 3.0],
            shuffle_secs: vec![0.5, 1.5],
            reduce_secs: vec![0.2, 0.2],
            makespan_secs: 5.0,
            shuffle_bytes: 123,
            cpu_util: vec![0.5, 0.9],
        };
        assert_eq!(j.map_summary().max(), 3.0);
        assert_eq!(j.shuffle_summary().mean(), 1.0);
        assert!((j.util_summary().mean() - 0.7).abs() < 1e-12);
        let r = ExecutionReport {
            selection: outcome(),
            job: j,
            obs: None,
        };
        assert!((r.total_secs() - 7.0).abs() < 1e-12);
        assert_eq!(
            r.total_secs(),
            total_secs(r.selection.end, r.job.makespan_secs)
        );
    }

    #[test]
    fn untraced_report_serializes_without_obs_key() {
        let r = ExecutionReport {
            selection: outcome(),
            job: JobReport {
                job: "wc".into(),
                map_secs: vec![1.0],
                shuffle_secs: vec![0.5],
                reduce_secs: vec![0.2],
                makespan_secs: 5.0,
                shuffle_bytes: 123,
                cpu_util: vec![0.5],
            },
            obs: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("obs"),
            "recorder-off reports must not mention obs: {json}"
        );
        let back: ExecutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);

        let traced = ExecutionReport {
            obs: Some(ObsSummary::default()),
            ..r.clone()
        };
        let json = serde_json::to_string(&traced).unwrap();
        assert!(json.contains("\"obs\""));
        let back: ExecutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, traced);
    }

    #[test]
    fn empty_selection_is_balanced() {
        let o = SelectionOutcome {
            scheduler: "x".into(),
            per_node_bytes: vec![0, 0],
            tasks_per_node: vec![0, 0],
            per_node_end: vec![SimTime::ZERO, SimTime::ZERO],
            end: SimTime::ZERO,
            local_tasks: 0,
            total_tasks: 0,
            bytes_read: 0,
            faults: FaultStats::default(),
            meta: MetaHealth::default(),
        };
        assert_eq!(o.locality_fraction(), 1.0);
        assert_eq!(o.imbalance(), 1.0);
    }

    #[test]
    fn fault_stats_default_is_fault_free() {
        let f = FaultStats::default();
        assert!(!f.any());
        assert_eq!(f.lost_block_count(), 0);
        assert_eq!(f.recovery_secs, 0.0);
        let with = FaultStats {
            crashed_nodes: vec![3],
            unrecoverable_blocks: vec![BlockId(7)],
            abandoned_blocks: vec![BlockId(9), BlockId(11)],
            ..FaultStats::default()
        };
        assert!(with.any());
        assert_eq!(with.lost_block_count(), 3);
    }
}
