//! Speculative execution — Hadoop's built-in straggler mitigation, modelled
//! as a map-phase baseline.
//!
//! When most maps have finished, Hadoop launches *backup* copies of the
//! stragglers on idle nodes and takes whichever copy finishes first. Like
//! SkewTune-style migration (Section V-A-4) this reacts to imbalance after
//! the fact: the backup must re-read the straggler's partition over the
//! network, the duplicated work burns slots, and — crucially for the
//! paper's argument — it caps the tail at roughly *half* the straggler's
//! remaining time instead of preventing the skew altogether.

use crate::job::JobProfile;
use datanet_cluster::{NodeSpec, SimTime};
use serde::{Deserialize, Serialize};

/// Speculation policy parameters (Hadoop-like defaults).
#[derive(Debug, Clone, Copy)]
pub struct SpeculationConfig {
    /// Fraction of maps that must be done before backups launch.
    pub trigger_fraction: f64,
    /// A task is a straggler if its projected duration exceeds this multiple
    /// of the median task duration.
    pub slowdown_threshold: f64,
    /// Fixed per-task overhead (matches the engine's).
    pub task_overhead: SimTime,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        Self {
            trigger_fraction: 0.75,
            slowdown_threshold: 1.5,
            task_overhead: SimTime::from_millis(6),
        }
    }
}

/// Outcome of a speculative map phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeculativeMapOutcome {
    /// Effective per-node map completion seconds (min of original/backup).
    pub map_end_secs: Vec<f64>,
    /// Map-phase makespan with speculation.
    pub makespan_secs: f64,
    /// Map-phase makespan without speculation (for comparison).
    pub baseline_makespan_secs: f64,
    /// Number of backup tasks launched.
    pub backups: usize,
    /// Bytes re-read remotely by backup tasks (the duplicated work).
    pub duplicated_bytes: u64,
}

impl SpeculativeMapOutcome {
    /// Relative makespan improvement speculation bought.
    pub fn improvement(&self) -> f64 {
        if self.baseline_makespan_secs == 0.0 {
            return 0.0;
        }
        1.0 - self.makespan_secs / self.baseline_makespan_secs
    }
}

/// Original map duration of a partition on its own node.
fn map_duration(bytes: u64, profile: &JobProfile, spec: &NodeSpec, overhead: SimTime) -> SimTime {
    overhead
        + SimTime::for_bytes(bytes, spec.disk_bps)
        + SimTime::for_bytes(
            (bytes as f64 * profile.map_compute_factor).ceil() as u64,
            spec.cpu_bps,
        )
}

/// Simulate the map phase with speculative backups on homogeneous, healthy
/// nodes (stragglers are purely data-skew stragglers).
///
/// # Panics
/// Panics on empty input or invalid configuration.
pub fn speculative_map_phase(
    filtered: &[u64],
    profile: &JobProfile,
    spec: &NodeSpec,
    cfg: &SpeculationConfig,
) -> SpeculativeMapOutcome {
    speculative_map_phase_with_slowdowns(filtered, profile, spec, cfg, &vec![1.0; filtered.len()])
}

/// Simulate the map phase with speculative backups and per-node slowdown
/// factors (`1.0` = healthy; `3.0` = a node running 3× slow — failing disk,
/// noisy neighbour).
///
/// Every node runs one map over its partition from t = 0, stretched by its
/// slowdown. At the moment `trigger_fraction` of the maps have finished,
/// each still-running map whose duration exceeds `slowdown_threshold ×` the
/// median gets a backup on the idle node that finished earliest; the backup
/// reads the partition remotely (NIC instead of disk), runs at full speed,
/// and the task's effective end is the earlier of the two copies.
///
/// The instructive outcome (tested): speculation rescues *slow-node*
/// stragglers but cannot rescue *data-skew* stragglers — a backup of the
/// same oversized partition, started later and fed over the network, never
/// beats the original. Reactive mitigation is the wrong tool for the
/// paper's problem; distribution-aware placement prevents it instead.
///
/// # Panics
/// Panics on empty input or invalid configuration.
pub fn speculative_map_phase_with_slowdowns(
    filtered: &[u64],
    profile: &JobProfile,
    spec: &NodeSpec,
    cfg: &SpeculationConfig,
    slowdowns: &[f64],
) -> SpeculativeMapOutcome {
    assert!(!filtered.is_empty(), "need at least one partition");
    assert_eq!(filtered.len(), slowdowns.len(), "one slowdown per node");
    assert!(
        slowdowns.iter().all(|&s| s.is_finite() && s >= 1.0),
        "slowdowns must be >= 1"
    );
    assert!(
        (0.0..1.0).contains(&cfg.trigger_fraction),
        "trigger fraction must be in [0,1)"
    );
    assert!(
        cfg.slowdown_threshold >= 1.0,
        "slowdown threshold must be >= 1"
    );
    profile.validate();
    spec.validate();
    let m = filtered.len();

    let durations: Vec<SimTime> = filtered
        .iter()
        .zip(slowdowns)
        .map(|(&b, &slow)| {
            let d = map_duration(b, profile, spec, cfg.task_overhead);
            SimTime::from_secs_f64(d.as_secs_f64() * slow)
        })
        .collect();
    let baseline_makespan = durations.iter().copied().max().expect("non-empty");

    // Trigger time: the ⌈f·m⌉-th completion.
    let mut ends: Vec<SimTime> = durations.clone();
    ends.sort_unstable();
    let trigger_rank = ((cfg.trigger_fraction * m as f64).ceil() as usize).clamp(1, m) - 1;
    let trigger_time = ends[trigger_rank];
    let median = ends[m / 2];

    // Idle nodes (finished before the trigger), earliest first.
    let mut idle: Vec<(SimTime, usize)> = durations
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d <= trigger_time)
        .map(|(i, &d)| (d, i))
        .collect();
    idle.sort_unstable();

    let threshold = SimTime::from_secs_f64(median.as_secs_f64() * cfg.slowdown_threshold);
    let mut effective: Vec<SimTime> = durations.clone();
    let mut backups = 0usize;
    let mut duplicated = 0u64;
    let mut idle_iter = idle.into_iter();
    // Stragglers, worst first, so the scarce idle nodes go where they help.
    let mut stragglers: Vec<usize> = (0..m)
        .filter(|&i| durations[i] > trigger_time && durations[i] > threshold)
        .collect();
    stragglers.sort_by(|&a, &b| durations[b].cmp(&durations[a]).then(a.cmp(&b)));
    for i in stragglers {
        let Some((free_at, _backup_node)) = idle_iter.next() else {
            break;
        };
        // Backup reads the partition over the network, then recomputes.
        let backup_dur = cfg.task_overhead
            + SimTime::for_bytes(filtered[i], spec.nic_bps)
            + SimTime::for_bytes(
                (filtered[i] as f64 * profile.map_compute_factor).ceil() as u64,
                spec.cpu_bps,
            );
        let backup_end = free_at.max(trigger_time) + backup_dur;
        backups += 1;
        duplicated += filtered[i];
        effective[i] = effective[i].min(backup_end);
    }

    let makespan = effective.iter().copied().max().expect("non-empty");
    SpeculativeMapOutcome {
        map_end_secs: effective.iter().map(|t| t.as_secs_f64()).collect(),
        makespan_secs: makespan.as_secs_f64(),
        baseline_makespan_secs: baseline_makespan.as_secs_f64(),
        backups,
        duplicated_bytes: duplicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobProfile {
        JobProfile::new("test", 4.0, 0.2, 1.0)
    }

    #[test]
    fn balanced_maps_need_no_backups() {
        let out = speculative_map_phase(
            &[1_000_000; 8],
            &job(),
            &NodeSpec::marmot(),
            &SpeculationConfig::default(),
        );
        assert_eq!(out.backups, 0);
        assert_eq!(out.duplicated_bytes, 0);
        assert_eq!(out.makespan_secs, out.baseline_makespan_secs);
        assert_eq!(out.improvement(), 0.0);
    }

    #[test]
    fn speculation_cannot_fix_data_skew() {
        // The paper's core argument, quantified: a backup of the same
        // oversized partition starts later and reads over the network, so
        // it never beats the original — speculation buys ~nothing against
        // content-clustering skew.
        let mut parts = vec![500_000u64; 8];
        parts[3] = 5_000_000;
        let out = speculative_map_phase(
            &parts,
            &job(),
            &NodeSpec::marmot(),
            &SpeculationConfig::default(),
        );
        assert_eq!(out.backups, 1, "a backup is launched");
        assert_eq!(out.duplicated_bytes, 5_000_000, "...and wasted");
        assert!(
            out.improvement() < 0.05,
            "data-skew straggler should not be rescued, got {:.3}",
            out.improvement()
        );
    }

    #[test]
    fn speculation_rescues_a_slow_node() {
        // Balanced data, one node 4x slow: the backup (full speed, remote
        // read) wins easily.
        let parts = vec![1_000_000u64; 8];
        let mut slowdowns = vec![1.0; 8];
        slowdowns[5] = 4.0;
        let out = speculative_map_phase_with_slowdowns(
            &parts,
            &job(),
            &NodeSpec::marmot(),
            &SpeculationConfig::default(),
            &slowdowns,
        );
        assert_eq!(out.backups, 1);
        assert!(
            out.improvement() > 0.3,
            "slow-node straggler should be rescued, got {:.3}",
            out.improvement()
        );
    }

    #[test]
    fn backups_limited_by_idle_nodes() {
        // 2 idle nodes, 6 stragglers: at most 2 backups.
        let parts = vec![
            100_000u64, 100_000, 4_000_000, 4_000_000, 4_000_000, 4_000_000, 4_000_000, 4_000_000,
        ];
        let cfg = SpeculationConfig {
            trigger_fraction: 0.2,
            ..Default::default()
        };
        let out = speculative_map_phase(&parts, &job(), &NodeSpec::marmot(), &cfg);
        assert!(out.backups <= 2, "got {} backups", out.backups);
    }

    #[test]
    fn worst_straggler_is_backed_up_first() {
        let mut parts = vec![400_000u64; 8];
        parts[1] = 3_000_000;
        parts[2] = 6_000_000;
        let cfg = SpeculationConfig {
            trigger_fraction: 0.6,
            ..Default::default()
        };
        let out = speculative_map_phase(&parts, &job(), &NodeSpec::marmot(), &cfg);
        assert!(out.backups >= 1);
        // The 6 MB straggler's effective end must beat its solo duration.
        let solo = map_duration(6_000_000, &job(), &NodeSpec::marmot(), cfg.task_overhead);
        assert!(out.map_end_secs[2] < solo.as_secs_f64());
    }

    #[test]
    #[should_panic]
    fn rejects_empty_partitions() {
        speculative_map_phase(
            &[],
            &job(),
            &NodeSpec::marmot(),
            &SpeculationConfig::default(),
        );
    }
}
