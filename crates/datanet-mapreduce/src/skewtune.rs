//! The runtime-migration baseline (Section V-A-4).
//!
//! SkewTune-style systems fix imbalance *after the fact*: once the selection
//! phase has materialised skewed partitions, they migrate data from
//! overloaded to underloaded nodes. The paper measures that on its movie
//! workload "the overall percentage of data migration is more than 30%" and
//! argues the network cost makes this strictly worse than DataNet's
//! proactive balancing. This module reproduces that comparison.

use datanet_cluster::{NodeSpec, SimCluster, SimTime};
use serde::{Deserialize, Serialize};

/// Result of rebalancing skewed partitions by migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Bytes moved between nodes.
    pub moved_bytes: u64,
    /// Moved bytes / total bytes — the paper's ">30%" metric.
    pub fraction: f64,
    /// Wall-clock seconds the migration takes on the simulated network
    /// (transfers parallelise across disjoint node pairs).
    pub migration_secs: f64,
    /// Post-migration per-node bytes (balanced to within one byte of the
    /// mean, up to integer division).
    pub balanced: Vec<u64>,
    /// Number of nodes that sent or received data.
    pub nodes_touched: usize,
}

/// Rebalance partitions to the mean by greedy pairing of the most
/// overloaded sender with the most underloaded receiver.
///
/// # Panics
/// Panics if `partitions` is empty.
pub fn rebalance(partitions: &[u64], spec: &NodeSpec) -> MigrationOutcome {
    assert!(!partitions.is_empty(), "need at least one partition");
    spec.validate();
    let m = partitions.len();
    let total: u64 = partitions.iter().sum();
    let mean = total / m as u64;

    // Surpluses and deficits relative to the mean.
    let mut balanced: Vec<u64> = partitions.to_vec();
    let mut senders: Vec<(usize, u64)> = Vec::new();
    let mut receivers: Vec<(usize, u64)> = Vec::new();
    for (i, &b) in partitions.iter().enumerate() {
        if b > mean {
            senders.push((i, b - mean));
        } else if b < mean {
            receivers.push((i, mean - b));
        }
    }
    // Largest surplus first, largest deficit first.
    senders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    receivers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut cluster = SimCluster::homogeneous(m, *spec);
    let mut moved = 0u64;
    let mut touched = std::collections::BTreeSet::new();
    let (mut si, mut ri) = (0usize, 0usize);
    let mut end = SimTime::ZERO;
    while si < senders.len() && ri < receivers.len() {
        let (s_node, s_left) = senders[si];
        let (r_node, r_left) = receivers[ri];
        let amount = s_left.min(r_left);
        if amount > 0 {
            // Read from the sender's disk, ship it, write on the receiver.
            let (_, read_end) = cluster.node_mut(s_node).read_disk(SimTime::ZERO, amount);
            let (_, arr) = cluster.transfer(s_node, r_node, read_end, amount);
            let (_, w_end) = cluster.node_mut(r_node).write_disk(arr, amount);
            end = end.max(w_end);
            moved += amount;
            balanced[s_node] -= amount;
            balanced[r_node] += amount;
            touched.insert(s_node);
            touched.insert(r_node);
        }
        senders[si].1 -= amount;
        receivers[ri].1 -= amount;
        if senders[si].1 == 0 {
            si += 1;
        }
        if receivers[ri].1 == 0 {
            ri += 1;
        }
    }

    MigrationOutcome {
        moved_bytes: moved,
        fraction: if total == 0 {
            0.0
        } else {
            moved as f64 / total as f64
        },
        migration_secs: end.as_secs_f64(),
        balanced,
        nodes_touched: touched.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_balanced_moves_nothing() {
        let out = rebalance(&[100, 100, 100, 100], &NodeSpec::marmot());
        assert_eq!(out.moved_bytes, 0);
        assert_eq!(out.fraction, 0.0);
        assert_eq!(out.migration_secs, 0.0);
        assert_eq!(out.balanced, vec![100, 100, 100, 100]);
        assert_eq!(out.nodes_touched, 0);
    }

    #[test]
    fn skewed_partitions_balance_to_mean() {
        let parts = vec![400u64, 0, 0, 0];
        let out = rebalance(&parts, &NodeSpec::marmot());
        assert_eq!(out.moved_bytes, 300);
        assert!((out.fraction - 0.75).abs() < 1e-12);
        assert_eq!(out.balanced, vec![100, 100, 100, 100]);
        assert!(out.migration_secs > 0.0);
        assert_eq!(out.nodes_touched, 4);
    }

    #[test]
    fn conserves_total_bytes() {
        let parts = vec![931u64, 17, 450, 2, 88, 88, 600, 44];
        let out = rebalance(&parts, &NodeSpec::marmot());
        assert_eq!(out.balanced.iter().sum::<u64>(), parts.iter().sum::<u64>());
        // Every node within one mean-rounding unit of the mean.
        let mean = parts.iter().sum::<u64>() / parts.len() as u64;
        for &b in &out.balanced {
            assert!(b.abs_diff(mean) <= parts.len() as u64);
        }
    }

    #[test]
    fn migration_fraction_grows_with_skew() {
        let mild = rebalance(&[120, 100, 90, 90], &NodeSpec::marmot());
        let harsh = rebalance(&[400, 0, 0, 0], &NodeSpec::marmot());
        assert!(harsh.fraction > mild.fraction);
    }

    #[test]
    fn migration_time_scales_with_moved_bytes() {
        let small = rebalance(&[2_000_000, 0], &NodeSpec::marmot());
        let large = rebalance(&[200_000_000, 0], &NodeSpec::marmot());
        assert!(large.migration_secs > small.migration_secs * 10.0);
    }

    #[test]
    #[should_panic]
    fn empty_partitions_rejected() {
        rebalance(&[], &NodeSpec::marmot());
    }
}
