//! The runtime-migration baseline (Section V-A-4), and the split primitives
//! it generalises into.
//!
//! SkewTune-style systems fix imbalance *after the fact*: once the selection
//! phase has materialised skewed partitions, they migrate data from
//! overloaded to underloaded nodes. The paper measures that on its movie
//! workload "the overall percentage of data migration is more than 30%" and
//! argues the network cost makes this strictly worse than DataNet's
//! proactive balancing. This module reproduces that comparison.
//!
//! The same fair-share arithmetic, applied *before* the shuffle instead of
//! after it, is what the distribution-aware partitioner in [`crate::shuffle`]
//! builds on: [`split_threshold`] decides when a key range is too heavy for
//! one reducer, [`fragments_needed`] how many reducers it must span, and
//! [`split_even`]/[`apportion`] produce the exact (largest-remainder) byte
//! splits that keep the conservation oracles byte-exact.

use datanet_cluster::{NodeSpec, SimCluster, SimTime};
use serde::{Deserialize, Serialize};

/// Result of rebalancing skewed partitions by migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Bytes moved between nodes.
    pub moved_bytes: u64,
    /// Moved bytes / total bytes — the paper's ">30%" metric.
    pub fraction: f64,
    /// Wall-clock seconds the migration takes on the simulated network
    /// (transfers parallelise across disjoint node pairs).
    pub migration_secs: f64,
    /// Post-migration per-node bytes (balanced to within one byte of the
    /// mean, up to integer division).
    pub balanced: Vec<u64>,
    /// Number of nodes that sent or received data.
    pub nodes_touched: usize,
}

/// Rebalance partitions to the mean by greedy pairing of the most
/// overloaded sender with the most underloaded receiver.
///
/// # Panics
/// Panics if `partitions` is empty.
pub fn rebalance(partitions: &[u64], spec: &NodeSpec) -> MigrationOutcome {
    assert!(!partitions.is_empty(), "need at least one partition");
    spec.validate();
    let m = partitions.len();
    let total: u64 = partitions.iter().sum();
    let mean = total / m as u64;

    // Surpluses and deficits relative to the mean.
    let mut balanced: Vec<u64> = partitions.to_vec();
    let mut senders: Vec<(usize, u64)> = Vec::new();
    let mut receivers: Vec<(usize, u64)> = Vec::new();
    for (i, &b) in partitions.iter().enumerate() {
        if b > mean {
            senders.push((i, b - mean));
        } else if b < mean {
            receivers.push((i, mean - b));
        }
    }
    // Largest surplus first, largest deficit first.
    senders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    receivers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut cluster = SimCluster::homogeneous(m, *spec);
    let mut moved = 0u64;
    let mut touched = std::collections::BTreeSet::new();
    let (mut si, mut ri) = (0usize, 0usize);
    let mut end = SimTime::ZERO;
    while si < senders.len() && ri < receivers.len() {
        let (s_node, s_left) = senders[si];
        let (r_node, r_left) = receivers[ri];
        let amount = s_left.min(r_left);
        if amount > 0 {
            // Read from the sender's disk, ship it, write on the receiver.
            let (_, read_end) = cluster.node_mut(s_node).read_disk(SimTime::ZERO, amount);
            let (_, arr) = cluster.transfer(s_node, r_node, read_end, amount);
            let (_, w_end) = cluster.node_mut(r_node).write_disk(arr, amount);
            end = end.max(w_end);
            moved += amount;
            balanced[s_node] -= amount;
            balanced[r_node] += amount;
            touched.insert(s_node);
            touched.insert(r_node);
        }
        senders[si].1 -= amount;
        receivers[ri].1 -= amount;
        if senders[si].1 == 0 {
            si += 1;
        }
        if receivers[ri].1 == 0 {
            ri += 1;
        }
    }

    MigrationOutcome {
        moved_bytes: moved,
        fraction: if total == 0 {
            0.0
        } else {
            moved as f64 / total as f64
        },
        migration_secs: end.as_secs_f64(),
        balanced,
        nodes_touched: touched.len(),
    }
}

/// The split threshold: bytes one reducer is willing to absorb for a single
/// key range before the range must split across reducers. `split_factor`
/// scales the fair share (`total / reducers`): 1.0 splits anything above a
/// perfectly even share, larger values tolerate proportionally more skew
/// before paying the split/merge overhead. Never below one byte, so an
/// empty job still yields a usable threshold.
///
/// # Panics
/// Panics if `reducers == 0` or `split_factor` is not finite and ≥ 1.
pub fn split_threshold(total: u64, reducers: usize, split_factor: f64) -> u64 {
    assert!(reducers > 0, "need at least one reducer");
    assert!(
        split_factor.is_finite() && split_factor >= 1.0,
        "split factor must be a finite value >= 1"
    );
    let fair = total as f64 / reducers as f64;
    ((fair * split_factor).ceil() as u64).max(1)
}

/// Number of fragments a key range of `bytes` splits into under
/// `threshold`: `ceil(bytes / threshold)`, and 1 for an empty range (it
/// still needs a home reducer).
///
/// # Panics
/// Panics if `threshold == 0`.
pub fn fragments_needed(bytes: u64, threshold: u64) -> usize {
    assert!(threshold > 0, "split threshold must be positive");
    if bytes == 0 {
        1
    } else {
        bytes.div_ceil(threshold) as usize
    }
}

/// Exact even split of `bytes` into `parts` fragments: the first
/// `bytes % parts` fragments carry one extra byte, and the fragments sum to
/// `bytes` exactly.
///
/// # Panics
/// Panics if `parts == 0`.
pub fn split_even(bytes: u64, parts: usize) -> Vec<u64> {
    assert!(parts > 0, "need at least one fragment");
    let q = bytes / parts as u64;
    let r = (bytes % parts as u64) as usize;
    (0..parts).map(|i| q + u64::from(i < r)).collect()
}

/// Exact largest-remainder apportionment of `total` over integer
/// `weights`: each part is within one byte of its real-valued proportional
/// share and the parts sum to `total` exactly (all-zero weights fall back
/// to [`split_even`]). This is the integer arithmetic that keeps the
/// engine's shuffle byte-conservation exact instead of drifting by one
/// byte per rounded share.
///
/// # Panics
/// Panics if `weights` is empty.
pub fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "need at least one weight");
    let wsum: u64 = weights.iter().sum();
    if wsum == 0 {
        return split_even(total, weights.len());
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let num = total as u128 * w as u128;
        out.push((num / wsum as u128) as u64);
        assigned += out[i];
        remainders.push((num % wsum as u128, i));
    }
    // Hand the leftover bytes to the largest fractional remainders,
    // lowest index first on ties, so the split is deterministic.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take((total - assigned) as usize) {
        out[i] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_balanced_moves_nothing() {
        let out = rebalance(&[100, 100, 100, 100], &NodeSpec::marmot());
        assert_eq!(out.moved_bytes, 0);
        assert_eq!(out.fraction, 0.0);
        assert_eq!(out.migration_secs, 0.0);
        assert_eq!(out.balanced, vec![100, 100, 100, 100]);
        assert_eq!(out.nodes_touched, 0);
    }

    #[test]
    fn skewed_partitions_balance_to_mean() {
        let parts = vec![400u64, 0, 0, 0];
        let out = rebalance(&parts, &NodeSpec::marmot());
        assert_eq!(out.moved_bytes, 300);
        assert!((out.fraction - 0.75).abs() < 1e-12);
        assert_eq!(out.balanced, vec![100, 100, 100, 100]);
        assert!(out.migration_secs > 0.0);
        assert_eq!(out.nodes_touched, 4);
    }

    #[test]
    fn conserves_total_bytes() {
        let parts = vec![931u64, 17, 450, 2, 88, 88, 600, 44];
        let out = rebalance(&parts, &NodeSpec::marmot());
        assert_eq!(out.balanced.iter().sum::<u64>(), parts.iter().sum::<u64>());
        // Every node within one mean-rounding unit of the mean.
        let mean = parts.iter().sum::<u64>() / parts.len() as u64;
        for &b in &out.balanced {
            assert!(b.abs_diff(mean) <= parts.len() as u64);
        }
    }

    #[test]
    fn migration_fraction_grows_with_skew() {
        let mild = rebalance(&[120, 100, 90, 90], &NodeSpec::marmot());
        let harsh = rebalance(&[400, 0, 0, 0], &NodeSpec::marmot());
        assert!(harsh.fraction > mild.fraction);
    }

    #[test]
    fn migration_time_scales_with_moved_bytes() {
        let small = rebalance(&[2_000_000, 0], &NodeSpec::marmot());
        let large = rebalance(&[200_000_000, 0], &NodeSpec::marmot());
        assert!(large.migration_secs > small.migration_secs * 10.0);
    }

    #[test]
    #[should_panic]
    fn empty_partitions_rejected() {
        rebalance(&[], &NodeSpec::marmot());
    }

    // --- Split-threshold edge cases (the arithmetic the shuffle planner
    // generalises this module into).

    #[test]
    fn single_dominant_key_spans_the_whole_cluster() {
        // One key holds every byte: at split_factor 1.0 it must fragment
        // into exactly as many pieces as there are reducers, and the even
        // split hands each reducer the fair share.
        let thr = split_threshold(4_000, 4, 1.0);
        assert_eq!(thr, 1_000);
        assert_eq!(fragments_needed(4_000, thr), 4);
        assert_eq!(split_even(4_000, 4), vec![1_000; 4]);
        // The migration view of the same shape: 3/4 of the data moves —
        // the after-the-fact cost the proactive split avoids.
        let out = rebalance(&[4_000, 0, 0, 0], &NodeSpec::marmot());
        assert!((out.fraction - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_equal_keys_never_split() {
        // Keys exactly at the fair share sit on the threshold boundary and
        // must stay whole at every tolerated split factor.
        for factor in [1.0, 1.25, 1.5, 2.0] {
            let thr = split_threshold(4_000, 4, factor);
            for bytes in [1_000u64; 4] {
                assert_eq!(fragments_needed(bytes, thr), 1, "factor {factor}");
            }
        }
        let out = rebalance(&[1_000; 4], &NodeSpec::marmot());
        assert_eq!(out.moved_bytes, 0);
    }

    #[test]
    fn key_heavier_than_one_fair_share_splits() {
        // A key at 2.5× the fair share (1000) needs 3 reducers at factor
        // 1.0 but only 2 once the threshold tolerates 25% overshoot.
        assert_eq!(fragments_needed(2_500, split_threshold(8_000, 8, 1.0)), 3);
        assert_eq!(fragments_needed(2_500, split_threshold(8_000, 8, 1.25)), 2);
        // Just past the threshold still splits; exactly at it does not.
        assert_eq!(fragments_needed(1_001, split_threshold(8_000, 8, 1.0)), 2);
        assert_eq!(fragments_needed(1_000, split_threshold(8_000, 8, 1.0)), 1);
    }

    #[test]
    fn empty_and_degenerate_ranges_stay_usable() {
        // Zero total: the threshold floors at one byte so empty jobs do
        // not divide by zero downstream, and an empty range still gets one
        // (empty) fragment.
        assert_eq!(split_threshold(0, 4, 1.5), 1);
        assert_eq!(fragments_needed(0, 1), 1);
        assert_eq!(split_even(0, 3), vec![0, 0, 0]);
        // A single reducer absorbs everything without splitting.
        let thr = split_threshold(10_000, 1, 1.0);
        assert_eq!(fragments_needed(10_000, thr), 1);
    }

    #[test]
    fn split_even_conserves_and_balances() {
        for (bytes, parts) in [(10u64, 3usize), (7, 7), (1, 4), (1_000_003, 8)] {
            let parts_v = split_even(bytes, parts);
            assert_eq!(parts_v.iter().sum::<u64>(), bytes);
            let max = *parts_v.iter().max().unwrap();
            let min = *parts_v.iter().min().unwrap();
            assert!(max - min <= 1, "{bytes}/{parts}: {parts_v:?}");
        }
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        let weights = [931u64, 17, 450, 2, 0, 88, 600, 44];
        let total = 123_457u64;
        let parts = apportion(total, &weights);
        assert_eq!(parts.iter().sum::<u64>(), total);
        let wsum: u64 = weights.iter().sum();
        for (i, (&p, &w)) in parts.iter().zip(&weights).enumerate() {
            let ideal = total as f64 * w as f64 / wsum as f64;
            assert!((p as f64 - ideal).abs() <= 1.0, "part {i}: {p} vs {ideal}");
        }
        // Zero weights get zero bytes; all-zero weights split evenly.
        assert_eq!(parts[4], 0);
        assert_eq!(apportion(10, &[0, 0, 0, 0]).iter().sum::<u64>(), 10);
    }

    #[test]
    #[should_panic]
    fn split_factor_below_one_rejected() {
        split_threshold(1_000, 4, 0.5);
    }
}
