//! World-Cup-'98-style web access log generator (the paper's reference \[3\]).
//!
//! Access logs keyed by requested object: traffic is bursty around match
//! days and object popularity is Zipfian — a third regime between the
//! movie dataset (strong per-sub-dataset clustering) and GitHub events
//! (stationary mix): here *all* sub-datasets cluster together on match
//! days.

use datanet_dfs::{Record, SubDatasetId};
use datanet_stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the access-log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldCupConfig {
    /// Number of distinct objects (pages/images) — the sub-datasets.
    pub objects: usize,
    /// Total requests.
    pub records: usize,
    /// Horizon in days.
    pub horizon_days: u32,
    /// Days on which matches occur (bursty traffic); empty means uniform.
    pub match_days: Vec<u32>,
    /// How many times denser traffic is on a match day.
    pub match_day_boost: f64,
    /// Zipf exponent of object popularity.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldCupConfig {
    fn default() -> Self {
        Self {
            objects: 1000,
            records: 100_000,
            horizon_days: 60,
            match_days: vec![10, 14, 18, 25, 32, 40, 45, 52],
            match_day_boost: 6.0,
            popularity_exponent: 1.0,
            seed: 0x5763_1998,
        }
    }
}

impl WorldCupConfig {
    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on degenerate configuration.
    pub fn validate(&self) {
        assert!(self.objects > 0, "need at least one object");
        assert!(self.records > 0, "need at least one request");
        assert!(self.horizon_days > 0, "horizon must be positive");
        assert!(self.match_day_boost >= 1.0, "boost must be >= 1");
        assert!(
            self.match_days.iter().all(|&d| d < self.horizon_days),
            "match days must fall within the horizon"
        );
    }

    /// Generate the chronologically-ordered request stream.
    pub fn generate(&self) -> Vec<Record> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let popularity = Zipf::new(self.objects, self.popularity_exponent);

        // Per-day weights: 1.0 normally, boost on match days.
        let weights: Vec<f64> = (0..self.horizon_days)
            .map(|d| {
                if self.match_days.contains(&d) {
                    self.match_day_boost
                } else {
                    1.0
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut day_cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            day_cdf.push(acc);
        }
        *day_cdf.last_mut().expect("non-empty") = 1.0;

        let mut records = Vec::with_capacity(self.records);
        for i in 0..self.records {
            let u: f64 = rng.gen();
            let day = day_cdf.partition_point(|&c| c < u).min(weights.len() - 1) as u64;
            let ts = day * 86_400 + rng.gen_range(0..86_400);
            let object = popularity.sample(&mut rng) - 1;
            // Small GET-log lines: 64–512 bytes.
            let size = rng.gen_range(64..512);
            records.push(Record::new(
                SubDatasetId(object as u64),
                ts,
                size,
                self.seed ^ (i as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
            ));
        }
        records.sort_by_key(|r| r.timestamp);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorldCupConfig {
        WorldCupConfig {
            records: 50_000,
            ..Default::default()
        }
    }

    #[test]
    fn generates_sorted_requests() {
        let recs = small().generate();
        assert_eq!(recs.len(), 50_000);
        assert!(recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn match_days_are_bursty() {
        let cfg = small();
        let recs = cfg.generate();
        let mut per_day = vec![0usize; cfg.horizon_days as usize];
        for r in &recs {
            per_day[(r.timestamp / 86_400) as usize] += 1;
        }
        let match_avg: f64 = cfg
            .match_days
            .iter()
            .map(|&d| per_day[d as usize] as f64)
            .sum::<f64>()
            / cfg.match_days.len() as f64;
        let quiet: Vec<usize> = (0..cfg.horizon_days)
            .filter(|d| !cfg.match_days.contains(d))
            .map(|d| per_day[d as usize])
            .collect();
        let quiet_avg = quiet.iter().sum::<usize>() as f64 / quiet.len() as f64;
        assert!(
            match_avg > 4.0 * quiet_avg,
            "match {match_avg} vs quiet {quiet_avg}"
        );
    }

    #[test]
    fn popularity_skewed() {
        let recs = small().generate();
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r.subdataset).or_insert(0usize) += 1;
        }
        let top = *counts.values().max().unwrap();
        assert!(top > recs.len() / 50, "no popular object: top {top}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    #[should_panic]
    fn match_day_outside_horizon_rejected() {
        WorldCupConfig {
            match_days: vec![100],
            horizon_days: 60,
            ..Default::default()
        }
        .generate();
    }
}
