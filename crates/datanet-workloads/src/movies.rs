//! Chronological movie-review log generator (the paper's main dataset).
//!
//! Structure mirrors what makes MovieLens-style logs hard for HDFS:
//!
//! * movie popularity is Zipfian — a few blockbusters own most reviews;
//! * each movie's reviews arrive Gamma-distributed *after its release*
//!   ("the majority of logs for a popular movie would be concentrated
//!   around the time of its release") — the content-clustering mechanism;
//! * records are emitted in global timestamp order, so when the DFS chunks
//!   the stream into blocks, a movie's reviews land in a contiguous run of
//!   blocks (Figure 1(a)).

use datanet_dfs::{Record, SubDatasetId};
use datanet_stats::{GammaDist, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the movie-log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoviesConfig {
    /// Number of distinct movies (sub-datasets).
    pub movies: usize,
    /// Total number of review records to generate.
    pub records: usize,
    /// Time horizon in days; releases are spread uniformly over it.
    pub horizon_days: u32,
    /// Zipf exponent of movie popularity.
    pub popularity_exponent: f64,
    /// Gamma shape of the post-release review-time distribution. Shape ≈ 2
    /// gives the rise-then-decay burst the paper describes.
    pub burst_shape: f64,
    /// Gamma scale (days): how long the post-release buzz lasts.
    pub burst_scale_days: f64,
    /// Log-normal σ of per-(movie, day) review-rate volatility: real logs
    /// spike on weekends and viral moments, which is what gives Figure
    /// 1(a) its 10× block-to-block swings. 0 disables volatility.
    pub daily_volatility: f64,
    /// Fraction of a movie's reviews that arrive as a flat background rate
    /// over its whole post-release life (rather than in the release burst):
    /// popular movies keep receiving occasional reviews for years, which is
    /// why the paper's Figure 1(a) movie is present in *every* block while
    /// the first ~30 dominate.
    pub background_fraction: f64,
    /// Force the release day of the most popular movie (rank 1). The
    /// paper's target movie is released near the start of the dataset, so
    /// its burst occupies the first blocks (Figure 1(a)).
    pub hot_release_day: Option<u32>,
    /// Mean review size in bytes (sizes vary ±50% around it).
    pub mean_review_bytes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        Self {
            movies: 2000,
            records: 200_000,
            horizon_days: 365,
            popularity_exponent: 1.1,
            burst_shape: 2.0,
            burst_scale_days: 6.0,
            daily_volatility: 0.8,
            background_fraction: 0.15,
            hot_release_day: None,
            mean_review_bytes: 600,
            seed: 0x4D4F_5649,
        }
    }
}

/// One standard-normal deviate (Box–Muller; local to avoid a rand_distr
/// dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Per-movie ground-truth metadata produced alongside the records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovieCatalog {
    /// `release_day[m]` = release day of movie `m`.
    pub release_day: Vec<u32>,
    /// `review_count[m]` = number of generated reviews of movie `m`.
    pub review_count: Vec<u64>,
    /// `review_bytes[m]` = total bytes of movie `m`'s reviews.
    pub review_bytes: Vec<u64>,
}

impl MovieCatalog {
    /// The movie with the most review bytes — the natural Figure 1(a)/5(b)
    /// target sub-dataset.
    pub fn most_reviewed(&self) -> SubDatasetId {
        let idx = self
            .review_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(i, b)| (*b, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        SubDatasetId(idx as u64)
    }

    /// Movies ordered by total bytes, descending (for Figure 9's per-size
    /// accuracy sweep).
    pub fn by_size_desc(&self) -> Vec<(SubDatasetId, u64)> {
        let mut v: Vec<(SubDatasetId, u64)> = self
            .review_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| (SubDatasetId(i as u64), b))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl MoviesConfig {
    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on degenerate configuration.
    pub fn validate(&self) {
        assert!(self.movies > 0, "need at least one movie");
        assert!(self.records > 0, "need at least one record");
        assert!(self.horizon_days > 0, "horizon must be positive");
        assert!(
            self.mean_review_bytes >= 8,
            "reviews must be at least 8 bytes"
        );
        assert!(
            self.burst_shape > 0.0 && self.burst_scale_days > 0.0,
            "burst parameters must be positive"
        );
        assert!(
            self.daily_volatility.is_finite() && self.daily_volatility >= 0.0,
            "daily volatility must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.background_fraction),
            "background fraction must be in [0,1]"
        );
        if let Some(d) = self.hot_release_day {
            assert!(d < self.horizon_days, "hot release day outside horizon");
        }
    }

    /// Generate the chronologically-ordered record stream and the catalog.
    pub fn generate(&self) -> (Vec<Record>, MovieCatalog) {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let popularity = Zipf::new(self.movies, self.popularity_exponent);
        let burst = GammaDist::new(self.burst_shape, self.burst_scale_days);

        // Release days, uniform over the horizon; rank 1 may be pinned.
        let mut release_day: Vec<u32> = (0..self.movies)
            .map(|_| rng.gen_range(0..self.horizon_days))
            .collect();
        if let Some(d) = self.hot_release_day {
            release_day[0] = d;
        }

        // Draw each record's movie by popularity, its day from the movie's
        // post-release day distribution (Gamma burst envelope × log-normal
        // daily volatility), and its size. Day distributions are built
        // lazily per movie and deterministically from (seed, movie), so
        // draw order does not affect them.
        let mut day_cdfs: std::collections::HashMap<usize, Vec<f64>> =
            std::collections::HashMap::new();
        let mut records = Vec::with_capacity(self.records);
        let mut review_count = vec![0u64; self.movies];
        let mut review_bytes = vec![0u64; self.movies];
        let horizon_secs = self.horizon_days as u64 * 86_400;
        for i in 0..self.records {
            let movie = popularity.sample(&mut rng) - 1; // 0-based
            let cdf = day_cdfs
                .entry(movie)
                .or_insert_with(|| self.day_cdf(movie, release_day[movie], &burst));
            let u: f64 = rng.gen();
            let day = cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64;
            let ts = (day * 86_400 + rng.gen_range(0..86_400)).min(horizon_secs - 1);
            let size = self.sample_size(&mut rng);
            review_count[movie] += 1;
            review_bytes[movie] += size as u64;
            records.push(Record::new(
                SubDatasetId(movie as u64),
                ts,
                size,
                self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
        }
        // The log is written (and therefore chunked into blocks) in time
        // order. Stable sort keeps same-timestamp records in draw order for
        // determinism.
        records.sort_by_key(|r| r.timestamp);

        (
            records,
            MovieCatalog {
                release_day,
                review_count,
                review_bytes,
            },
        )
    }

    /// The movie's discrete review-day distribution (CDF over
    /// `0..horizon_days`): the Gamma burst envelope after the release day,
    /// modulated by log-normal daily volatility drawn from a per-movie RNG.
    fn day_cdf(&self, movie: usize, release: u32, burst: &GammaDist) -> Vec<f64> {
        let mut day_rng =
            StdRng::seed_from_u64(self.seed ^ (movie as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let days = self.horizon_days as usize;
        let mut weights = vec![0.0f64; days];
        for (d, w) in weights.iter_mut().enumerate() {
            // One gaussian per day regardless of release keeps the stream
            // aligned (and the CDF independent of the release position).
            let z = gaussian(&mut day_rng);
            if d as u32 >= release {
                let offset = (d as u32 - release) as f64 + 0.5;
                let life = (self.horizon_days - release) as f64;
                let envelope = (1.0 - self.background_fraction) * burst.pdf(offset)
                    + self.background_fraction / life;
                *w = envelope * (self.daily_volatility * z).exp();
            }
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "movie {movie} got an empty day distribution");
        let mut cdf = Vec::with_capacity(days);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        cdf
    }

    /// Review sizes vary uniformly in [mean/2, 3·mean/2).
    fn sample_size(&self, rng: &mut StdRng) -> u32 {
        let lo = (self.mean_review_bytes / 2).max(8);
        let hi = self.mean_review_bytes + self.mean_review_bytes / 2;
        rng.gen_range(lo..hi.max(lo + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MoviesConfig {
        MoviesConfig {
            movies: 100,
            records: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_volume() {
        let (recs, cat) = small().generate();
        assert_eq!(recs.len(), 20_000);
        assert_eq!(cat.review_count.iter().sum::<u64>(), 20_000);
        assert_eq!(
            cat.review_bytes.iter().sum::<u64>(),
            recs.iter().map(|r| r.size as u64).sum::<u64>()
        );
    }

    #[test]
    fn chronological_order() {
        let (recs, _) = small().generate();
        assert!(recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = small().generate();
        let (b, _) = small().generate();
        assert_eq!(a, b);
        let mut cfg = small();
        cfg.seed += 1;
        let (c, _) = cfg.generate();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_zipfian() {
        let (_, cat) = small().generate();
        let ranked = cat.by_size_desc();
        // Top movie holds far more than the median movie.
        let top = ranked[0].1;
        let median = ranked[ranked.len() / 2].1;
        assert!(
            top > 10 * median.max(1),
            "top {top} vs median {median} — popularity not skewed"
        );
        assert_eq!(cat.most_reviewed(), ranked[0].0);
    }

    #[test]
    fn reviews_cluster_around_release() {
        let cfg = small();
        let (recs, cat) = cfg.generate();
        let hot = cat.most_reviewed();
        let release = cat.release_day[hot.raw() as usize] as u64 * 86_400;
        // Most of the hot movie's reviews land within 4 burst scales of its
        // release. In expectation that fraction is (1 - background) · P(Γ(2, 6d)
        // < 24d) ≈ 0.85 · 0.91 ≈ 0.77 plus whatever slice of the flat
        // background rate falls in the window, with daily volatility on top —
        // so 0.7 is the clustering signal with noise margin, while a uniform
        // spread would put only ~24d/365d ≈ 0.07 in the window.
        let horizon_cap = 4.0 * cfg.burst_scale_days * 86_400.0;
        let hits = recs
            .iter()
            .filter(|r| r.subdataset == hot)
            .filter(|r| (r.timestamp as f64) < release as f64 + horizon_cap)
            .count();
        let total = recs.iter().filter(|r| r.subdataset == hot).count();
        assert!(
            hits as f64 > 0.7 * total as f64,
            "{hits}/{total} within the burst window"
        );
    }

    #[test]
    fn sizes_bounded_around_mean() {
        let cfg = small();
        let (recs, _) = cfg.generate();
        let mean = cfg.mean_review_bytes;
        assert!(recs
            .iter()
            .all(|r| r.size >= mean / 2 && r.size < mean + mean / 2 + 1));
    }

    #[test]
    fn timestamps_within_horizon() {
        let cfg = small();
        let (recs, _) = cfg.generate();
        let cap = cfg.horizon_days as u64 * 86_400;
        assert!(recs.iter().all(|r| r.timestamp < cap));
    }

    #[test]
    #[should_panic]
    fn zero_movies_rejected() {
        MoviesConfig {
            movies: 0,
            ..Default::default()
        }
        .generate();
    }
}
