//! Web click-stream generator — the paper's first motivating application
//! ("in recommendation systems and personalized web services, the analysis
//! on the webpage click streams needs to perform user sessionization
//! analysis").
//!
//! Sub-dataset = one user's clicks. Users click in *sessions*: bursts of
//! activity separated by long idle gaps, which is exactly the structure
//! `datanet-analytics::session` reconstructs. Heavy users (Zipf activity)
//! have many sessions spread over the horizon, so a user's data is
//! *bursty in time yet spread across many blocks* — a different
//! sub-dataset geometry from both the movie and the GitHub datasets.

use datanet_dfs::{Record, SubDatasetId};
use datanet_stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the click-stream generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClickstreamConfig {
    /// Number of users (sub-datasets).
    pub users: usize,
    /// Total number of sessions to generate (spread over users by Zipf
    /// activity).
    pub sessions: usize,
    /// Horizon in days.
    pub horizon_days: u32,
    /// Mean clicks per session (geometric, at least 1).
    pub mean_clicks_per_session: f64,
    /// Mean seconds between clicks within a session.
    pub mean_think_secs: u64,
    /// Zipf exponent of user activity.
    pub activity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickstreamConfig {
    fn default() -> Self {
        Self {
            users: 5_000,
            sessions: 30_000,
            horizon_days: 30,
            mean_clicks_per_session: 8.0,
            mean_think_secs: 45,
            activity_exponent: 1.0,
            seed: 0xC11C_5723,
        }
    }
}

impl ClickstreamConfig {
    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on degenerate configuration.
    pub fn validate(&self) {
        assert!(self.users > 0, "need at least one user");
        assert!(self.sessions > 0, "need at least one session");
        assert!(self.horizon_days > 0, "horizon must be positive");
        assert!(
            self.mean_clicks_per_session >= 1.0,
            "sessions need at least one click on average"
        );
        assert!(self.mean_think_secs > 0, "think time must be positive");
    }

    /// Generate the chronologically-ordered click stream.
    pub fn generate(&self) -> Vec<Record> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let activity = Zipf::new(self.users, self.activity_exponent);
        let horizon_secs = self.horizon_days as u64 * 86_400;

        let mut records = Vec::new();
        let mut seq = 0u64;
        for _ in 0..self.sessions {
            let user = activity.sample(&mut rng) - 1;
            let start = rng.gen_range(0..horizon_secs);
            // Geometric click count with the requested mean.
            let p = 1.0 / self.mean_clicks_per_session;
            let mut clicks = 1usize;
            while rng.gen::<f64>() > p && clicks < 200 {
                clicks += 1;
            }
            let mut ts = start;
            for _ in 0..clicks {
                let size = rng.gen_range(80..400);
                records.push(Record::new(
                    SubDatasetId(user as u64),
                    ts.min(horizon_secs - 1),
                    size,
                    self.seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D),
                ));
                seq += 1;
                // Exponential-ish think time (mean `mean_think_secs`).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                ts += (-u.ln() * self.mean_think_secs as f64).ceil() as u64;
            }
        }
        records.sort_by_key(|r| r.timestamp);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClickstreamConfig {
        ClickstreamConfig {
            users: 200,
            sessions: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn generates_sorted_clicks() {
        let recs = small().generate();
        assert!(recs.len() >= 2_000, "at least one click per session");
        assert!(recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    fn activity_is_skewed() {
        let recs = small().generate();
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r.subdataset).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let mean = recs.len() / counts.len();
        assert!(max > 3 * mean, "top user {max} vs mean {mean}");
    }

    #[test]
    fn one_users_clicks_form_detectable_sessions() {
        let cfg = small();
        let recs = cfg.generate();
        // Most active user.
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r.subdataset).or_insert(0usize) += 1;
        }
        let (&hot, _) = counts.iter().max_by_key(|&(s, c)| (*c, s.0)).unwrap();
        let user_clicks: Vec<Record> = recs
            .iter()
            .filter(|r| r.subdataset == hot)
            .copied()
            .collect();
        // A 30-minute gap splits sessions; within-session think time ~45 s,
        // so reconstructed sessions should outnumber 1 and each should hold
        // a handful of clicks.
        let sessions = crate::clickstream_sessions_for_test(&user_clicks, 1800);
        assert!(sessions > 3, "got {sessions} sessions");
        let clicks_per_session = user_clicks.len() as f64 / sessions as f64;
        assert!(
            (1.0..40.0).contains(&clicks_per_session),
            "{clicks_per_session} clicks/session"
        );
    }

    #[test]
    #[should_panic]
    fn zero_users_rejected() {
        ClickstreamConfig {
            users: 0,
            ..Default::default()
        }
        .generate();
    }
}
