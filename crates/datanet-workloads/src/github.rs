//! GitHub-Archive-style event-log generator (Section V-A-4).
//!
//! "The datasets provide more than 20 event types ranging from new commits
//! and fork events to opening new tickets, commenting, and adding members to
//! a project." Event sub-datasets here are keyed by *event type*, not by
//! time-of-interest, so the distribution over blocks is **imbalanced but not
//! content-clustered** (Figure 8(a)) — event mix and payload sizes drift
//! slowly with a daily activity cycle, but there is no release-burst
//! mechanism.

use datanet_dfs::{Record, SubDatasetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The GitHub Archive event taxonomy (22 types, matching "more than 20").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventType {
    /// Commit pushes — by far the most frequent event.
    Push,
    /// New issues — the sub-dataset the paper analyses.
    Issue,
    /// Issue comments.
    IssueComment,
    /// Pull requests.
    PullRequest,
    /// PR review comments.
    PullRequestReviewComment,
    /// Stars ("watch" in the archive).
    Watch,
    /// Forks.
    Fork,
    /// New branches/tags.
    Create,
    /// Deleted branches/tags.
    Delete,
    /// Wiki edits.
    Gollum,
    /// Collaborator added.
    Member,
    /// Repo made public.
    Public,
    /// Releases.
    Release,
    /// Commit comments.
    CommitComment,
    /// Gists.
    Gist,
    /// Follows (legacy).
    Follow,
    /// Downloads (legacy).
    Download,
    /// Team additions (legacy).
    TeamAdd,
    /// Deployments.
    Deployment,
    /// Deployment statuses.
    DeploymentStatus,
    /// Status checks.
    Status,
    /// Forks applied (legacy).
    ForkApply,
}

impl EventType {
    /// All event types, in sub-dataset-id order.
    pub const ALL: [EventType; 22] = [
        EventType::Push,
        EventType::Issue,
        EventType::IssueComment,
        EventType::PullRequest,
        EventType::PullRequestReviewComment,
        EventType::Watch,
        EventType::Fork,
        EventType::Create,
        EventType::Delete,
        EventType::Gollum,
        EventType::Member,
        EventType::Public,
        EventType::Release,
        EventType::CommitComment,
        EventType::Gist,
        EventType::Follow,
        EventType::Download,
        EventType::TeamAdd,
        EventType::Deployment,
        EventType::DeploymentStatus,
        EventType::Status,
        EventType::ForkApply,
    ];

    /// The sub-dataset id of this event type.
    pub fn id(self) -> SubDatasetId {
        SubDatasetId(Self::ALL.iter().position(|&e| e == self).expect("in ALL") as u64)
    }

    /// Relative frequency weight (calibrated to published GitHub Archive
    /// statistics: pushes ≈ half of all events, a long tail of rare types).
    pub fn frequency_weight(self) -> f64 {
        match self {
            EventType::Push => 50.0,
            EventType::Create => 10.0,
            EventType::Watch => 8.0,
            EventType::IssueComment => 7.0,
            EventType::Issue => 5.0,
            EventType::PullRequest => 4.5,
            EventType::Fork => 3.5,
            EventType::Status => 3.0,
            EventType::Delete => 2.5,
            EventType::PullRequestReviewComment => 1.5,
            EventType::Gollum => 1.0,
            EventType::CommitComment => 0.8,
            EventType::Release => 0.7,
            EventType::Member => 0.5,
            EventType::Gist => 0.4,
            EventType::Deployment => 0.3,
            EventType::DeploymentStatus => 0.3,
            EventType::Public => 0.2,
            EventType::TeamAdd => 0.2,
            EventType::Follow => 0.15,
            EventType::Download => 0.1,
            EventType::ForkApply => 0.05,
        }
    }

    /// Mean payload bytes per event (push events carry commit lists and are
    /// much bigger than watch events).
    pub fn mean_bytes(self) -> u32 {
        match self {
            EventType::Push => 2048,
            EventType::PullRequest => 1536,
            EventType::Issue => 1024,
            EventType::IssueComment => 896,
            EventType::PullRequestReviewComment => 896,
            EventType::Release => 768,
            EventType::CommitComment => 640,
            EventType::Gollum => 512,
            EventType::Create => 384,
            EventType::Deployment | EventType::DeploymentStatus => 384,
            EventType::Status => 320,
            EventType::Fork => 256,
            EventType::Gist => 256,
            EventType::Delete => 192,
            EventType::Member | EventType::TeamAdd => 192,
            EventType::Public => 128,
            EventType::Watch | EventType::Follow => 128,
            EventType::Download => 128,
            EventType::ForkApply => 128,
        }
    }
}

/// Configuration of the event-log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GithubConfig {
    /// Number of events.
    pub records: usize,
    /// Horizon in days.
    pub horizon_days: u32,
    /// Amplitude of the daily activity cycle in `[0, 1)`; makes the event
    /// *rate* (and thus block composition) drift without clustering any
    /// single type.
    pub daily_cycle: f64,
    /// Log-normal σ of the per-day, per-type mix jitter: real repositories
    /// see triage sprints and CI storms that swing one type's share for a
    /// day. This produces Figure 8(a)'s *imbalanced yet unclustered*
    /// per-block distribution. 0 disables jitter.
    pub mix_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GithubConfig {
    fn default() -> Self {
        Self {
            records: 200_000,
            horizon_days: 30,
            daily_cycle: 0.5,
            mix_jitter: 0.8,
            seed: 0x6174_4875,
        }
    }
}

impl GithubConfig {
    /// Validate parameters.
    ///
    /// # Panics
    /// Panics on degenerate configuration.
    pub fn validate(&self) {
        assert!(self.records > 0, "need at least one event");
        assert!(self.horizon_days > 0, "horizon must be positive");
        assert!(
            (0.0..1.0).contains(&self.daily_cycle),
            "daily cycle amplitude must be in [0,1)"
        );
        assert!(
            self.mix_jitter.is_finite() && self.mix_jitter >= 0.0,
            "mix jitter must be non-negative"
        );
    }

    /// Generate the chronologically-ordered event stream.
    pub fn generate(&self) -> Vec<Record> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let base_weights: Vec<f64> = EventType::ALL
            .iter()
            .map(|e| e.frequency_weight())
            .collect();
        // Per-day cumulative frequency tables with log-normal mix jitter.
        let day_cdfs: Vec<Vec<f64>> = (0..self.horizon_days)
            .map(|_| {
                let jittered: Vec<f64> = base_weights
                    .iter()
                    .map(|w| {
                        let z = gaussian(&mut rng);
                        w * (self.mix_jitter * z).exp()
                    })
                    .collect();
                let total: f64 = jittered.iter().sum();
                let mut cdf = Vec::with_capacity(jittered.len());
                let mut acc = 0.0;
                for w in &jittered {
                    acc += w / total;
                    cdf.push(acc);
                }
                *cdf.last_mut().expect("non-empty") = 1.0;
                cdf
            })
            .collect();

        let horizon_secs = self.horizon_days as u64 * 86_400;
        let mut records = Vec::with_capacity(self.records);
        for i in 0..self.records {
            // Timestamp: uniform base with a sinusoidal daily cycle applied
            // via rejection (keeps the inverse simple and exact).
            let ts = loop {
                let t = rng.gen_range(0..horizon_secs);
                let phase = (t % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
                let density = 1.0 + self.daily_cycle * phase.sin();
                if rng.gen::<f64>() * (1.0 + self.daily_cycle) <= density {
                    break t;
                }
            };
            let cdf = &day_cdfs[(ts / 86_400) as usize];
            let u: f64 = rng.gen();
            let ev = EventType::ALL[cdf.partition_point(|&c| c < u).min(cdf.len() - 1)];
            let mean = ev.mean_bytes();
            let size = rng.gen_range((mean / 2).max(8)..mean + mean / 2);
            records.push(Record::new(
                ev.id(),
                ts,
                size,
                self.seed ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            ));
        }
        records.sort_by_key(|r| r.timestamp);
        records
    }
}

/// One standard-normal deviate (Box–Muller; local to avoid a rand_distr
/// dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> GithubConfig {
        GithubConfig {
            records: 50_000,
            ..Default::default()
        }
    }

    /// Jitter-free variant for exact-mix assertions.
    fn small_stationary() -> GithubConfig {
        GithubConfig {
            mix_jitter: 0.0,
            ..small()
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        for (i, e) in EventType::ALL.iter().enumerate() {
            assert_eq!(e.id(), SubDatasetId(i as u64));
        }
    }

    #[test]
    fn generates_sorted_events() {
        let recs = small().generate();
        assert_eq!(recs.len(), 50_000);
        assert!(recs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn event_mix_matches_weights() {
        let recs = small_stationary().generate();
        let mut counts: HashMap<SubDatasetId, usize> = HashMap::new();
        for r in &recs {
            *counts.entry(r.subdataset).or_default() += 1;
        }
        let push = counts[&EventType::Push.id()] as f64 / recs.len() as f64;
        assert!(
            (0.45..0.55).contains(&push),
            "push fraction {push}, expected ≈ 0.5"
        );
        let issue = counts[&EventType::Issue.id()] as f64 / recs.len() as f64;
        assert!((0.03..0.08).contains(&issue), "issue fraction {issue}");
        // Rare types still occur.
        assert!(counts.contains_key(&EventType::Member.id()));
    }

    #[test]
    fn no_content_clustering_for_issue_events() {
        // The defining contrast with the movie dataset: IssueEvents spread
        // across the whole horizon. Split time into 10 slices; every slice
        // should hold some IssueEvent data and no slice should dominate.
        let cfg = small_stationary();
        let recs = cfg.generate();
        let horizon = cfg.horizon_days as u64 * 86_400;
        let mut slices = [0usize; 10];
        for r in recs
            .iter()
            .filter(|r| r.subdataset == EventType::Issue.id())
        {
            slices[(r.timestamp * 10 / horizon).min(9) as usize] += 1;
        }
        let max = *slices.iter().max().unwrap();
        let min = *slices.iter().min().unwrap();
        assert!(min > 0, "IssueEvents missing from a whole time slice");
        assert!(max < 3 * min, "IssueEvents clustered: slices {slices:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(small().generate(), small().generate());
    }

    #[test]
    fn mix_jitter_imbalances_without_clustering() {
        // The Figure 8(a) regime: with jitter on, IssueEvent density varies
        // visibly across time slices (imbalance) yet never vanishes from a
        // slice (no content clustering).
        let cfg = small();
        let recs = cfg.generate();
        let horizon = cfg.horizon_days as u64 * 86_400;
        let mut slices = [0u64; 10];
        for r in recs
            .iter()
            .filter(|r| r.subdataset == EventType::Issue.id())
        {
            slices[(r.timestamp * 10 / horizon).min(9) as usize] += r.size as u64;
        }
        let max = *slices.iter().max().unwrap();
        let min = *slices.iter().min().unwrap();
        assert!(min > 0, "IssueEvents missing from a slice: {slices:?}");
        assert!(
            max as f64 > 1.5 * min as f64,
            "jitter produced no imbalance: {slices:?}"
        );
    }

    #[test]
    fn payload_sizes_follow_type_means() {
        let recs = small().generate();
        let avg = |id: SubDatasetId| {
            let (mut n, mut s) = (0u64, 0u64);
            for r in recs.iter().filter(|r| r.subdataset == id) {
                n += 1;
                s += r.size as u64;
            }
            s as f64 / n.max(1) as f64
        };
        assert!(avg(EventType::Push.id()) > 3.0 * avg(EventType::Watch.id()));
    }

    #[test]
    #[should_panic]
    fn full_cycle_amplitude_rejected() {
        GithubConfig {
            daily_cycle: 1.0,
            ..Default::default()
        }
        .generate();
    }
}
