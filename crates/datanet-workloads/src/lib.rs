//! Synthetic workload generators reproducing the paper's datasets.
//!
//! The paper evaluates on (a) a movie-rating/review log derived from
//! MovieTweetings/MovieLens, stored chronologically — strongly
//! content-clustered because "most reviews about a movie are clustered
//! around the time of its release" — and (b) GitHub Archive event logs,
//! whose `IssueEvent` sub-dataset is imbalanced across blocks *without*
//! obvious clustering. Neither raw corpus ships with this reproduction, so
//! [`movies`] and [`github`] generate records with the same distributional
//! structure (see DESIGN.md for the substitution argument), and
//! [`worldcup`] adds the bursty web-access-log regime of the paper's
//! reference \[3\].
//!
//! All generators are deterministic under a fixed seed and emit records in
//! timestamp order — the property that turns temporal locality into HDFS
//! block clustering.

pub mod clickstream;
pub mod github;
pub mod movies;
pub mod worldcup;

pub use clickstream::ClickstreamConfig;
pub use github::{EventType, GithubConfig};
pub use movies::{MovieCatalog, MoviesConfig};
pub use worldcup::WorldCupConfig;

/// Session counter used by clickstream tests (kept here to avoid a cyclic
/// dev-dependency on `datanet-analytics`, which owns the real
/// sessionization).
#[doc(hidden)]
pub fn clickstream_sessions_for_test(records: &[datanet_dfs::Record], gap_secs: u64) -> usize {
    if records.is_empty() {
        return 0;
    }
    1 + records
        .windows(2)
        .filter(|w| w[1].timestamp - w[0].timestamp > gap_secs)
        .count()
}
