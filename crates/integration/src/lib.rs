//! Cross-crate integration tests live in `/tests`; runnable examples in
//! `/examples`. This crate wires them into the workspace build and hosts
//! the shared scaffolding they all lean on.

pub mod testkit {
    //! Shared scaffolding for the durable-store crash-sweep tests.
    //!
    //! Both the checkpointed-pipeline sweep (`tests/pipeline.rs`) and the
    //! streaming-ingest sweep (`tests/ingest.rs`) exercise the same shape
    //! of property: a commit plan of N ordered writes is interrupted
    //! after every prefix, and recovery must land in exactly the state
    //! the durable prefix implies. The prefix enumeration and the
    //! resume-point derivation used to be re-derived in each file; they
    //! live here once now.

    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Self-cleaning replica directories for one checkpoint or metadata
    /// store. Unique per instantiation (pid + sequence), removed on drop
    /// including the unwinding path, so a failing assertion leaks
    /// nothing into the temp dir.
    pub struct ReplicaDirs {
        base: PathBuf,
        dirs: Vec<PathBuf>,
    }

    impl ReplicaDirs {
        pub fn new(tag: &str, replicas: usize) -> Self {
            let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let base =
                std::env::temp_dir().join(format!("datanet-it-{tag}-{}-{seq}", std::process::id()));
            let _ = fs::remove_dir_all(&base);
            let dirs = (0..replicas)
                .map(|i| base.join(format!("replica-{i}")))
                .collect();
            Self { base, dirs }
        }

        pub fn paths(&self) -> Vec<&Path> {
            self.dirs.iter().map(PathBuf::as_path).collect()
        }
    }

    impl Drop for ReplicaDirs {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.base);
        }
    }

    /// Every crash point of a `writes`-write durable plan, in order:
    /// nothing landed, each proper prefix, and all writes landed. Sweep
    /// tests iterate this instead of hand-rolling `0..=n` bounds.
    pub fn write_prefixes(writes: usize) -> impl Iterator<Item = usize> {
        0..=writes
    }

    /// Where a checkpointed pipeline resumes after a crash `applied` of
    /// `planned` writes into `stage`: the full plan makes the crashed
    /// stage durable; any shorter prefix rolls back to the previous
    /// stage, or to a fresh run when the first stage was interrupted.
    pub fn expected_resume_from(stage: usize, applied: usize, planned: usize) -> Option<u64> {
        if applied == planned {
            Some(stage as u64)
        } else if stage > 0 {
            Some(stage as u64 - 1)
        } else {
            None
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn prefix_sweep_covers_every_crash_point() {
            assert_eq!(write_prefixes(3).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
            assert_eq!(write_prefixes(0).collect::<Vec<_>>(), vec![0]);
        }

        #[test]
        fn resume_point_matches_the_durability_rule() {
            assert_eq!(expected_resume_from(2, 3, 3), Some(2));
            assert_eq!(expected_resume_from(2, 1, 3), Some(1));
            assert_eq!(expected_resume_from(0, 0, 3), None);
            assert_eq!(expected_resume_from(0, 3, 3), Some(0));
        }

        #[test]
        fn replica_dirs_clean_up_after_themselves() {
            let base;
            {
                let dirs = ReplicaDirs::new("selftest", 2);
                base = dirs.paths()[0].parent().unwrap().to_path_buf();
                for p in dirs.paths() {
                    fs::create_dir_all(p).unwrap();
                }
                assert!(base.exists());
            }
            assert!(!base.exists(), "drop must remove the tree");
        }
    }
}
