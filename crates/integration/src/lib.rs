//! Cross-crate integration tests live in `/tests`; runnable examples in
//! `/examples`. This crate only wires them into the workspace build.
