//! Windowed metrics registry — the always-on monitoring plane.
//!
//! Where the trace buffer keeps *every event* (opt-in, unbounded), the
//! metrics registry keeps *aggregates*: named counters, gauges and
//! Fibonacci histograms, each additionally bucketed into fixed
//! simulated-clock windows so rates and per-window percentiles fall out
//! of a snapshot.
//!
//! # Determinism contract
//!
//! A snapshot must be identical for identical seeds, regardless of how
//! the rayon workers of the sharded ElasticMap build interleave. The
//! registry therefore aggregates by clock domain:
//!
//! * **Sim-clock** events carry deterministic timestamps and durations —
//!   they feed windowed counters, windowed duration histograms and
//!   windowed gauges.
//! * **Wall-clock** events have nondeterministic timestamps — they feed
//!   *count-only* series (how many shard loads, how many scan spans),
//!   never durations and never windows.
//!
//! A snapshot presents every series under its canonical label string in
//! a `BTreeMap`, so snapshot ordering is stable by construction.
//!
//! # Hot-path layout
//!
//! "Always on" only works if metering a span costs nanoseconds, so the
//! registry never touches a string on a warm path. Names and tenants are
//! interned to `u32` symbols once; each distinct
//! `(name, cat, domain, node, query, tenant)` combination resolves
//! through an FxHash cache to integer series ids **once**, paying the
//! canonical-key formatting at that moment only. In front of those maps
//! sit small direct-mapped caches indexed by the caller's string
//! *pointer* (instrumented names are literals) and verified by content,
//! so a warm event does not even hash: it is a slot probe, a memcmp of a
//! short name, and `Vec`-indexed bumps. Metrics-only spans resolve their
//! series at `begin` and park them in a generation-tagged slab, making
//! `end` a slab read plus the bumps. Per-window storage is a sorted
//! vector with an O(1) fast path for the common case of time moving
//! forward, and the whole registry sits behind a spinlock
//! ([`crate::sync::SpinLock`]) because the critical sections are
//! nanosecond-scale.

use crate::hist::FibHistogram;
use crate::recorder::{Category, Domain, SpanCtx};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Canonical series key: `name{k1="v1",k2="v2"}` with labels sorted by
/// key (empty label set → bare name). This is exactly the OpenMetrics
/// sample syntax, so the exporter can emit keys verbatim.
pub fn series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::with_capacity(name.len() + 2 + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Escape the label value per the OpenMetrics text format.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Split a canonical series key back into `(name, labels)`.
pub fn split_series(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Multiply-xor hasher (the rustc-hash construction). Series resolution
/// sits on the span hot path, where SipHash's per-byte cost is the
/// single largest term; none of these maps are exposed to untrusted
/// keys, so DoS resistance buys nothing here.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" differ.
            self.word(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Per-window values of one series, sorted by window start. Events
/// mostly arrive with non-decreasing timestamps, so the last entry is an
/// O(1) hit and out-of-order windows fall back to a binary insert.
#[derive(Debug, Clone)]
struct WindowSeries<T> {
    entries: Vec<(u64, T)>,
}

impl<T: Default> WindowSeries<T> {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    fn slot(&mut self, w: u64) -> &mut T {
        let n = self.entries.len();
        if n > 0 {
            let last = self.entries[n - 1].0;
            if last == w {
                return &mut self.entries[n - 1].1;
            }
            if w < last {
                return match self.entries.binary_search_by_key(&w, |e| e.0) {
                    Ok(i) => &mut self.entries[i].1,
                    Err(i) => {
                        self.entries.insert(i, (w, T::default()));
                        &mut self.entries[i].1
                    }
                };
            }
        }
        self.entries.push((w, T::default()));
        &mut self.entries.last_mut().expect("just pushed").1
    }
}

/// Merge two window lists sorted by window start, summing values of
/// windows present in both.
fn merge_windows(a: Vec<(u64, u64)>, b: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sentinel for "no interned symbol" in the direct-mapped caches.
const NONE_SYM: u32 = u32::MAX;
/// Slot counts of the direct-mapped caches (powers of two).
const OP_SLOTS: usize = 128;
// Span shapes multiply per node (each `(name, node)` pair resolves its
// own busy series), so the span cache needs room for dozens of nodes
// times a handful of span names before collision pairs start evicting
// each other every event.
const SPAN_SLOTS: usize = 512;

/// One line of the direct-mapped counter/histogram cache. Instrumented
/// call sites pass `&'static str` names, so the string *pointer* indexes
/// a slot and the content check below confirms the hit — a warm event
/// skips both the interner and the scoped-id hash probes entirely. A
/// collision merely evicts the line; correctness comes from the verify.
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    live: bool,
    name_sym: u32,
    tenant_sym: u32,
    query: Option<u64>,
    id: u32,
}

impl CacheSlot {
    const EMPTY: CacheSlot = CacheSlot {
        live: false,
        name_sym: 0,
        tenant_sym: NONE_SYM,
        query: None,
        id: 0,
    };
}

/// One line of the direct-mapped span-shape cache: the full shape checked
/// on hit, the resolved series ids as payload.
#[derive(Debug, Clone, Copy)]
struct SpanSlot {
    live: bool,
    name_sym: u32,
    tenant_sym: u32,
    query: Option<u64>,
    cat: Category,
    domain: Domain,
    node: Option<u64>,
    series: SpanSeries,
}

impl SpanSlot {
    const EMPTY: SpanSlot = SpanSlot {
        live: false,
        name_sym: 0,
        tenant_sym: NONE_SYM,
        query: None,
        cat: Category::Task,
        domain: Domain::Sim,
        node: None,
        series: SpanSeries {
            spans: 0,
            dur: None,
            busy: None,
        },
    };
}

/// A metrics-only open span in the slab: series ids are resolved at
/// `open_span` time (every label is known then), so closing is a slab
/// read plus `Vec`-indexed bumps. The generation tag makes a stale
/// handle to a reused slot panic instead of metering the wrong span.
#[derive(Debug, Clone, Copy)]
struct OpenSlot {
    live: bool,
    gen: u32,
    cat: Category,
    domain: Domain,
    start_us: u64,
    node: Option<u64>,
    query: Option<u64>,
    name_sym: u32,
    tenant_sym: u32,
    series: SpanSeries,
}

impl OpenSlot {
    const DEAD: OpenSlot = OpenSlot {
        live: false,
        gen: 0,
        cat: Category::Task,
        domain: Domain::Sim,
        start_us: 0,
        node: None,
        query: None,
        name_sym: 0,
        tenant_sym: NONE_SYM,
        series: SpanSeries {
            spans: 0,
            dur: None,
            busy: None,
        },
    };
}

/// What the recorder needs to forward a flight-worthy span close
/// (checkpoint commit) into the flight ring.
pub(crate) struct SpanFlight {
    pub domain: Domain,
    pub node: Option<u64>,
    pub query: Option<u64>,
    pub tenant: Option<String>,
    pub detail: String,
}

/// Cache key for one distinct span shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpanKey {
    name: u32,
    cat: Category,
    domain: Domain,
    /// Only set when the node labels a series (sim-clock task spans).
    node: Option<u64>,
    query: Option<u64>,
    tenant: Option<u32>,
}

/// Resolved series ids for one span shape.
#[derive(Debug, Clone, Copy)]
struct SpanSeries {
    /// `spans{...}` counter id.
    spans: u32,
    /// `span_us{...}` histogram id (sim spans only).
    dur: Option<u32>,
    /// `node_busy_us{node=...}` counter id (sim task spans on a node).
    busy: Option<u32>,
}

/// Cache key for one distinct instant shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InstantKey {
    name: u32,
    cat: Category,
    query: Option<u64>,
    tenant: Option<u32>,
}

/// Cache key for a bare counter/histogram/gauge name under a query scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScopeKey {
    name: u32,
    query: Option<u64>,
    tenant: Option<u32>,
}

/// Per-kind series ids of one scoped name, filled lazily per kind.
#[derive(Debug, Clone, Copy, Default)]
struct ScopedIds {
    counter: Option<u32>,
    hist: Option<u32>,
    gauge: Option<u32>,
}

/// The live registry behind [`crate::Recorder`]'s metrics handle.
#[derive(Debug, Clone)]
pub(crate) struct MetricsData {
    /// Window width in simulated microseconds.
    pub window_us: u64,
    /// Interned names and tenants, symbol → string.
    names: Vec<String>,
    name_ids: FxMap<String, u32>,
    /// Counter plane: canonical key, cumulative value and windows per id.
    counter_keys: Vec<String>,
    counter_ids: FxMap<String, u32>,
    counter_vals: Vec<u64>,
    counter_wins: Vec<WindowSeries<u64>>,
    /// Histogram plane.
    hist_keys: Vec<String>,
    hist_ids: FxMap<String, u32>,
    hist_vals: Vec<FibHistogram>,
    hist_wins: Vec<WindowSeries<FibHistogram>>,
    /// Gauge plane (last write wins; windowed on the sim clock).
    gauge_keys: Vec<String>,
    gauge_ids: FxMap<String, u32>,
    gauge_vals: Vec<f64>,
    gauge_wins: Vec<WindowSeries<f64>>,
    /// Sim span counters synthesised from their duration histograms at
    /// snapshot time (a span close is exactly one hist sample), keyed
    /// spans-counter id → hist id. Lets the close path skip one
    /// windowed counter update without changing the export.
    span_count_from_hist: FxMap<u32, u32>,
    /// Warm-path resolution caches.
    span_cache: FxMap<SpanKey, SpanSeries>,
    instant_cache: FxMap<InstantKey, u32>,
    scoped_cache: FxMap<ScopeKey, ScopedIds>,
    /// Direct-mapped front caches over the maps above, indexed by the
    /// caller's string pointer and verified by content.
    counter_slots: Vec<CacheSlot>,
    hist_slots: Vec<CacheSlot>,
    span_slots: Vec<SpanSlot>,
    /// Metrics-only open spans (tracing disabled): slab + free list.
    open_slots: Vec<OpenSlot>,
    open_free: Vec<u32>,
    /// Notes attached at open time (rare), keyed by raw span id.
    open_notes: FxMap<u64, String>,
    /// Bounds of the most recently touched window. Sim time moves slowly
    /// relative to the window width, so almost every event lands in the
    /// same window as its predecessor and skips the division.
    win_lo: u64,
    win_hi: u64,
}

impl MetricsData {
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "metrics window must be positive");
        Self {
            window_us,
            names: Vec::new(),
            name_ids: FxMap::default(),
            counter_keys: Vec::new(),
            counter_ids: FxMap::default(),
            counter_vals: Vec::new(),
            counter_wins: Vec::new(),
            hist_keys: Vec::new(),
            hist_ids: FxMap::default(),
            hist_vals: Vec::new(),
            hist_wins: Vec::new(),
            gauge_keys: Vec::new(),
            gauge_ids: FxMap::default(),
            gauge_vals: Vec::new(),
            gauge_wins: Vec::new(),
            span_count_from_hist: FxMap::default(),
            span_cache: FxMap::default(),
            instant_cache: FxMap::default(),
            scoped_cache: FxMap::default(),
            counter_slots: vec![CacheSlot::EMPTY; OP_SLOTS],
            hist_slots: vec![CacheSlot::EMPTY; OP_SLOTS],
            span_slots: vec![SpanSlot::EMPTY; SPAN_SLOTS],
            open_slots: Vec::new(),
            open_free: Vec::new(),
            open_notes: FxMap::default(),
            win_lo: 0,
            win_hi: 0,
        }
    }

    #[inline]
    fn window_of(&mut self, at_us: u64) -> u64 {
        if at_us >= self.win_lo && at_us < self.win_hi {
            return self.win_lo;
        }
        let w = at_us - at_us % self.window_us;
        self.win_lo = w;
        self.win_hi = w.saturating_add(self.window_us);
        w
    }

    /// Intern a name or tenant string.
    pub(crate) fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.to_string());
        self.name_ids.insert(s.to_string(), id);
        id
    }

    /// The string behind an interned symbol.
    pub(crate) fn name_of(&self, sym: u32) -> &str {
        &self.names[sym as usize]
    }

    /// Id of a counter series by canonical key, allocating on first use.
    fn counter_id(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.counter_ids.get(key) {
            return id;
        }
        let id = self.counter_vals.len() as u32;
        self.counter_keys.push(key.to_string());
        self.counter_ids.insert(key.to_string(), id);
        self.counter_vals.push(0);
        self.counter_wins.push(WindowSeries::new());
        id
    }

    fn hist_id(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.hist_ids.get(key) {
            return id;
        }
        let id = self.hist_vals.len() as u32;
        self.hist_keys.push(key.to_string());
        self.hist_ids.insert(key.to_string(), id);
        self.hist_vals.push(FibHistogram::micros());
        self.hist_wins.push(WindowSeries::new());
        id
    }

    fn gauge_id(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.gauge_ids.get(key) {
            return id;
        }
        let id = self.gauge_vals.len() as u32;
        self.gauge_keys.push(key.to_string());
        self.gauge_ids.insert(key.to_string(), id);
        self.gauge_vals.push(0.0);
        self.gauge_wins.push(WindowSeries::new());
        id
    }

    /// Canonical key of a bare name under a query scope.
    fn scoped_key(&self, name: u32, query: Option<u64>, tenant: Option<u32>) -> String {
        let name = &self.names[name as usize];
        match query {
            None => name.clone(),
            Some(q) => {
                let qid = q.to_string();
                let mut labels: Vec<(&str, &str)> = vec![("query", qid.as_str())];
                let t = tenant.map(|t| self.names[t as usize].as_str());
                if let Some(t) = t {
                    labels.push(("tenant", t));
                }
                series(name, &labels)
            }
        }
    }

    fn scope_key(&mut self, name: &str, query: Option<u64>, tenant: Option<&str>) -> ScopeKey {
        ScopeKey {
            name: self.intern(name),
            query,
            tenant: tenant.map(|t| self.intern(t)),
        }
    }

    /// Counter id for a bare name under a query scope.
    pub(crate) fn scoped_counter_id(
        &mut self,
        name: &str,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u32 {
        let key = self.scope_key(name, query, tenant);
        if let Some(ids) = self.scoped_cache.get(&key) {
            if let Some(c) = ids.counter {
                return c;
            }
        }
        let ks = self.scoped_key(key.name, key.query, key.tenant);
        let c = self.counter_id(&ks);
        self.scoped_cache.entry(key).or_default().counter = Some(c);
        c
    }

    /// Histogram id for a bare name under a query scope.
    pub(crate) fn scoped_hist_id(
        &mut self,
        name: &str,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u32 {
        let key = self.scope_key(name, query, tenant);
        if let Some(ids) = self.scoped_cache.get(&key) {
            if let Some(h) = ids.hist {
                return h;
            }
        }
        let ks = self.scoped_key(key.name, key.query, key.tenant);
        let h = self.hist_id(&ks);
        self.scoped_cache.entry(key).or_default().hist = Some(h);
        h
    }

    /// Gauge id for a bare name under a query scope.
    pub(crate) fn scoped_gauge_id(
        &mut self,
        name: &str,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u32 {
        let key = self.scope_key(name, query, tenant);
        if let Some(ids) = self.scoped_cache.get(&key) {
            if let Some(g) = ids.gauge {
                return g;
            }
        }
        let ks = self.scoped_key(key.name, key.query, key.tenant);
        let g = self.gauge_id(&ks);
        self.scoped_cache.entry(key).or_default().gauge = Some(g);
        g
    }

    /// Direct-map index of a name: call sites pass literals, so the
    /// pointer identifies the site.
    #[inline]
    fn op_slot_index(name: &str) -> usize {
        let p = name.as_ptr() as usize;
        (p ^ (p >> 7) ^ name.len()) & (OP_SLOTS - 1)
    }

    /// Does a cached tenant symbol match the caller's tenant?
    #[inline]
    fn tenant_matches(&self, slot_sym: u32, tenant: Option<&str>) -> bool {
        match tenant {
            None => slot_sym == NONE_SYM,
            Some(t) => slot_sym != NONE_SYM && self.names[slot_sym as usize] == t,
        }
    }

    /// [`MetricsData::scoped_counter_id`] behind the direct-mapped cache.
    #[inline]
    pub(crate) fn fast_counter_id(
        &mut self,
        name: &str,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u32 {
        let idx = Self::op_slot_index(name);
        let slot = self.counter_slots[idx];
        if slot.live
            && slot.query == query
            && self.names[slot.name_sym as usize] == name
            && self.tenant_matches(slot.tenant_sym, tenant)
        {
            return slot.id;
        }
        let id = self.scoped_counter_id(name, query, tenant);
        let name_sym = self.intern(name);
        let tenant_sym = tenant.map_or(NONE_SYM, |t| self.intern(t));
        self.counter_slots[idx] = CacheSlot {
            live: true,
            name_sym,
            tenant_sym,
            query,
            id,
        };
        id
    }

    /// [`MetricsData::scoped_hist_id`] behind the direct-mapped cache.
    #[inline]
    pub(crate) fn fast_hist_id(
        &mut self,
        name: &str,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u32 {
        let idx = Self::op_slot_index(name);
        let slot = self.hist_slots[idx];
        if slot.live
            && slot.query == query
            && self.names[slot.name_sym as usize] == name
            && self.tenant_matches(slot.tenant_sym, tenant)
        {
            return slot.id;
        }
        let id = self.scoped_hist_id(name, query, tenant);
        let name_sym = self.intern(name);
        let tenant_sym = tenant.map_or(NONE_SYM, |t| self.intern(t));
        self.hist_slots[idx] = CacheSlot {
            live: true,
            name_sym,
            tenant_sym,
            query,
            id,
        };
        id
    }

    /// Direct-map index of a span shape: per-node task spans get their
    /// own lines (the node multiplies into the index), shapes that share
    /// a name spread by pointer.
    #[inline]
    fn span_slot_index(name: &str, cat: Category, node: Option<u64>) -> usize {
        let p = name.as_ptr() as usize;
        let n = node.unwrap_or(0).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize;
        (p ^ (p >> 7) ^ name.len() ^ ((cat as usize) << 3) ^ (n >> 56)) & (SPAN_SLOTS - 1)
    }

    /// Open a metrics-only span: resolve its series ids now (every label
    /// is known at open time — the recorder folds its scope in before
    /// calling) and park them in the slab. Returns the raw slab handle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn open_span(
        &mut self,
        cat: Category,
        name: &str,
        domain: Domain,
        start_us: u64,
        node: Option<u64>,
        query: Option<u64>,
        tenant: Option<&str>,
    ) -> u64 {
        let idx = Self::span_slot_index(name, cat, node);
        let slot = self.span_slots[idx];
        let (name_sym, tenant_sym, series) = if slot.live
            && slot.cat == cat
            && slot.domain == domain
            && slot.node == node
            && slot.query == query
            && self.names[slot.name_sym as usize] == name
            && self.tenant_matches(slot.tenant_sym, tenant)
        {
            (slot.name_sym, slot.tenant_sym, slot.series)
        } else {
            let name_sym = self.intern(name);
            let tenant_sym = tenant.map_or(NONE_SYM, |t| self.intern(t));
            let topt = (tenant_sym != NONE_SYM).then_some(tenant_sym);
            let series = self.resolve_span_series(cat, name_sym, domain, node, query, topt);
            self.span_slots[idx] = SpanSlot {
                live: true,
                name_sym,
                tenant_sym,
                query,
                cat,
                domain,
                node,
                series,
            };
            (name_sym, tenant_sym, series)
        };
        let (index, gen) = match self.open_free.pop() {
            Some(i) => {
                // Bump the generation so a stale handle to this slot is
                // caught. 31 bits: the id must leave the top bit free
                // for the recorder's METRICS_BIT.
                let g = (self.open_slots[i as usize].gen.wrapping_add(1)) & 0x7FFF_FFFF;
                (i, g.max(1))
            }
            None => {
                self.open_slots.push(OpenSlot::DEAD);
                ((self.open_slots.len() - 1) as u32, 1)
            }
        };
        self.open_slots[index as usize] = OpenSlot {
            live: true,
            gen,
            cat,
            domain,
            start_us,
            node,
            query,
            name_sym,
            tenant_sym,
            series,
        };
        ((gen as u64) << 32) | index as u64
    }

    /// Attach a note to an open metrics-only span (kept only for
    /// flight-worthy closes).
    pub(crate) fn set_open_note(&mut self, id: u64, note: String) {
        self.open_notes.insert(id, note);
    }

    /// Close a metrics-only span: meter it and, when asked and the span
    /// is flight-worthy (a checkpoint commit), return what the flight
    /// ring needs.
    ///
    /// # Panics
    /// Panics when the handle is stale ("closed twice") or the span ends
    /// before it starts.
    pub(crate) fn close_span(
        &mut self,
        id: u64,
        end_us: u64,
        note: Option<&str>,
        want_flight: bool,
    ) -> Option<SpanFlight> {
        let index = (id & 0xFFFF_FFFF) as usize;
        let gen = (id >> 32) as u32;
        let ok = self
            .open_slots
            .get(index)
            .is_some_and(|s| s.live && s.gen == gen);
        assert!(ok, "metrics-only span closed twice");
        let slot = self.open_slots[index];
        assert!(
            end_us >= slot.start_us,
            "span \"{}\" ends at {}us before it starts at {}us",
            self.name_of(slot.name_sym),
            end_us,
            slot.start_us
        );
        self.open_slots[index].live = false;
        self.open_free.push(index as u32);
        self.apply_span(slot.series, slot.domain, slot.start_us, end_us);
        let stored = if self.open_notes.is_empty() {
            None
        } else {
            self.open_notes.remove(&id)
        };
        if want_flight && slot.cat == Category::Checkpoint {
            let name = self.name_of(slot.name_sym);
            let detail = match note.map(str::to_string).or(stored) {
                Some(n) => format!("{name}: {n}"),
                None => name.to_string(),
            };
            return Some(SpanFlight {
                domain: slot.domain,
                node: slot.node,
                query: slot.query,
                tenant: (slot.tenant_sym != NONE_SYM)
                    .then(|| self.name_of(slot.tenant_sym).to_string()),
                detail,
            });
        }
        None
    }

    /// Bump a counter by id.
    #[inline]
    pub(crate) fn counter_add(&mut self, id: u32, delta: u64) {
        self.counter_vals[id as usize] += delta;
    }

    /// Bump a counter by id, windowed at `sim_us`.
    #[inline]
    pub(crate) fn counter_add_at(&mut self, id: u32, sim_us: u64, delta: u64) {
        self.counter_vals[id as usize] += delta;
        let w = self.window_of(sim_us);
        *self.counter_wins[id as usize].slot(w) += delta;
    }

    /// Observe into a histogram by id.
    #[inline]
    pub(crate) fn hist_observe(&mut self, id: u32, value: u64) {
        self.hist_vals[id as usize].observe(value);
    }

    /// Observe into a histogram by id, windowed at `sim_us`.
    #[inline]
    pub(crate) fn hist_observe_at(&mut self, id: u32, sim_us: u64, value: u64) {
        self.hist_vals[id as usize].observe(value);
        let w = self.window_of(sim_us);
        self.hist_wins[id as usize].slot(w).observe(value);
    }

    /// Write a gauge by id (last value wins).
    #[inline]
    pub(crate) fn gauge_write(&mut self, id: u32, value: f64) {
        self.gauge_vals[id as usize] = value;
    }

    /// Write a gauge by id, also into `sim_us`'s window.
    #[inline]
    pub(crate) fn gauge_write_at(&mut self, id: u32, sim_us: u64, value: f64) {
        self.gauge_vals[id as usize] = value;
        let w = self.window_of(sim_us);
        *self.gauge_wins[id as usize].slot(w) = value;
    }

    /// Add to a cumulative counter by canonical key.
    #[cfg(test)]
    pub fn add(&mut self, key: &str, delta: u64) {
        let id = self.counter_id(key);
        self.counter_add(id, delta);
    }

    /// Add to a cumulative counter *and* its sim-window bucket.
    #[cfg(test)]
    pub fn add_at(&mut self, key: &str, sim_us: u64, delta: u64) {
        let id = self.counter_id(key);
        self.counter_add_at(id, sim_us, delta);
    }

    /// Observe into a cumulative histogram *and* its sim-window bucket.
    #[cfg(test)]
    pub fn observe_at(&mut self, key: &str, sim_us: u64, value: u64) {
        let id = self.hist_id(key);
        self.hist_observe_at(id, sim_us, value);
    }

    /// Set a last-wins gauge.
    #[cfg(test)]
    pub fn gauge_set(&mut self, key: &str, value: f64) {
        let id = self.gauge_id(key);
        self.gauge_write(id, value);
    }

    /// Set a gauge and its sim-window bucket (last write per window wins).
    #[cfg(test)]
    pub fn gauge_at(&mut self, key: &str, sim_us: u64, value: f64) {
        let id = self.gauge_id(key);
        self.gauge_write_at(id, sim_us, value);
    }

    /// Series ids of one span shape, resolving (and paying the
    /// canonical-key formatting) on first sight only.
    fn resolve_span_series(
        &mut self,
        cat: Category,
        name: u32,
        domain: Domain,
        node: Option<u64>,
        query: Option<u64>,
        tenant: Option<u32>,
    ) -> SpanSeries {
        // The node only labels a series for sim-clock task spans; keep it
        // out of the key otherwise so e.g. per-node scan spans share one
        // cache entry.
        let busy_node = if cat == Category::Task && domain == Domain::Sim {
            node
        } else {
            None
        };
        let key = SpanKey {
            name,
            cat,
            domain,
            node: busy_node,
            query,
            tenant,
        };
        if let Some(&ids) = self.span_cache.get(&key) {
            return ids;
        }
        let name_s = self.names[name as usize].clone();
        let qid = query.map(|q| q.to_string());
        let ten = tenant.map(|t| self.names[t as usize].clone());
        let mut labels: Vec<(&str, &str)> = vec![
            ("cat", cat.as_str()),
            ("clock", domain.as_str()),
            ("name", name_s.as_str()),
        ];
        if let Some(q) = &qid {
            labels.push(("query", q.as_str()));
        }
        if let Some(t) = &ten {
            labels.push(("tenant", t.as_str()));
        }
        let spans_key = series("spans", &labels);
        let dur_key = series("span_us", &labels);
        let spans = self.counter_id(&spans_key);
        let dur = (domain == Domain::Sim).then(|| self.hist_id(&dur_key));
        let busy = busy_node.map(|n| {
            let nl = n.to_string();
            let busy_key = series("node_busy_us", &[("node", nl.as_str())]);
            self.counter_id(&busy_key)
        });
        let ids = SpanSeries { spans, dur, busy };
        if let Some(h) = dur {
            self.span_count_from_hist.insert(spans, h);
        }
        self.span_cache.insert(key, ids);
        ids
    }

    /// Meter a closed span's resolved series.
    #[inline]
    fn apply_span(&mut self, ids: SpanSeries, domain: Domain, start_us: u64, end_us: u64) {
        match domain {
            Domain::Sim => {
                let dur = end_us - start_us;
                match ids.dur {
                    // The hist sample *is* the span count; the counter
                    // plane is synthesised from it at snapshot time.
                    Some(d) => self.hist_observe_at(d, end_us, dur),
                    None => self.counter_add_at(ids.spans, end_us, 1),
                }
                if let Some(b) = ids.busy {
                    self.counter_add_at(b, end_us, dur);
                }
            }
            Domain::Wall => self.counter_add(ids.spans, 1),
        }
    }

    /// Meter a closed span from interned parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn meter_span_sym(
        &mut self,
        cat: Category,
        name: u32,
        domain: Domain,
        start_us: u64,
        end_us: u64,
        node: Option<u64>,
        query: Option<u64>,
        tenant: Option<u32>,
    ) {
        let ids = self.resolve_span_series(cat, name, domain, node, query, tenant);
        self.apply_span(ids, domain, start_us, end_us);
    }

    /// Meter a closed span. Sim spans contribute windowed counts and
    /// duration histograms; wall spans contribute counts only (their
    /// durations are host noise — see the module docs).
    pub fn meter_span(
        &mut self,
        cat: Category,
        name: &str,
        domain: Domain,
        start_us: u64,
        end_us: u64,
        ctx: &SpanCtx,
    ) {
        let name = self.intern(name);
        let tenant = ctx.tenant.as_deref().map(|t| self.intern(t));
        self.meter_span_sym(
            cat, name, domain, start_us, end_us, ctx.node, ctx.query, tenant,
        );
    }

    /// Meter a point event: a count, windowed when on the sim clock.
    pub(crate) fn meter_instant(
        &mut self,
        cat: Category,
        name: &str,
        domain: Domain,
        at_us: u64,
        query: Option<u64>,
        tenant: Option<&str>,
    ) {
        let name = self.intern(name);
        let tenant = tenant.map(|t| self.intern(t));
        let key = InstantKey {
            name,
            cat,
            query,
            tenant,
        };
        let id = match self.instant_cache.get(&key) {
            Some(&id) => id,
            None => {
                let name_s = self.names[name as usize].clone();
                let qid = query.map(|q| q.to_string());
                let ten = tenant.map(|t| self.names[t as usize].clone());
                let mut labels: Vec<(&str, &str)> =
                    vec![("cat", cat.as_str()), ("name", name_s.as_str())];
                if let Some(q) = &qid {
                    labels.push(("query", q.as_str()));
                }
                if let Some(t) = &ten {
                    labels.push(("tenant", t.as_str()));
                }
                let id = self.counter_id(&series("events", &labels));
                self.instant_cache.insert(key, id);
                id
            }
        };
        match domain {
            Domain::Sim => self.counter_add_at(id, at_us, 1),
            Domain::Wall => self.counter_add(id, 1),
        }
    }

    /// Freeze the registry into an immutable, serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut windowed = BTreeMap::new();
        for (i, key) in self.counter_keys.iter().enumerate() {
            let mut val = self.counter_vals[i];
            let mut wins = self.counter_wins[i].entries.clone();
            // Fold in the span counts the close path left implicit in
            // the duration histogram (see `span_count_from_hist`).
            if let Some(&hid) = self.span_count_from_hist.get(&(i as u32)) {
                let h = hid as usize;
                val += self.hist_vals[h].total();
                let hwins: Vec<(u64, u64)> = self.hist_wins[h]
                    .entries
                    .iter()
                    .map(|(w, hist)| (*w, hist.total()))
                    .filter(|&(_, t)| t > 0)
                    .collect();
                wins = merge_windows(wins, hwins);
            }
            counters.insert(key.clone(), val);
            if !wins.is_empty() {
                windowed.insert(key.clone(), wins);
            }
        }
        let mut hists = BTreeMap::new();
        let mut win_hists = BTreeMap::new();
        for (i, key) in self.hist_keys.iter().enumerate() {
            hists.insert(key.clone(), HistSummary::of(&self.hist_vals[i]));
            let wins = &self.hist_wins[i].entries;
            if !wins.is_empty() {
                win_hists.insert(
                    key.clone(),
                    wins.iter().map(|(w, h)| (*w, HistSummary::of(h))).collect(),
                );
            }
        }
        let mut gauges = BTreeMap::new();
        let mut win_gauges = BTreeMap::new();
        for (i, key) in self.gauge_keys.iter().enumerate() {
            gauges.insert(key.clone(), self.gauge_vals[i]);
            let wins = &self.gauge_wins[i].entries;
            if !wins.is_empty() {
                win_gauges.insert(key.clone(), wins.clone());
            }
        }
        MetricsSnapshot {
            window_us: self.window_us,
            counters,
            windowed,
            hists,
            win_hists,
            gauges,
            win_gauges,
        }
    }
}

/// Percentile summary plus sparse buckets of one histogram series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Sample sum (saturating).
    pub sum: u64,
    /// Median bucket lower bound.
    pub p50: u64,
    /// 95th-percentile bucket lower bound.
    pub p95: u64,
    /// 99th-percentile bucket lower bound.
    pub p99: u64,
    /// Non-empty `(lower_bound, count)` buckets.
    pub sparse: Vec<(u64, u64)>,
}

impl HistSummary {
    /// Summarise a histogram.
    pub fn of(h: &FibHistogram) -> Self {
        Self {
            count: h.total(),
            sum: h.sum(),
            p50: h.quantile_bound(0.50),
            p95: h.quantile_bound(0.95),
            p99: h.quantile_bound(0.99),
            sparse: h.sparse(),
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Quantile bound from sparse `(lower_bound, count)` buckets — used when
/// recomputing percentiles of a diffed histogram.
fn quantile_from_sparse(sparse: &[(u64, u64)], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
    let mut seen = 0;
    for &(bound, count) in sparse {
        seen += count;
        if seen >= target {
            return bound;
        }
    }
    sparse.last().map_or(0, |&(b, _)| b)
}

/// Immutable, canonical (sorted-key) view of the registry at one moment.
///
/// Two snapshots of deterministic runs with the same seed compare equal
/// with `==` — that property is CI-gated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Window width in simulated microseconds.
    pub window_us: u64,
    /// Cumulative counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-window counter values, `(window_start_us, value)` ascending.
    pub windowed: BTreeMap<String, Vec<(u64, u64)>>,
    /// Cumulative histogram summaries.
    pub hists: BTreeMap<String, HistSummary>,
    /// Per-window histogram summaries.
    pub win_hists: BTreeMap<String, Vec<(u64, HistSummary)>>,
    /// Last-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Per-window gauge values (sim clock only).
    pub win_gauges: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsSnapshot {
    /// What changed since `earlier`: counter increases, windows and
    /// histogram samples not present then. Gauges keep their latest
    /// value. `earlier` must be a snapshot of the *same* registry taken
    /// earlier; series that shrank are treated as new (registries never
    /// shrink in practice).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let delta = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (delta > 0).then(|| (k.clone(), delta))
            })
            .collect();
        let windowed = self
            .windowed
            .iter()
            .filter_map(|(k, ws)| {
                let old: BTreeMap<u64, u64> = earlier
                    .windowed
                    .get(k)
                    .map(|v| v.iter().copied().collect())
                    .unwrap_or_default();
                let fresh: Vec<(u64, u64)> = ws
                    .iter()
                    .filter_map(|&(w, v)| {
                        let delta = v.saturating_sub(old.get(&w).copied().unwrap_or(0));
                        (delta > 0).then_some((w, delta))
                    })
                    .collect();
                (!fresh.is_empty()).then(|| (k.clone(), fresh))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, h)| {
                let old = earlier.hists.get(k);
                let old_count = old.map_or(0, |o| o.count);
                if h.count <= old_count {
                    return None;
                }
                let old_sparse: BTreeMap<u64, u64> = old
                    .map(|o| o.sparse.iter().copied().collect())
                    .unwrap_or_default();
                let sparse: Vec<(u64, u64)> = h
                    .sparse
                    .iter()
                    .filter_map(|&(b, c)| {
                        let delta = c.saturating_sub(old_sparse.get(&b).copied().unwrap_or(0));
                        (delta > 0).then_some((b, delta))
                    })
                    .collect();
                let count = h.count - old_count;
                Some((
                    k.clone(),
                    HistSummary {
                        count,
                        sum: h.sum.saturating_sub(old.map_or(0, |o| o.sum)),
                        p50: quantile_from_sparse(&sparse, count, 0.50),
                        p95: quantile_from_sparse(&sparse, count, 0.95),
                        p99: quantile_from_sparse(&sparse, count, 0.99),
                        sparse,
                    },
                ))
            })
            .collect();
        MetricsSnapshot {
            window_us: self.window_us,
            counters,
            windowed,
            hists,
            win_hists: self
                .win_hists
                .iter()
                .filter_map(|(k, ws)| {
                    let old: BTreeMap<u64, u64> = earlier
                        .win_hists
                        .get(k)
                        .map(|v| v.iter().map(|(w, h)| (*w, h.count)).collect())
                        .unwrap_or_default();
                    let fresh: Vec<(u64, HistSummary)> = ws
                        .iter()
                        .filter(|(w, h)| old.get(w).copied().unwrap_or(0) < h.count)
                        .cloned()
                        .collect();
                    (!fresh.is_empty()).then(|| (k.clone(), fresh))
                })
                .collect(),
            gauges: self.gauges.clone(),
            win_gauges: self.win_gauges.clone(),
        }
    }

    /// Per-window rate (events per simulated second) of a windowed
    /// counter series.
    pub fn rate(&self, key: &str) -> Vec<(u64, f64)> {
        let secs = self.window_us as f64 / 1e6;
        self.windowed
            .get(key)
            .map(|ws| ws.iter().map(|&(w, v)| (w, v as f64 / secs)).collect())
            .unwrap_or_default()
    }

    /// All series keys whose base name matches `name`.
    pub fn series_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a String> {
        self.counters
            .keys()
            .filter(move |k| split_series(k).0 == name)
    }
}

/// One structured alert from the EWMA anomaly flagger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The windowed series that spiked.
    pub series: String,
    /// Window start (simulated µs).
    pub window_us: u64,
    /// Observed value in that window.
    pub value: f64,
    /// EWMA of the preceding windows.
    pub ewma: f64,
    /// `value / ewma` — how far above trend.
    pub ratio: f64,
}

/// EWMA smoothing factor for the anomaly flagger. Matches the failure
/// detector's heartbeat EWMA order of magnitude: recent windows dominate
/// but one spike does not own the estimate.
pub const ANOMALY_EWMA_ALPHA: f64 = 0.3;

/// Alert threshold: a window is anomalous when it exceeds the EWMA of the
/// preceding windows by this factor. Mirrors the Gamma straggler model's
/// cut (busy > 2·E(Z) ⇒ straggler, see [`crate::NodeClass`]).
pub const ANOMALY_THRESHOLD: f64 = 2.0;

/// Scan every windowed counter series for windows that spike above the
/// running EWMA of the windows before them. Windows with no samples count
/// as zero, so a burst after quiet is flagged. The first two windows of a
/// series never alert (the EWMA is not established yet).
pub fn detect_anomalies(snap: &MetricsSnapshot) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for (key, windows) in &snap.windowed {
        if windows.len() < 3 {
            continue;
        }
        let dense: BTreeMap<u64, u64> = windows.iter().copied().collect();
        let first = windows.first().expect("non-empty").0;
        let last = windows.last().expect("non-empty").0;
        let mut ewma = dense[&first] as f64;
        let mut seen = 1usize;
        let mut w = first + snap.window_us;
        while w <= last {
            let value = dense.get(&w).copied().unwrap_or(0) as f64;
            if seen >= 3 && ewma > 0.0 && value / ewma > ANOMALY_THRESHOLD {
                alerts.push(Alert {
                    series: key.clone(),
                    window_us: w,
                    value,
                    ewma,
                    ratio: value / ewma,
                });
            }
            ewma = ANOMALY_EWMA_ALPHA * value + (1.0 - ANOMALY_EWMA_ALPHA) * ewma;
            seen += 1;
            w += snap.window_us;
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_key_is_canonical() {
        assert_eq!(series("spans", &[]), "spans");
        assert_eq!(
            series("spans", &[("name", "map"), ("cat", "task")]),
            "spans{cat=\"task\",name=\"map\"}"
        );
        assert_eq!(
            series("x", &[("note", "say \"hi\"")]),
            "x{note=\"say \\\"hi\\\"\"}"
        );
        let (name, labels) = split_series("spans{cat=\"task\"}");
        assert_eq!(name, "spans");
        assert_eq!(labels, "{cat=\"task\"}");
    }

    #[test]
    fn windowed_counters_bucket_by_sim_window() {
        let mut m = MetricsData::new(1_000);
        m.add_at("tasks", 100, 1);
        m.add_at("tasks", 900, 2);
        m.add_at("tasks", 1_100, 4);
        let snap = m.snapshot();
        assert_eq!(snap.counters["tasks"], 7);
        assert_eq!(snap.windowed["tasks"], vec![(0, 3), (1_000, 4)]);
        assert_eq!(snap.rate("tasks"), vec![(0, 3_000.0), (1_000, 4_000.0)]);
    }

    #[test]
    fn out_of_order_windows_stay_sorted() {
        let mut m = MetricsData::new(1_000);
        m.add_at("tasks", 5_500, 1);
        m.add_at("tasks", 1_500, 2);
        m.add_at("tasks", 3_500, 4);
        m.add_at("tasks", 1_700, 8);
        let snap = m.snapshot();
        assert_eq!(
            snap.windowed["tasks"],
            vec![(1_000, 10), (3_000, 4), (5_000, 1)]
        );
    }

    #[test]
    fn hist_summary_percentiles() {
        let mut m = MetricsData::new(1_000);
        for v in [10u64, 20, 30, 40, 5_000] {
            m.observe_at("lat", 500, v);
        }
        let snap = m.snapshot();
        let h = &snap.hists["lat"];
        assert_eq!(h.count, 5);
        assert!(h.p50 <= 30);
        assert!(h.p99 >= 1_000, "p99 {} should reach the outlier", h.p99);
        assert_eq!(snap.win_hists["lat"][0].0, 0);
        assert_eq!(snap.win_hists["lat"][0].1.count, 5);
    }

    #[test]
    fn diff_isolates_new_activity() {
        let mut m = MetricsData::new(1_000);
        m.add_at("tasks", 100, 5);
        m.observe_at("lat", 100, 10);
        let before = m.snapshot();
        m.add_at("tasks", 1_500, 3);
        m.observe_at("lat", 1_500, 640);
        let after = m.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters["tasks"], 3);
        assert_eq!(d.windowed["tasks"], vec![(1_000, 3)]);
        assert_eq!(d.hists["lat"].count, 1);
        assert!(
            d.hists["lat"].p50 >= 100,
            "diffed p50 sees only the new sample"
        );
        // No change ⇒ empty diff.
        let d2 = after.diff(&after);
        assert!(d2.counters.is_empty());
        assert!(d2.windowed.is_empty());
        assert!(d2.hists.is_empty());
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let mut m = MetricsData::new(500);
        m.add_at("a", 10, 1);
        m.observe_at("h", 10, 99);
        m.gauge_at("g", 10, 1.5);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn anomaly_flagger_spots_a_spike() {
        let mut m = MetricsData::new(1_000);
        // Steady 10/window, then a 100 burst.
        for w in 0..6u64 {
            m.add_at("retries", w * 1_000 + 1, 10);
        }
        m.add_at("retries", 6_000 + 1, 100);
        let alerts = detect_anomalies(&m.snapshot());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].window_us, 6_000);
        assert!(alerts[0].ratio > ANOMALY_THRESHOLD);
        // A steady series never alerts.
        let mut s = MetricsData::new(1_000);
        for w in 0..10u64 {
            s.add_at("ok", w * 1_000 + 1, 10);
        }
        assert!(detect_anomalies(&s.snapshot()).is_empty());
    }

    #[test]
    fn wall_spans_meter_counts_only() {
        let mut m = MetricsData::new(1_000);
        m.meter_span(
            Category::Scan,
            "block",
            Domain::Wall,
            17,
            4_242,
            &SpanCtx::default(),
        );
        let snap = m.snapshot();
        let key = "spans{cat=\"scan\",clock=\"wall\",name=\"block\"}";
        assert_eq!(snap.counters[key], 1);
        assert!(snap.windowed.is_empty(), "wall spans must not window");
        assert!(
            snap.hists.is_empty(),
            "wall spans must not record durations"
        );
    }

    #[test]
    fn sim_task_spans_meter_node_busy() {
        let mut m = MetricsData::new(1_000);
        m.meter_span(
            Category::Task,
            "select",
            Domain::Sim,
            100,
            400,
            &SpanCtx::default().node(3),
        );
        let snap = m.snapshot();
        assert_eq!(snap.counters["node_busy_us{node=\"3\"}"], 300);
        assert_eq!(snap.windowed["node_busy_us{node=\"3\"}"], vec![(0, 300)]);
        let key = "spans{cat=\"task\",clock=\"sim\",name=\"select\"}";
        assert_eq!(snap.counters[key], 1);
    }

    /// The resolution caches and the keyed entry points must agree on
    /// series identity: metering the same logical series through both
    /// paths lands on one aggregate.
    #[test]
    fn cached_and_keyed_paths_share_series() {
        let mut m = MetricsData::new(1_000);
        let id = m.scoped_counter_id("retries", None, None);
        m.counter_add(id, 2);
        m.add("retries", 3);
        let snap = m.snapshot();
        assert_eq!(snap.counters["retries"], 5);

        let sid = m.scoped_counter_id("retries", Some(4), Some("acme"));
        m.counter_add(sid, 1);
        let snap = m.snapshot();
        assert_eq!(snap.counters["retries{query=\"4\",tenant=\"acme\"}"], 1);
    }
}
