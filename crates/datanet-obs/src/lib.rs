//! Simulation-clock tracing and metrics plane.
//!
//! The engine's end-of-run aggregates (`FaultStats`, `MetaHealth`,
//! `makespan_secs`) say *that* a run was imbalanced; this crate records
//! *where the time went* so stragglers, idlers and recovery latency become
//! visible per task, per node, per microsecond.
//!
//! # Clock semantics
//!
//! Every event carries a [`Domain`]:
//!
//! * [`Domain::Sim`] — microseconds on the **simulated** clock
//!   (`datanet_cluster::SimTime::as_micros`). Task execution, detection
//!   windows and re-plans live here; they are exactly reproducible across
//!   runs with the same seed.
//! * [`Domain::Wall`] — microseconds of real time since the [`Recorder`]
//!   was created. Shard loads, scrubs and ElasticMap builds are real work
//!   the host performs, so they are timed on the wall clock.
//!
//! This crate deliberately depends on nothing but the vendored serde stack:
//! it represents time as raw `u64` microseconds so that `datanet-cluster`
//! (which owns `SimTime`) can itself depend on the recorder.
//!
//! # Usage
//!
//! ```
//! use datanet_obs::{Category, Domain, Recorder, SpanCtx};
//!
//! let rec = Recorder::new();
//! let span = rec.begin(
//!     Category::Task,
//!     "map",
//!     Domain::Sim,
//!     0,
//!     SpanCtx::default().node(3).block(17),
//! );
//! rec.end(span, 1_500);
//! rec.add("tasks_executed", 1);
//! let trace = rec.take();
//! assert_eq!(trace.unclosed_spans(), 0);
//! let chrome = trace.to_chrome_json();
//! assert!(chrome.contains("traceEvents"));
//! ```
//!
//! A disabled recorder ([`Recorder::off`]) turns every call into an early
//! return on a `None` — no allocation, no locking — so instrumented code
//! paths cost nothing when tracing is off.

mod context;
mod export;
mod flight;
mod hist;
mod metrics;
mod recorder;
mod summary;
mod sync;
mod trace;

pub use context::QueryCtx;
pub use export::{parse_openmetrics, to_jsonl, to_openmetrics, OmFamily, OmKind, OmSample};
pub use flight::{FlightDump, FlightEvent, FlightKind, FlightRing};
pub use hist::FibHistogram;
pub use metrics::{
    detect_anomalies, series, split_series, Alert, HistSummary, MetricsSnapshot,
    ANOMALY_EWMA_ALPHA, ANOMALY_THRESHOLD,
};
pub use recorder::{Category, Domain, Recorder, SpanCtx, SpanId};
pub use summary::{CrashChain, NodeClass, NodeUtil, ObsSummary};
pub use trace::{GaugeSample, InstantEvent, Span, TraceData};
