//! Bounded ring-buffer flight recorder.
//!
//! Always-on, capacity-bounded memory of the last N *significant* events:
//! plans, retries, suspicions, checkpoint commits, degradation-rung
//! changes. Unlike the trace buffer (opt-in, unbounded, everything), the
//! flight ring costs O(N) memory forever and is meant to be dumped when
//! something goes wrong — a panic, an oracle violation, or an explicit
//! `--flight OUT.json` — so the last moments before the failure are never
//! lost. Shrunk `datanet-check` repro files embed the dump of the
//! violating run for the same reason.

use crate::recorder::Domain;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// What kind of significant event a flight entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightKind {
    /// A scheduler produced (or re-produced) a task plan.
    Plan,
    /// A scheduler re-planned after a node loss.
    Replan,
    /// A retry of a failed operation (task re-execution, commit retry).
    Retry,
    /// The failure detector suspected a node.
    Suspicion,
    /// A node crash was injected or observed.
    Crash,
    /// A pipeline stage or ingest epoch committed durably.
    CheckpointCommit,
    /// A sub-dataset view was served from a degraded rung.
    RungChange,
    /// The anomaly flagger raised an alert.
    Alert,
    /// An invariant oracle was violated (datanet-check).
    OracleViolation,
    /// Anything else worth keeping.
    Other,
}

impl FlightKind {
    /// Lower-case name used in dumps and dashboards.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Plan => "plan",
            FlightKind::Replan => "replan",
            FlightKind::Retry => "retry",
            FlightKind::Suspicion => "suspicion",
            FlightKind::Crash => "crash",
            FlightKind::CheckpointCommit => "checkpoint_commit",
            FlightKind::RungChange => "rung_change",
            FlightKind::Alert => "alert",
            FlightKind::OracleViolation => "oracle_violation",
            FlightKind::Other => "other",
        }
    }
}

/// One entry in the flight ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused; gaps mean evicted events).
    pub seq: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Which clock `at_us` belongs to.
    pub domain: Domain,
    /// Timestamp, microseconds in `domain`.
    pub at_us: u64,
    /// Node the event concerns, if any.
    pub node: Option<u64>,
    /// Originating query id, if the recording handle was scoped.
    pub query: Option<u64>,
    /// Originating tenant, if the recording handle was scoped.
    pub tenant: Option<String>,
    /// Free-form detail ("stage 2 commit crc 0x…", "rung 2: 17 blocks").
    pub detail: String,
}

/// The ring itself: at most `capacity` newest events, in seq order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRing {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

impl FlightRing {
    /// An empty ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics on zero capacity — a ring that can hold nothing is always a
    /// configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight ring capacity must be positive");
        Self {
            capacity,
            next_seq: 0,
            events: VecDeque::with_capacity(capacity),
        }
    }

    /// Append an event, evicting the oldest when full. Returns the seq
    /// number assigned.
    pub fn push(&mut self, mut ev: FlightEvent) -> u64 {
        let seq = self.next_seq;
        ev.seq = seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        seq
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (held + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Snapshot the ring into a serialisable dump.
    pub fn dump(&self) -> FlightDump {
        FlightDump {
            capacity: self.capacity as u64,
            recorded: self.next_seq,
            dropped: self.next_seq - self.events.len() as u64,
            events: self.events.iter().cloned().collect(),
        }
    }
}

/// Serialisable snapshot of a [`FlightRing`] — what `--flight OUT.json`
/// writes and what a shrunk `Repro` embeds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Total events ever recorded.
    pub recorded: u64,
    /// Events evicted before the dump (recorded − kept).
    pub dropped: u64,
    /// The kept events, oldest first, seq strictly increasing.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// The dump as a JSON [`Value`] tree (for embedding in other
    /// documents, e.g. repro files).
    pub fn to_value(&self) -> Value {
        serde::Serialize::to_value(self)
    }

    /// Rebuild from an embedded [`Value`]; `Null` means "no dump".
    pub fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Null => None,
            other => serde::Deserialize::from_value(other).ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(detail: &str) -> FlightEvent {
        FlightEvent {
            seq: 0,
            kind: FlightKind::Retry,
            domain: Domain::Sim,
            at_us: 10,
            node: Some(1),
            query: Some(7),
            tenant: Some("acme".into()),
            detail: detail.to_string(),
        }
    }

    /// Satellite property: wraparound keeps exactly the newest N events,
    /// in order.
    #[test]
    fn wraparound_keeps_newest_n_in_order() {
        let mut ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(ev(&format!("e{i}")));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 10);
        let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let details: Vec<&str> = ring.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["e6", "e7", "e8", "e9"]);
        let dump = ring.dump();
        assert_eq!(dump.dropped, 6);
        assert_eq!(dump.events.len(), 4);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = FlightRing::new(8);
        for i in 0..3 {
            ring.push(ev(&format!("e{i}")));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dump().dropped, 0);
    }

    #[test]
    fn dump_roundtrips_through_serde_and_value() {
        let mut ring = FlightRing::new(2);
        ring.push(ev("a"));
        ring.push(ev("b"));
        ring.push(ev("c"));
        let dump = ring.dump();
        let json = serde_json::to_string(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
        let v = dump.to_value();
        assert_eq!(FlightDump::from_value(&v), Some(dump));
        assert_eq!(FlightDump::from_value(&Value::Null), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FlightRing::new(0);
    }
}
