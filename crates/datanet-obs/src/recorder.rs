//! The recording handle threaded through engine, schedulers, store and
//! scan paths.

use crate::trace::{GaugeSample, InstantEvent, Span, TraceData};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which clock an event's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// The simulated clock (`SimTime::as_micros`) — deterministic,
    /// seed-reproducible.
    Sim,
    /// Real microseconds since the recorder was created — host work like
    /// shard IO and ElasticMap builds.
    Wall,
}

impl Domain {
    /// Short name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Sim => "sim",
            Domain::Wall => "wall",
        }
    }
}

/// Event taxonomy — one variant per instrumented subsystem activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// Map/reduce task execution on a node (sim clock).
    Task,
    /// Block scan during ElasticMap construction (wall clock).
    Scan,
    /// Metadata shard load, including replica failover (wall clock).
    ShardLoad,
    /// Scheduler re-plan after a node loss (sim clock).
    Replan,
    /// Metadata scrub pass (wall clock).
    Scrub,
    /// Failure-detection window: crash → suspicion (sim clock).
    Detection,
    /// ElasticMap array build over all blocks (wall clock).
    Build,
    /// Engine phase envelope: selection, map, shuffle, reduce (sim clock).
    Phase,
    /// Streaming-ingest block append: summary + delta-map build (sim clock).
    Ingest,
    /// Ingest compaction: folding pending deltas into the base array
    /// (wall clock).
    Compaction,
    /// Pipeline stage checkpoint commit: payload + manifests replicated
    /// under the crash-safe write order (wall clock).
    Checkpoint,
}

impl Category {
    /// Lower-case name used as the Chrome-trace `cat` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Task => "task",
            Category::Scan => "scan",
            Category::ShardLoad => "shard_load",
            Category::Replan => "replan",
            Category::Scrub => "scrub",
            Category::Detection => "detection",
            Category::Build => "build",
            Category::Phase => "phase",
            Category::Ingest => "ingest",
            Category::Compaction => "compaction",
            Category::Checkpoint => "checkpoint",
        }
    }
}

/// Handle to an open span, returned by [`Recorder::begin`].
///
/// The id is an index into the recorder's span list; a disabled recorder
/// hands out a sentinel that every later call ignores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// Sentinel handed out by a disabled recorder.
    pub(crate) const DISABLED: SpanId = SpanId(u64::MAX);
}

/// Optional attributes attached to a span or instant: which node, block
/// and sub-dataset the event concerns, plus a free-form note.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanCtx {
    /// Node the event ran on.
    pub node: Option<u64>,
    /// Block the event concerns.
    pub block: Option<u64>,
    /// Sub-dataset the event concerns.
    pub sub: Option<u64>,
    /// Free-form annotation ("lost", "retry 2", replica index, …).
    pub note: Option<String>,
}

impl SpanCtx {
    /// Set the node attribute.
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node as u64);
        self
    }

    /// Set the block attribute.
    pub fn block(mut self, block: u64) -> Self {
        self.block = Some(block);
        self
    }

    /// Set the sub-dataset attribute. (A builder setter for the `sub`
    /// field, not arithmetic subtraction.)
    #[allow(clippy::should_implement_trait)]
    pub fn sub(mut self, sub: u64) -> Self {
        self.sub = Some(sub);
        self
    }

    /// Set the note attribute.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }
}

/// Cloneable, thread-safe recording handle.
///
/// [`Recorder::new`] records into a shared buffer behind a mutex;
/// [`Recorder::off`] is a no-op handle whose every method early-returns —
/// instrumented code pays nothing when tracing is disabled. Clones share
/// the same buffer, so the engine, schedulers and rayon scan workers can
/// all hold one.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Option<Arc<Mutex<TraceData>>>,
    epoch: Instant,
}

impl Recorder {
    /// An enabled recorder with an empty buffer. The wall-clock epoch is
    /// the moment of this call.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(TraceData::default()))),
            epoch: Instant::now(),
        }
    }

    /// A disabled recorder: every method is a no-op.
    pub fn off() -> Self {
        Self {
            inner: None,
            epoch: Instant::now(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall-clock microseconds since this recorder was created — the
    /// timestamp to pass for [`Domain::Wall`] events.
    pub fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Open a span starting at `start_us` (microseconds in `domain`).
    pub fn begin(
        &self,
        cat: Category,
        name: &str,
        domain: Domain,
        start_us: u64,
        ctx: SpanCtx,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::DISABLED;
        };
        let mut data = inner.lock().unwrap();
        let id = data.spans.len() as u64;
        data.spans.push(Span {
            cat,
            name: name.to_string(),
            domain,
            start_us,
            end_us: None,
            ctx,
        });
        SpanId(id)
    }

    /// Close a span at `end_us` (same clock domain as its start).
    ///
    /// # Panics
    /// Panics if `end_us < start_us` — a span ending before it starts is
    /// always an engine logic error, and catching it here is what makes
    /// the "spans never run backwards" property structural.
    pub fn end(&self, span: SpanId, end_us: u64) {
        self.end_annotated(span, end_us, None);
    }

    /// Close a span and replace its note ("lost", "abandoned", …).
    pub fn end_with_note(&self, span: SpanId, end_us: u64, note: &str) {
        self.end_annotated(span, end_us, Some(note));
    }

    fn end_annotated(&self, span: SpanId, end_us: u64, note: Option<&str>) {
        let Some(inner) = &self.inner else {
            return;
        };
        if span == SpanId::DISABLED {
            return;
        }
        let mut data = inner.lock().unwrap();
        let s = &mut data.spans[span.0 as usize];
        assert!(
            end_us >= s.start_us,
            "span \"{}\" ends at {}us before it starts at {}us",
            s.name,
            end_us,
            s.start_us
        );
        assert!(s.end_us.is_none(), "span \"{}\" closed twice", s.name);
        s.end_us = Some(end_us);
        if let Some(n) = note {
            s.ctx.note = Some(n.to_string());
        }
    }

    /// Record a point event at `at_us`.
    pub fn instant(&self, cat: Category, name: &str, domain: Domain, at_us: u64, ctx: SpanCtx) {
        let Some(inner) = &self.inner else {
            return;
        };
        inner.lock().unwrap().instants.push(InstantEvent {
            cat,
            name: name.to_string(),
            domain,
            at_us,
            ctx,
        });
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&self, counter: &str, delta: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut data = inner.lock().unwrap();
        *data.counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    /// Record a gauge sample (last value wins in the summary; every sample
    /// is kept for the Chrome counter track).
    pub fn gauge(&self, name: &str, domain: Domain, at_us: u64, value: f64) {
        let Some(inner) = &self.inner else {
            return;
        };
        inner.lock().unwrap().gauges.push(GaugeSample {
            name: name.to_string(),
            domain,
            at_us,
            value,
        });
    }

    /// Record a sample into the named Fibonacci histogram (µs base).
    pub fn observe(&self, hist: &str, value: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        inner
            .lock()
            .unwrap()
            .hists
            .entry(hist.to_string())
            .or_default()
            .observe(value);
    }

    /// Drain the recorded events, leaving the buffer empty. A disabled
    /// recorder yields an empty [`TraceData`].
    pub fn take(&self) -> TraceData {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.lock().unwrap()),
            None => TraceData::default(),
        }
    }

    /// Clone the recorded events without draining.
    pub fn snapshot(&self) -> TraceData {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().clone(),
            None => TraceData::default(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::off();
        assert!(!rec.is_enabled());
        let span = rec.begin(Category::Task, "t", Domain::Sim, 10, SpanCtx::default());
        assert_eq!(span, SpanId::DISABLED);
        rec.end(span, 5); // end < start would panic if recorded
        rec.add("c", 1);
        rec.gauge("g", Domain::Sim, 0, 1.0);
        rec.observe("h", 42);
        rec.instant(Category::Replan, "r", Domain::Sim, 0, SpanCtx::default());
        let data = rec.take();
        assert_eq!(data.spans.len(), 0);
        assert_eq!(data.counters.len(), 0);
    }

    #[test]
    fn spans_counters_gauges_roundtrip() {
        let rec = Recorder::new();
        let s = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            100,
            SpanCtx::default().node(2).block(7),
        );
        rec.end(s, 400);
        rec.add("tasks", 1);
        rec.add("tasks", 2);
        rec.gauge("fpr", Domain::Wall, 5, 0.01);
        rec.observe("lat", 300);
        let data = rec.take();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].end_us, Some(400));
        assert_eq!(data.spans[0].ctx.node, Some(2));
        assert_eq!(data.counters["tasks"], 3);
        assert_eq!(data.gauges.len(), 1);
        assert_eq!(data.hists["lat"].total(), 1);
        // take() drained.
        assert_eq!(rec.take().spans.len(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.add("x", 1);
        rec.add("x", 1);
        assert_eq!(rec.snapshot().counters["x"], 2);
    }

    /// Property (satellite): spans can never end before they start on the
    /// recording clock.
    #[test]
    #[should_panic(expected = "before it starts")]
    fn span_cannot_end_before_start() {
        let rec = Recorder::new();
        let s = rec.begin(Category::Task, "t", Domain::Sim, 100, SpanCtx::default());
        rec.end(s, 99);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn span_cannot_close_twice() {
        let rec = Recorder::new();
        let s = rec.begin(Category::Task, "t", Domain::Sim, 0, SpanCtx::default());
        rec.end(s, 1);
        rec.end(s, 2);
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }

    #[test]
    fn wall_clock_is_monotone() {
        let rec = Recorder::new();
        let a = rec.wall_us();
        let b = rec.wall_us();
        assert!(b >= a);
    }
}
