//! The recording handle threaded through engine, schedulers, store and
//! scan paths.
//!
//! One [`Recorder`] value carries up to three independent planes:
//!
//! * **Tracing** ([`Recorder::new`]) — the unbounded per-run event log
//!   behind `--trace`, exactly as in PR 3.
//! * **Metrics** ([`Recorder::with_metrics`]) — the always-on windowed
//!   registry. Span ends, instants, counters and gauges are metered into
//!   aggregates automatically; works with tracing on *or* off.
//! * **Flight** ([`Recorder::with_flight`]) — the bounded ring of recent
//!   significant events, dumped on failure.
//!
//! [`Recorder::scoped`] attaches a [`QueryCtx`] so every event recorded
//! through the scoped handle carries the originating query id and tenant.
//! All planes no-op when absent: [`Recorder::off`] still costs nothing.

use crate::context::QueryCtx;
use crate::flight::{FlightDump, FlightEvent, FlightKind, FlightRing};
use crate::metrics::{MetricsData, MetricsSnapshot};
use crate::sync::SpinLock;
use crate::trace::{GaugeSample, InstantEvent, Span, TraceData};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which clock an event's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// The simulated clock (`SimTime::as_micros`) — deterministic,
    /// seed-reproducible.
    Sim,
    /// Real microseconds since the recorder was created — host work like
    /// shard IO and ElasticMap builds.
    Wall,
}

impl Domain {
    /// Short name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Domain::Sim => "sim",
            Domain::Wall => "wall",
        }
    }
}

/// Event taxonomy — one variant per instrumented subsystem activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Map/reduce task execution on a node (sim clock).
    Task,
    /// Block scan during ElasticMap construction (wall clock).
    Scan,
    /// Metadata shard load, including replica failover (wall clock).
    ShardLoad,
    /// Scheduler re-plan after a node loss (sim clock).
    Replan,
    /// Metadata scrub pass (wall clock).
    Scrub,
    /// Failure-detection window: crash → suspicion (sim clock).
    Detection,
    /// ElasticMap array build over all blocks (wall clock).
    Build,
    /// Engine phase envelope: selection, map, shuffle, reduce (sim clock).
    Phase,
    /// Streaming-ingest block append: summary + delta-map build (sim clock).
    Ingest,
    /// Ingest compaction: folding pending deltas into the base array
    /// (wall clock).
    Compaction,
    /// Pipeline stage checkpoint commit: payload + manifests replicated
    /// under the crash-safe write order (wall clock).
    Checkpoint,
    /// Serving plane: query admission, planning and execution in the
    /// multi-tenant frontend (sim clock).
    Serve,
}

impl Category {
    /// Lower-case name used as the Chrome-trace `cat` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Task => "task",
            Category::Scan => "scan",
            Category::ShardLoad => "shard_load",
            Category::Replan => "replan",
            Category::Scrub => "scrub",
            Category::Detection => "detection",
            Category::Build => "build",
            Category::Phase => "phase",
            Category::Ingest => "ingest",
            Category::Compaction => "compaction",
            Category::Checkpoint => "checkpoint",
            Category::Serve => "serve",
        }
    }
}

/// Handle to an open span, returned by [`Recorder::begin`].
///
/// The id is an index into the recorder's span list (or, with the high
/// bit set, into the metrics registry's open-span table when tracing is
/// off but metering is on); a disabled recorder hands out a sentinel that
/// every later call ignores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// Sentinel handed out by a disabled recorder.
    pub(crate) const DISABLED: SpanId = SpanId(u64::MAX);
    /// High bit marking a metrics-only span id.
    pub(crate) const METRICS_BIT: u64 = 1 << 63;
}

/// Optional attributes attached to a span or instant: which node, block
/// and sub-dataset the event concerns, the originating query, plus a
/// free-form note.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanCtx {
    /// Node the event ran on.
    pub node: Option<u64>,
    /// Block the event concerns.
    pub block: Option<u64>,
    /// Sub-dataset the event concerns.
    pub sub: Option<u64>,
    /// Originating query id (stamped automatically by a scoped recorder).
    pub query: Option<u64>,
    /// Originating tenant (stamped automatically by a scoped recorder).
    pub tenant: Option<String>,
    /// Free-form annotation ("lost", "retry 2", replica index, …).
    pub note: Option<String>,
}

impl SpanCtx {
    /// Set the node attribute.
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node as u64);
        self
    }

    /// Set the block attribute.
    pub fn block(mut self, block: u64) -> Self {
        self.block = Some(block);
        self
    }

    /// Set the sub-dataset attribute. (A builder setter for the `sub`
    /// field, not arithmetic subtraction.)
    #[allow(clippy::should_implement_trait)]
    pub fn sub(mut self, sub: u64) -> Self {
        self.sub = Some(sub);
        self
    }

    /// Set the originating query id explicitly (a scoped recorder does
    /// this automatically).
    pub fn query(mut self, query: u64) -> Self {
        self.query = Some(query);
        self
    }

    /// Set the originating tenant explicitly.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Set the note attribute.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }
}

/// Cloneable, thread-safe recording handle.
///
/// [`Recorder::new`] records into a shared buffer behind a mutex;
/// [`Recorder::off`] is a no-op handle whose every method early-returns —
/// instrumented code pays nothing when every plane is disabled. Clones
/// share the same buffers, so the engine, schedulers and rayon scan
/// workers can all hold one.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Option<Arc<Mutex<TraceData>>>,
    metrics: Option<Arc<SpinLock<MetricsData>>>,
    flight: Option<Arc<Mutex<FlightRing>>>,
    query: Option<Arc<QueryCtx>>,
    epoch: Instant,
}

impl Recorder {
    /// An enabled recorder with an empty trace buffer. The wall-clock
    /// epoch is the moment of this call.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(TraceData::default()))),
            metrics: None,
            flight: None,
            query: None,
            epoch: Instant::now(),
        }
    }

    /// A disabled recorder: every method is a no-op.
    pub fn off() -> Self {
        Self {
            inner: None,
            metrics: None,
            flight: None,
            query: None,
            epoch: Instant::now(),
        }
    }

    /// Attach a fresh windowed metrics registry (`window_us` simulated
    /// microseconds per window). Works on an enabled *or* disabled
    /// recorder — metrics without traces is the cheap always-on mode.
    pub fn with_metrics(mut self, window_us: u64) -> Self {
        self.metrics = Some(Arc::new(SpinLock::new(MetricsData::new(window_us))));
        self
    }

    /// Attach a fresh flight ring holding the newest `capacity` events.
    pub fn with_flight(mut self, capacity: usize) -> Self {
        self.flight = Some(Arc::new(Mutex::new(FlightRing::new(capacity))));
        self
    }

    /// A handle sharing every buffer of `self` but stamping `query`'s id
    /// and tenant on each event it records. Scopes nest: the innermost
    /// scope wins for events recorded through its handle.
    pub fn scoped(&self, query: QueryCtx) -> Self {
        let mut c = self.clone();
        c.query = Some(Arc::new(query));
        c
    }

    /// A handle sharing the metrics, flight and query planes of `self`
    /// but recording traces (if tracing is on) into a **fresh** buffer —
    /// how a pipeline stage gets a stage-local trace while its aggregates
    /// keep flowing into the run-wide registry.
    pub fn fork_trace(&self) -> Self {
        let mut c = self.clone();
        c.inner = self
            .inner
            .as_ref()
            .map(|_| Arc::new(Mutex::new(TraceData::default())));
        c
    }

    /// Whether trace events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a metrics registry is attached.
    pub fn is_metering(&self) -> bool {
        self.metrics.is_some()
    }

    /// Whether a flight ring is attached.
    pub fn has_flight(&self) -> bool {
        self.flight.is_some()
    }

    /// The attached query scope, if any.
    pub fn query_ctx(&self) -> Option<&QueryCtx> {
        self.query.as_deref()
    }

    /// Wall-clock microseconds since this recorder was created — the
    /// timestamp to pass for [`Domain::Wall`] events.
    pub fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Stamp the scope's query id and tenant onto a ctx that doesn't
    /// already carry one.
    fn stamp(&self, ctx: &mut SpanCtx) {
        if let Some(q) = &self.query {
            if ctx.query.is_none() {
                ctx.query = Some(q.query_id);
            }
            if ctx.tenant.is_none() {
                ctx.tenant.clone_from(&q.tenant);
            }
        }
    }

    /// The scope's query id and tenant as cheap borrows — the metering
    /// paths use these instead of [`Recorder::stamp`] so a scoped handle
    /// never clones the tenant string per event.
    fn scope_parts(&self) -> (Option<u64>, Option<&str>) {
        match &self.query {
            None => (None, None),
            Some(q) => (Some(q.query_id), q.tenant.as_deref()),
        }
    }

    /// Open a span starting at `start_us` (microseconds in `domain`).
    pub fn begin(
        &self,
        cat: Category,
        name: &str,
        domain: Domain,
        start_us: u64,
        mut ctx: SpanCtx,
    ) -> SpanId {
        if let Some(inner) = &self.inner {
            self.stamp(&mut ctx);
            let mut data = inner.lock().unwrap();
            let id = data.spans.len() as u64;
            data.spans.push(Span {
                cat,
                name: name.to_string(),
                domain,
                start_us,
                end_us: None,
                ctx,
            });
            return SpanId(id);
        }
        if let Some(metrics) = &self.metrics {
            // Metrics-only mode: every label is known here (explicit ctx
            // attributes win over the opening handle's scope), so the
            // span's series resolve now and closing is a slab read.
            let (sq, st) = self.scope_parts();
            let query = ctx.query.or(sq);
            let tenant = ctx.tenant.as_deref().or(st);
            let mut m = metrics.lock();
            let id = m.open_span(cat, name, domain, start_us, ctx.node, query, tenant);
            if let Some(n) = ctx.note {
                m.set_open_note(id, n);
            }
            return SpanId(id | SpanId::METRICS_BIT);
        }
        SpanId::DISABLED
    }

    /// Close a span at `end_us` (same clock domain as its start).
    ///
    /// # Panics
    /// Panics if `end_us < start_us` — a span ending before it starts is
    /// always an engine logic error, and catching it here is what makes
    /// the "spans never run backwards" property structural.
    pub fn end(&self, span: SpanId, end_us: u64) {
        self.end_annotated(span, end_us, None);
    }

    /// Close a span and replace its note ("lost", "abandoned", …).
    pub fn end_with_note(&self, span: SpanId, end_us: u64, note: &str) {
        self.end_annotated(span, end_us, Some(note));
    }

    fn end_annotated(&self, span: SpanId, end_us: u64, note: Option<&str>) {
        if span == SpanId::DISABLED {
            return;
        }
        if span.0 & SpanId::METRICS_BIT != 0 {
            let Some(metrics) = &self.metrics else { return };
            // Checkpoint commits are flight-worthy; the registry hands
            // the resolved strings back (rare, off the warm path).
            let fl = metrics.lock().close_span(
                span.0 & !SpanId::METRICS_BIT,
                end_us,
                note,
                self.flight.is_some(),
            );
            if let Some(f) = fl {
                let ctx = SpanCtx {
                    node: f.node,
                    query: f.query,
                    tenant: f.tenant,
                    ..SpanCtx::default()
                };
                self.flight_stamped(
                    FlightKind::CheckpointCommit,
                    f.domain,
                    end_us,
                    &ctx,
                    f.detail,
                );
            }
            return;
        }
        let Some(inner) = &self.inner else {
            return;
        };
        let (cat, name, domain, start_us, ctx) = {
            let mut data = inner.lock().unwrap();
            let s = &mut data.spans[span.0 as usize];
            assert!(
                end_us >= s.start_us,
                "span \"{}\" ends at {}us before it starts at {}us",
                s.name,
                end_us,
                s.start_us
            );
            assert!(s.end_us.is_none(), "span \"{}\" closed twice", s.name);
            s.end_us = Some(end_us);
            if let Some(n) = note {
                s.ctx.note = Some(n.to_string());
            }
            (s.cat, s.name.clone(), s.domain, s.start_us, s.ctx.clone())
        };
        if let Some(metrics) = &self.metrics {
            metrics
                .lock()
                .meter_span(cat, &name, domain, start_us, end_us, &ctx);
        }
        self.flight_from_span(cat, &name, domain, end_us, &ctx);
    }

    /// Auto-forward significant span closes into the flight ring:
    /// checkpoint commits are exactly the events the ring exists for.
    fn flight_from_span(
        &self,
        cat: Category,
        name: &str,
        domain: Domain,
        end_us: u64,
        ctx: &SpanCtx,
    ) {
        if cat != Category::Checkpoint {
            return;
        }
        let detail = match &ctx.note {
            Some(n) => format!("{name}: {n}"),
            None => name.to_string(),
        };
        self.flight_stamped(FlightKind::CheckpointCommit, domain, end_us, ctx, detail);
    }

    /// Record a point event at `at_us`.
    pub fn instant(&self, cat: Category, name: &str, domain: Domain, at_us: u64, mut ctx: SpanCtx) {
        // Failure-lifecycle instants are flight-worthy by definition.
        let kind = match (cat, name) {
            (Category::Detection, "crash") => Some(FlightKind::Crash),
            (Category::Detection, _) => Some(FlightKind::Suspicion),
            (Category::Replan, _) => Some(FlightKind::Replan),
            _ => None,
        };
        // Only the trace and flight planes need the scope materialised in
        // the ctx; the metrics plane takes it by reference below.
        if self.inner.is_some() || (kind.is_some() && self.flight.is_some()) {
            self.stamp(&mut ctx);
        }
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().instants.push(InstantEvent {
                cat,
                name: name.to_string(),
                domain,
                at_us,
                ctx: ctx.clone(),
            });
        }
        if let Some(metrics) = &self.metrics {
            let (sq, st) = self.scope_parts();
            let query = ctx.query.or(sq);
            let tenant = ctx.tenant.as_deref().or(st);
            metrics
                .lock()
                .meter_instant(cat, name, domain, at_us, query, tenant);
        }
        if let Some(kind) = kind {
            self.flight_stamped(kind, domain, at_us, &ctx, name.to_string());
        }
    }

    /// Record a significant event straight into the flight ring (plans,
    /// retries, rung changes, oracle violations — anything the last-N
    /// memory should keep). No-op without an attached ring.
    pub fn flight(
        &self,
        kind: FlightKind,
        domain: Domain,
        at_us: u64,
        node: Option<u64>,
        detail: impl Into<String>,
    ) {
        if self.flight.is_none() {
            return;
        }
        let mut ctx = SpanCtx {
            node,
            ..SpanCtx::default()
        };
        self.stamp(&mut ctx);
        self.flight_stamped(kind, domain, at_us, &ctx, detail.into());
    }

    fn flight_stamped(
        &self,
        kind: FlightKind,
        domain: Domain,
        at_us: u64,
        ctx: &SpanCtx,
        detail: String,
    ) {
        let Some(flight) = &self.flight else { return };
        flight.lock().unwrap().push(FlightEvent {
            seq: 0,
            kind,
            domain,
            at_us,
            node: ctx.node,
            query: ctx.query,
            tenant: ctx.tenant.clone(),
            detail,
        });
    }

    /// Add `delta` to the named monotonic counter (and, when metering, to
    /// the metrics series of the same name labelled with the query scope).
    pub fn add(&self, counter: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut data = inner.lock().unwrap();
            // Look up by `&str` first: allocating the key only on first
            // sight keeps the warm path allocation-free.
            match data.counters.get_mut(counter) {
                Some(v) => *v += delta,
                None => {
                    data.counters.insert(counter.to_string(), delta);
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            let (q, t) = self.scope_parts();
            let mut m = metrics.lock();
            let id = m.fast_counter_id(counter, q, t);
            m.counter_add(id, delta);
        }
    }

    /// [`Recorder::add`] with a simulated-clock timestamp: the metrics
    /// plane additionally buckets the delta into `sim_us`'s window.
    pub fn add_at(&self, counter: &str, sim_us: u64, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut data = inner.lock().unwrap();
            match data.counters.get_mut(counter) {
                Some(v) => *v += delta,
                None => {
                    data.counters.insert(counter.to_string(), delta);
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            let (q, t) = self.scope_parts();
            let mut m = metrics.lock();
            let id = m.fast_counter_id(counter, q, t);
            m.counter_add_at(id, sim_us, delta);
        }
    }

    /// Record a gauge sample (last value wins in the summary; every sample
    /// is kept for the Chrome counter track).
    pub fn gauge(&self, name: &str, domain: Domain, at_us: u64, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().unwrap().gauges.push(GaugeSample {
                name: name.to_string(),
                domain,
                at_us,
                value,
            });
        }
        if let Some(metrics) = &self.metrics {
            let (q, t) = self.scope_parts();
            let mut m = metrics.lock();
            let id = m.scoped_gauge_id(name, q, t);
            match domain {
                // Sim timestamps are deterministic → windowed history.
                Domain::Sim => m.gauge_write_at(id, at_us, value),
                // Wall timestamps are noise → keep only the last value.
                Domain::Wall => m.gauge_write(id, value),
            }
        }
    }

    /// Record a sample into the named Fibonacci histogram (µs base).
    pub fn observe(&self, hist: &str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut data = inner.lock().unwrap();
            match data.hists.get_mut(hist) {
                Some(h) => h.observe(value),
                None => {
                    let mut h = crate::hist::FibHistogram::micros();
                    h.observe(value);
                    data.hists.insert(hist.to_string(), h);
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            let (q, t) = self.scope_parts();
            let mut m = metrics.lock();
            let id = m.fast_hist_id(hist, q, t);
            m.hist_observe(id, value);
        }
    }

    /// [`Recorder::observe`] with a simulated-clock timestamp: the
    /// metrics plane additionally buckets the sample into `sim_us`'s
    /// window.
    pub fn observe_at(&self, hist: &str, sim_us: u64, value: u64) {
        if let Some(inner) = &self.inner {
            let mut data = inner.lock().unwrap();
            match data.hists.get_mut(hist) {
                Some(h) => h.observe(value),
                None => {
                    let mut h = crate::hist::FibHistogram::micros();
                    h.observe(value);
                    data.hists.insert(hist.to_string(), h);
                }
            }
        }
        if let Some(metrics) = &self.metrics {
            let (q, t) = self.scope_parts();
            let mut m = metrics.lock();
            let id = m.fast_hist_id(hist, q, t);
            m.hist_observe_at(id, sim_us, value);
        }
    }

    /// Freeze the metrics registry into a snapshot; `None` when no
    /// registry is attached.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.lock().snapshot())
    }

    /// Dump the flight ring; `None` when no ring is attached.
    pub fn flight_dump(&self) -> Option<FlightDump> {
        self.flight.as_ref().map(|f| f.lock().unwrap().dump())
    }

    /// Drain the recorded trace events, leaving the buffer empty. A
    /// recorder without a trace buffer yields an empty [`TraceData`].
    pub fn take(&self) -> TraceData {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.lock().unwrap()),
            None => TraceData::default(),
        }
    }

    /// Clone the recorded trace events without draining.
    pub fn snapshot(&self) -> TraceData {
        match &self.inner {
            Some(inner) => inner.lock().unwrap().clone(),
            None => TraceData::default(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::off();
        assert!(!rec.is_enabled());
        assert!(!rec.is_metering());
        assert!(!rec.has_flight());
        let span = rec.begin(Category::Task, "t", Domain::Sim, 10, SpanCtx::default());
        assert_eq!(span, SpanId::DISABLED);
        rec.end(span, 5); // end < start would panic if recorded
        rec.add("c", 1);
        rec.gauge("g", Domain::Sim, 0, 1.0);
        rec.observe("h", 42);
        rec.instant(Category::Replan, "r", Domain::Sim, 0, SpanCtx::default());
        rec.flight(FlightKind::Retry, Domain::Sim, 0, None, "x");
        let data = rec.take();
        assert_eq!(data.spans.len(), 0);
        assert_eq!(data.counters.len(), 0);
        assert!(rec.metrics_snapshot().is_none());
        assert!(rec.flight_dump().is_none());
    }

    #[test]
    fn spans_counters_gauges_roundtrip() {
        let rec = Recorder::new();
        let s = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            100,
            SpanCtx::default().node(2).block(7),
        );
        rec.end(s, 400);
        rec.add("tasks", 1);
        rec.add("tasks", 2);
        rec.gauge("fpr", Domain::Wall, 5, 0.01);
        rec.observe("lat", 300);
        let data = rec.take();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].end_us, Some(400));
        assert_eq!(data.spans[0].ctx.node, Some(2));
        assert_eq!(data.counters["tasks"], 3);
        assert_eq!(data.gauges.len(), 1);
        assert_eq!(data.hists["lat"].total(), 1);
        // take() drained.
        assert_eq!(rec.take().spans.len(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.add("x", 1);
        rec.add("x", 1);
        assert_eq!(rec.snapshot().counters["x"], 2);
    }

    /// Property (satellite): spans can never end before they start on the
    /// recording clock.
    #[test]
    #[should_panic(expected = "before it starts")]
    fn span_cannot_end_before_start() {
        let rec = Recorder::new();
        let s = rec.begin(Category::Task, "t", Domain::Sim, 100, SpanCtx::default());
        rec.end(s, 99);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn span_cannot_close_twice() {
        let rec = Recorder::new();
        let s = rec.begin(Category::Task, "t", Domain::Sim, 0, SpanCtx::default());
        rec.end(s, 1);
        rec.end(s, 2);
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }

    #[test]
    fn wall_clock_is_monotone() {
        let rec = Recorder::new();
        let a = rec.wall_us();
        let b = rec.wall_us();
        assert!(b >= a);
    }

    #[test]
    fn metrics_only_spans_meter_without_a_trace_buffer() {
        let rec = Recorder::off().with_metrics(1_000);
        assert!(!rec.is_enabled());
        assert!(rec.is_metering());
        let s = rec.begin(
            Category::Task,
            "select",
            Domain::Sim,
            100,
            SpanCtx::default().node(1),
        );
        assert_ne!(s, SpanId::DISABLED);
        rec.end(s, 600);
        let snap = rec.metrics_snapshot().unwrap();
        assert_eq!(snap.counters["node_busy_us{node=\"1\"}"], 500);
        assert_eq!(
            snap.hists["span_us{cat=\"task\",clock=\"sim\",name=\"select\"}"].count,
            1
        );
        // No trace was kept.
        assert_eq!(rec.take().spans.len(), 0);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn metrics_only_span_cannot_close_twice() {
        let rec = Recorder::off().with_metrics(1_000);
        let s = rec.begin(Category::Task, "t", Domain::Sim, 0, SpanCtx::default());
        rec.end(s, 1);
        rec.end(s, 2);
    }

    #[test]
    fn scoped_recorder_stamps_query_and_tenant() {
        let rec = Recorder::new().with_metrics(1_000).with_flight(8);
        let q = rec.scoped(QueryCtx::new(7).tenant("acme"));
        let s = q.begin(
            Category::Phase,
            "selection",
            Domain::Sim,
            0,
            SpanCtx::default(),
        );
        q.end(s, 2_000);
        q.instant(
            Category::Detection,
            "crash",
            Domain::Sim,
            500,
            SpanCtx::default().node(3),
        );
        let trace = rec.snapshot();
        assert_eq!(trace.spans[0].ctx.query, Some(7));
        assert_eq!(trace.spans[0].ctx.tenant.as_deref(), Some("acme"));
        assert_eq!(trace.instants[0].ctx.query, Some(7));
        let snap = rec.metrics_snapshot().unwrap();
        let key =
            "span_us{cat=\"phase\",clock=\"sim\",name=\"selection\",query=\"7\",tenant=\"acme\"}";
        assert_eq!(snap.hists[key].count, 1);
        // The crash instant reached the flight ring with its query id.
        let dump = rec.flight_dump().unwrap();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].kind, FlightKind::Crash);
        assert_eq!(dump.events[0].query, Some(7));
        assert_eq!(dump.events[0].node, Some(3));
    }

    #[test]
    fn checkpoint_span_ends_reach_the_flight_ring() {
        let rec = Recorder::new().with_flight(4);
        let s = rec.begin(
            Category::Checkpoint,
            "commit",
            Domain::Wall,
            0,
            SpanCtx::default(),
        );
        rec.end_with_note(s, 10, "stage 2");
        let dump = rec.flight_dump().unwrap();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].kind, FlightKind::CheckpointCommit);
        assert!(dump.events[0].detail.contains("stage 2"));
    }

    #[test]
    fn fork_trace_shares_metrics_but_not_spans() {
        let rec = Recorder::new().with_metrics(1_000);
        let stage = rec.fork_trace();
        let s = stage.begin(
            Category::Task,
            "t",
            Domain::Sim,
            0,
            SpanCtx::default().node(0),
        );
        stage.end(s, 100);
        // The stage trace has the span; the parent trace does not.
        assert_eq!(stage.snapshot().spans.len(), 1);
        assert_eq!(rec.snapshot().spans.len(), 0);
        // But the parent's metrics registry saw it.
        let snap = rec.metrics_snapshot().unwrap();
        assert_eq!(snap.counters["node_busy_us{node=\"0\"}"], 100);
    }

    #[test]
    fn add_at_and_observe_at_window_by_sim_time() {
        let rec = Recorder::off().with_metrics(1_000);
        rec.add_at("retries", 1_500, 2);
        rec.observe_at("lat", 1_500, 77);
        let snap = rec.metrics_snapshot().unwrap();
        assert_eq!(snap.windowed["retries"], vec![(1_000, 2)]);
        assert_eq!(snap.win_hists["lat"][0].0, 1_000);
    }
}
