//! Metrics-snapshot exporters: OpenMetrics/Prometheus text exposition and
//! JSONL, plus a strict parser for the text format.
//!
//! The exposition format follows the OpenMetrics conventions: counter
//! samples carry the `_total` suffix, histogram series are exported as
//! summaries (`quantile` label + `_sum` + `_count` — the percentiles are
//! pre-derived from the Fibonacci buckets, so summaries lose nothing),
//! and the document ends with `# EOF`. Windowed series have no cumulative
//! reading, so they ride only in the JSONL export.
//!
//! The parser is deliberately strict — unknown line shape, sample before
//! its `# TYPE`, bad label syntax or a missing `# EOF` are hard errors —
//! because it doubles as the CI validator for the export path.

use crate::metrics::{split_series, MetricsSnapshot};
use serde::Value;

/// Metric family kind in the text format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmKind {
    /// Monotonic counter (`_total` samples).
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Quantile summary (`quantile` label, `_sum`, `_count`).
    Summary,
}

impl OmKind {
    fn as_str(self) -> &'static str {
        match self {
            OmKind::Counter => "counter",
            OmKind::Gauge => "gauge",
            OmKind::Summary => "summary",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(OmKind::Counter),
            "gauge" => Some(OmKind::Gauge),
            "summary" => Some(OmKind::Summary),
            _ => None,
        }
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct OmSample {
    /// Full sample name (family name plus any `_total`/`_sum`/`_count`).
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl OmSample {
    /// Value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family: its `# TYPE` declaration and samples.
#[derive(Debug, Clone, PartialEq)]
pub struct OmFamily {
    /// Family name as declared.
    pub name: String,
    /// Declared kind.
    pub kind: OmKind,
    /// Samples belonging to this family, in document order.
    pub samples: Vec<OmSample>,
}

/// Render a snapshot in OpenMetrics text exposition format.
pub fn to_openmetrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut declare = |out: &mut String, family: &str, kind: OmKind| {
        if family != last_family {
            out.push_str(&format!("# TYPE {family} {}\n", kind.as_str()));
            last_family = family.to_string();
        }
    };
    // BTreeMap iteration keeps series of one family adjacent and sorted.
    for (key, &v) in &snap.counters {
        let (name, labels) = split_series(key);
        declare(&mut out, name, OmKind::Counter);
        out.push_str(&format!("{name}_total{labels} {v}\n"));
    }
    for (key, &v) in &snap.gauges {
        let (name, labels) = split_series(key);
        declare(&mut out, name, OmKind::Gauge);
        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(v)));
    }
    for (key, h) in &snap.hists {
        let (name, labels) = split_series(key);
        declare(&mut out, name, OmKind::Summary);
        for (q, bound) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let with_q = inject_label(labels, "quantile", q);
            out.push_str(&format!("{name}{with_q} {bound}\n"));
        }
        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
        out.push_str(&format!("{name}_count{labels} {}\n", h.count));
    }
    out.push_str("# EOF\n");
    out
}

/// Format a float the way the exposition format expects (no exponent for
/// the magnitudes we emit, integral values without a trailing `.0` are
/// still valid samples).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Insert a label into a `{...}` label-set string (which may be empty).
fn inject_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // "{a=\"b\"}" → "{a=\"b\",key=\"value\"}"
        format!("{},{key}=\"{value}\"}}", &labels[..labels.len() - 1])
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed label set: `(key, value)` pairs in appearance order.
type Labels = Vec<(String, String)>;

/// Parse one `{k="v",…}` label block. Returns the labels and the rest of
/// the line after the closing brace.
fn parse_labels(s: &str, lineno: usize) -> Result<(Labels, &str), String> {
    debug_assert!(s.starts_with('{'));
    let mut labels = Vec::new();
    let mut rest = &s[1..];
    loop {
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without `=`"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("line {lineno}: bad label name `{name}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {lineno}: label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let end = loop {
            let Some((i, c)) = chars.next() else {
                return Err(format!("line {lineno}: unterminated label value"));
            };
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Err(format!(
                            "line {lineno}: bad escape `\\{}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ))
                    }
                },
                c => value.push(c),
            }
        };
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err(format!("line {lineno}: expected `,` or `}}` after label"));
        }
    }
}

/// Whether `sample` is a legal sample name for family `family` of `kind`.
fn sample_belongs(family: &str, kind: OmKind, sample: &str) -> bool {
    match kind {
        OmKind::Counter => sample == format!("{family}_total"),
        OmKind::Gauge => sample == family,
        OmKind::Summary => {
            sample == family
                || sample == format!("{family}_sum")
                || sample == format!("{family}_count")
        }
    }
}

/// Strict OpenMetrics text parser. Returns the families in document
/// order; any deviation from the grammar is an error.
pub fn parse_openmetrics(text: &str) -> Result<Vec<OmFamily>, String> {
    let mut families: Vec<OmFamily> = Vec::new();
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if saw_eof {
            return Err(format!("line {lineno}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {lineno}: empty line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                saw_eof = true;
                continue;
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split(' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if parts.next().is_some() || !valid_metric_name(name) {
                    return Err(format!("line {lineno}: malformed TYPE line"));
                }
                let kind = OmKind::parse(kind)
                    .ok_or_else(|| format!("line {lineno}: unknown metric type `{kind}`"))?;
                if families.iter().any(|f| f.name == name) {
                    return Err(format!("line {lineno}: family `{name}` declared twice"));
                }
                families.push(OmFamily {
                    name: name.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                continue;
            }
            if rest.starts_with("HELP ") || rest.starts_with("UNIT ") {
                continue;
            }
            return Err(format!("line {lineno}: unknown comment directive"));
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end..], lineno)?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_str = rest
            .strip_prefix(' ')
            .ok_or_else(|| format!("line {lineno}: expected space before value"))?;
        if value_str.contains(' ') {
            return Err(format!("line {lineno}: trailing content after value"));
        }
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample value `{value_str}`"))?;
        let family = families
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: sample before any # TYPE"))?;
        if !sample_belongs(&family.name, family.kind, name) {
            return Err(format!(
                "line {lineno}: sample `{name}` does not belong to family `{}`",
                family.name
            ));
        }
        if family.kind == OmKind::Summary && name == family.name {
            let q = OmSample {
                name: name.to_string(),
                labels: labels.clone(),
                value,
            };
            if q.label("quantile").is_none() {
                return Err(format!(
                    "line {lineno}: summary sample without quantile label"
                ));
            }
        }
        family.samples.push(OmSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(families)
}

/// JSONL export: one line per series (counters, windowed counters,
/// histogram summaries, windowed histograms, gauges, windowed gauges).
/// Unlike OpenMetrics this keeps the windowed views.
pub fn to_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let obj = |entries: Vec<(&str, Value)>| {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let mut push = |v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("jsonl serialization is infallible"));
        out.push('\n');
    };
    let windows_value = |ws: &[(u64, u64)]| {
        Value::Array(
            ws.iter()
                .map(|&(w, v)| Value::Array(vec![Value::U64(w), Value::U64(v)]))
                .collect(),
        )
    };
    push(obj(vec![
        ("type", Value::Str("meta".into())),
        ("window_us", Value::U64(snap.window_us)),
    ]));
    for (key, &v) in &snap.counters {
        let mut entries = vec![
            ("type", Value::Str("counter".into())),
            ("series", Value::Str(key.clone())),
            ("total", Value::U64(v)),
        ];
        if let Some(ws) = snap.windowed.get(key) {
            entries.push(("windows", windows_value(ws)));
        }
        push(obj(entries));
    }
    for (key, h) in &snap.hists {
        let mut entries = vec![
            ("type", Value::Str("histogram".into())),
            ("series", Value::Str(key.clone())),
            ("count", Value::U64(h.count)),
            ("sum", Value::U64(h.sum)),
            ("p50", Value::U64(h.p50)),
            ("p95", Value::U64(h.p95)),
            ("p99", Value::U64(h.p99)),
        ];
        if let Some(ws) = snap.win_hists.get(key) {
            entries.push((
                "windows",
                Value::Array(
                    ws.iter()
                        .map(|(w, h)| {
                            Value::Array(vec![
                                Value::U64(*w),
                                Value::U64(h.count),
                                Value::U64(h.p99),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        push(obj(entries));
    }
    for (key, &v) in &snap.gauges {
        let mut entries = vec![
            ("type", Value::Str("gauge".into())),
            ("series", Value::Str(key.clone())),
            ("value", Value::F64(v)),
        ];
        if let Some(ws) = snap.win_gauges.get(key) {
            entries.push((
                "windows",
                Value::Array(
                    ws.iter()
                        .map(|&(w, v)| Value::Array(vec![Value::U64(w), Value::F64(v)]))
                        .collect(),
                ),
            ));
        }
        push(obj(entries));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsData;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut m = MetricsData::new(1_000);
        m.add_at("tasks{node=\"0\"}", 100, 3);
        m.add_at("tasks{node=\"1\"}", 1_200, 2);
        m.add("wall_spans", 7);
        m.observe_at("span_us{cat=\"task\"}", 500, 120);
        m.observe_at("span_us{cat=\"task\"}", 600, 480);
        m.gauge_set("meta_bytes", 1024.0);
        m.gauge_at("est_error", 900, 0.25);
        m.snapshot()
    }

    /// Satellite property: the OpenMetrics export round-trips through the
    /// strict parser with every series and value intact.
    #[test]
    fn openmetrics_roundtrips_through_strict_parser() {
        let snap = sample_snapshot();
        let text = to_openmetrics(&snap);
        let families = parse_openmetrics(&text).expect("export must parse");
        let by_name = |n: &str| families.iter().find(|f| f.name == n).unwrap();
        let tasks = by_name("tasks");
        assert_eq!(tasks.kind, OmKind::Counter);
        assert_eq!(tasks.samples.len(), 2);
        assert_eq!(tasks.samples[0].name, "tasks_total");
        assert_eq!(tasks.samples[0].label("node"), Some("0"));
        assert_eq!(tasks.samples[0].value, 3.0);
        let span = by_name("span_us");
        assert_eq!(span.kind, OmKind::Summary);
        // 3 quantiles + _sum + _count.
        assert_eq!(span.samples.len(), 5);
        let count = span
            .samples
            .iter()
            .find(|s| s.name == "span_us_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
        let sum = span
            .samples
            .iter()
            .find(|s| s.name == "span_us_sum")
            .unwrap();
        assert_eq!(sum.value, 600.0);
        let gauges = by_name("meta_bytes");
        assert_eq!(gauges.kind, OmKind::Gauge);
        assert_eq!(gauges.samples[0].value, 1024.0);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        // No EOF.
        assert!(parse_openmetrics("# TYPE a counter\na_total 1\n").is_err());
        // Sample before TYPE.
        assert!(parse_openmetrics("a_total 1\n# EOF\n").is_err());
        // Sample not in family.
        assert!(parse_openmetrics("# TYPE a counter\nb_total 1\n# EOF\n").is_err());
        // Counter sample without _total.
        assert!(parse_openmetrics("# TYPE a counter\na 1\n# EOF\n").is_err());
        // Bad label syntax.
        assert!(parse_openmetrics("# TYPE a counter\na_total{x=1} 1\n# EOF\n").is_err());
        // Unterminated label value.
        assert!(parse_openmetrics("# TYPE a counter\na_total{x=\"1} 1\n# EOF\n").is_err());
        // Bad value.
        assert!(parse_openmetrics("# TYPE a counter\na_total zero\n# EOF\n").is_err());
        // Duplicate family.
        assert!(parse_openmetrics("# TYPE a counter\n# TYPE a counter\n# EOF\n").is_err());
        // Content after EOF.
        assert!(parse_openmetrics("# EOF\n# TYPE a counter\n").is_err());
        // Summary quantile sample without the quantile label.
        assert!(parse_openmetrics("# TYPE s summary\ns 1\n# EOF\n").is_err());
        // The empty-but-terminated document is fine.
        assert!(parse_openmetrics("# EOF\n").unwrap().is_empty());
    }

    #[test]
    fn label_escapes_roundtrip() {
        let mut m = MetricsData::new(1_000);
        let key = crate::metrics::series("notes", &[("note", "say \"hi\"\\now")]);
        m.add(&key, 1);
        let text = to_openmetrics(&m.snapshot());
        let families = parse_openmetrics(&text).expect("escaped labels must parse");
        assert_eq!(
            families[0].samples[0].label("note"),
            Some("say \"hi\"\\now")
        );
    }

    #[test]
    fn jsonl_lines_each_parse_and_keep_windows() {
        let snap = sample_snapshot();
        let jsonl = to_jsonl(&snap);
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 3 counters + 1 hist + 2 gauges.
        assert_eq!(lines.len(), 7, "{jsonl}");
        for line in &lines {
            serde_json::parse_value(line.as_bytes()).unwrap();
        }
        assert!(jsonl.contains("\"windows\""), "{jsonl}");
    }
}
