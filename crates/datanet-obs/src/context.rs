//! Causal query identity propagated through the whole stack.
//!
//! Spans, metrics, flight events and crash chains recorded by different
//! subsystems (scan, scheduler, engine, store, pipeline) all need to
//! correlate back to the query that caused them. A [`QueryCtx`] carries
//! that identity; [`crate::Recorder::scoped`] attaches one to a recording
//! handle so every event recorded through that handle is stamped with the
//! query id and tenant automatically — no signature changes anywhere.

use serde::{Deserialize, Serialize};

/// Identity of one logical query (or ingest run, or pipeline execution).
///
/// `query_id` is assigned by whoever opens the query scope (CLI, harness,
/// serve plane); `tenant` names the principal on whose behalf the work
/// runs; `parent_span` optionally links a sub-query to the span of the
/// query that spawned it (e.g. a pipeline stage fanning out a plan).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryCtx {
    /// Unique id of the query within the recording session.
    pub query_id: u64,
    /// Tenant / principal the query belongs to.
    pub tenant: Option<String>,
    /// Span id of the parent query's enclosing span, if any.
    pub parent_span: Option<u64>,
}

impl QueryCtx {
    /// A query context with the given id and no tenant.
    pub fn new(query_id: u64) -> Self {
        Self {
            query_id,
            tenant: None,
            parent_span: None,
        }
    }

    /// Set the tenant.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Link to the parent query's span.
    pub fn parent_span(mut self, span: u64) -> Self {
        self.parent_span = Some(span);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let q = QueryCtx::new(7).tenant("acme").parent_span(3);
        assert_eq!(q.query_id, 7);
        assert_eq!(q.tenant.as_deref(), Some("acme"));
        assert_eq!(q.parent_span, Some(3));
    }

    #[test]
    fn roundtrips_through_serde() {
        let q = QueryCtx::new(9).tenant("t");
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryCtx = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
