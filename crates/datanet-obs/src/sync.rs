//! A minimal spinlock for the metrics registry.
//!
//! The registry's critical sections are tens of nanoseconds — a
//! direct-mapped cache probe plus a couple of `Vec`-indexed bumps — so
//! an uncontended `std::sync::Mutex` round trip costs about as much as
//! the work it guards. A raw compare-exchange halves the per-event
//! price, and contention is bounded: the only concurrent writers are
//! rayon scan workers whose wall-domain events are count-only. The
//! guard releases on drop, so a panic inside the critical section (the
//! span-shape asserts) unwinds cleanly instead of wedging the lock.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

pub(crate) struct SpinLock<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock grants exclusive access before any reference to the
// payload is handed out, so the container is Sync (and Send) whenever
// the payload can move between threads.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            // Wait on a plain load (no cache-line ping-pong), yielding to
            // the scheduler if the holder seems preempted.
            let mut spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
    }
}

impl<T> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpinLock").finish_non_exhaustive()
    }
}

pub(crate) struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the lock is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard exists only while the lock is held, and
        // `&mut self` makes this the sole reference.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_add_up_across_threads() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn guard_releases_on_panic() {
        let lock = Arc::new(SpinLock::new(0u64));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poisoned on purpose");
        })
        .join();
        // The lock must be free again.
        assert_eq!(*lock.lock(), 0);
    }
}
