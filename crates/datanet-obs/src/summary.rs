//! Derived views: utilisation timelines, straggler/idler classification
//! and crash→suspicion→re-plan latency chains, condensed into the
//! [`ObsSummary`] that rides along in reports.

use crate::recorder::{Category, Domain};
use crate::trace::TraceData;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a node's busy time compares to the expected per-node workload.
///
/// Thresholds follow the paper's Section II-B reading of the Gamma
/// imbalance model (`datanet_stats::ImbalanceModel`): a node is a
/// straggler above `2·E(Z)` and an idler below `E(Z)/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeClass {
    /// Busy time within `[E/2, 2E]`.
    Normal,
    /// Busy time above twice the expectation — the node everyone waits on.
    Straggler,
    /// Busy time below half the expectation — capacity the imbalance
    /// wasted.
    Idler,
}

/// One node's utilisation over a traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUtil {
    /// Node id.
    pub node: u64,
    /// Simulated microseconds spent in task spans.
    pub busy_us: u64,
    /// Task spans executed on this node.
    pub tasks: u64,
    /// `busy_us` over the traced makespan (0..=1).
    pub utilisation: f64,
    /// Classification against the expected workload.
    pub class: NodeClass,
}

/// The crash→suspicion→re-plan latency chain for one crashed node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashChain {
    /// The node that crashed.
    pub node: u64,
    /// Simulated microsecond of the crash.
    pub crash_us: u64,
    /// When the failure detector suspected the node (equals `crash_us`
    /// under the oracle model; `None` if never suspected).
    pub suspected_us: Option<u64>,
    /// When the scheduler finished re-planning the node's work (`None` if
    /// no re-plan was recorded).
    pub replanned_us: Option<u64>,
}

impl CrashChain {
    /// Crash → suspicion latency in simulated seconds.
    pub fn detection_secs(&self) -> Option<f64> {
        self.suspected_us.map(|s| (s - self.crash_us) as f64 / 1e6)
    }

    /// Crash → re-plan latency in simulated seconds.
    pub fn replan_secs(&self) -> Option<f64> {
        self.replanned_us.map(|r| (r - self.crash_us) as f64 / 1e6)
    }
}

/// Condensed per-run observability summary, attached to reports as
/// `obs: Option<ObsSummary>` when a recorder was active.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Spans recorded.
    pub spans: usize,
    /// Spans never closed (0 after a healthy run).
    pub unclosed_spans: usize,
    /// Traced makespan on the simulated clock, microseconds.
    pub sim_end_us: u64,
    /// Expected per-node busy microseconds the classification used
    /// (`E(Z)` from the Gamma model when the caller supplied it, the
    /// empirical mean otherwise).
    pub expected_busy_us: f64,
    /// Per-node utilisation, sorted by node id.
    pub node_util: Vec<NodeUtil>,
    /// Nodes classified as stragglers.
    pub stragglers: Vec<u64>,
    /// Nodes classified as idlers.
    pub idlers: Vec<u64>,
    /// One chain per crash instant, in crash order.
    pub crash_chains: Vec<CrashChain>,
    /// Final counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Last recorded value of every gauge.
    pub gauges: BTreeMap<String, f64>,
}

impl TraceData {
    /// Classify every node that executed tasks against an expected busy
    /// time. `expected_busy_us = None` uses the empirical mean over
    /// participating nodes (the natural estimator of the Gamma model's
    /// `E(Z) = nkθ/m`).
    pub fn classify_nodes(&self, expected_busy_us: Option<f64>) -> (f64, Vec<NodeUtil>) {
        let busy = self.node_busy_us();
        if busy.is_empty() {
            return (expected_busy_us.unwrap_or(0.0), Vec::new());
        }
        let mean = busy.values().map(|&(b, _)| b as f64).sum::<f64>() / busy.len() as f64;
        let expected = expected_busy_us.unwrap_or(mean);
        let makespan = self.sim_end_us().max(1) as f64;
        let utils = busy
            .into_iter()
            .map(|(node, (busy_us, tasks))| {
                let b = busy_us as f64;
                let class = if expected > 0.0 && b > 2.0 * expected {
                    NodeClass::Straggler
                } else if b < expected / 2.0 {
                    NodeClass::Idler
                } else {
                    NodeClass::Normal
                };
                NodeUtil {
                    node,
                    busy_us,
                    tasks,
                    utilisation: b / makespan,
                    class,
                }
            })
            .collect();
        (expected, utils)
    }

    /// Extract the crash→suspicion→re-plan chain for every `crash`
    /// instant: the first `suspect` instant and the first `replan` event
    /// for the same node at or after the crash.
    pub fn crash_chains(&self) -> Vec<CrashChain> {
        let find = |cat: Category, name: &str, node: u64, from: u64| -> Option<u64> {
            self.instants
                .iter()
                .filter(|i| {
                    i.cat == cat && i.name == name && i.ctx.node == Some(node) && i.at_us >= from
                })
                .map(|i| i.at_us)
                .min()
        };
        self.instants
            .iter()
            .filter(|i| {
                i.cat == Category::Detection && i.name == "crash" && i.domain == Domain::Sim
            })
            .filter_map(|c| {
                let node = c.ctx.node?;
                Some(CrashChain {
                    node,
                    crash_us: c.at_us,
                    suspected_us: find(Category::Detection, "suspect", node, c.at_us),
                    replanned_us: find(Category::Replan, "replan", node, c.at_us),
                })
            })
            .collect()
    }

    /// Build the condensed summary. `expected_busy_us` is `E(Z)` in
    /// simulated microseconds when the caller has a Gamma model for the
    /// run, `None` to classify against the empirical mean.
    pub fn summary(&self, expected_busy_us: Option<f64>) -> ObsSummary {
        let (expected, node_util) = self.classify_nodes(expected_busy_us);
        let stragglers = node_util
            .iter()
            .filter(|u| u.class == NodeClass::Straggler)
            .map(|u| u.node)
            .collect();
        let idlers = node_util
            .iter()
            .filter(|u| u.class == NodeClass::Idler)
            .map(|u| u.node)
            .collect();
        ObsSummary {
            spans: self.spans.len(),
            unclosed_spans: self.unclosed_spans(),
            sim_end_us: self.sim_end_us(),
            expected_busy_us: expected,
            node_util,
            stragglers,
            idlers,
            crash_chains: self.crash_chains(),
            counters: self.counters.clone(),
            gauges: self.gauge_finals(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, SpanCtx};

    /// Three nodes: 100 µs, 700 µs and 2000 µs of work. Against the
    /// empirical mean (~933 µs) node 2 is a straggler and node 0 an
    /// idler.
    fn skewed_trace() -> TraceData {
        let rec = Recorder::new();
        for (node, dur) in [(0u64, 100u64), (1, 700), (2, 2000)] {
            let s = rec.begin(
                Category::Task,
                "map",
                Domain::Sim,
                0,
                SpanCtx::default().node(node as usize),
            );
            rec.end(s, dur);
        }
        rec.take()
    }

    #[test]
    fn classification_against_empirical_mean() {
        let t = skewed_trace();
        let s = t.summary(None);
        assert_eq!(s.stragglers, vec![2]);
        assert_eq!(s.idlers, vec![0]);
        assert_eq!(s.node_util.len(), 3);
        assert_eq!(s.node_util[1].class, NodeClass::Normal);
        assert!((s.expected_busy_us - 2800.0 / 3.0).abs() < 1e-9);
        // Node 2 is busy for the whole 2000 µs makespan.
        assert!((s.node_util[2].utilisation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classification_against_model_expectation() {
        let t = skewed_trace();
        // With E(Z) = 150 µs, 700 and 2000 both exceed 2E.
        let s = t.summary(Some(150.0));
        assert_eq!(s.stragglers, vec![1, 2]);
        assert!(s.idlers.is_empty());
        assert_eq!(s.expected_busy_us, 150.0);
    }

    #[test]
    fn crash_chain_extraction() {
        let rec = Recorder::new();
        let ctx = || SpanCtx::default().node(3);
        rec.instant(Category::Detection, "crash", Domain::Sim, 1000, ctx());
        rec.instant(Category::Detection, "suspect", Domain::Sim, 1500, ctx());
        rec.instant(Category::Replan, "replan", Domain::Sim, 1600, ctx());
        // Unrelated node crash with no follow-up.
        rec.instant(
            Category::Detection,
            "crash",
            Domain::Sim,
            2000,
            SpanCtx::default().node(7),
        );
        let chains = rec.take().crash_chains();
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].node, 3);
        assert_eq!(chains[0].suspected_us, Some(1500));
        assert_eq!(chains[0].replanned_us, Some(1600));
        assert!((chains[0].detection_secs().unwrap() - 0.0005).abs() < 1e-12);
        assert!((chains[0].replan_secs().unwrap() - 0.0006).abs() < 1e-12);
        assert_eq!(chains[1].node, 7);
        assert_eq!(chains[1].suspected_us, None);
        assert_eq!(chains[1].replanned_us, None);
    }

    #[test]
    fn suspicion_before_crash_is_not_chained() {
        let rec = Recorder::new();
        let ctx = || SpanCtx::default().node(1);
        rec.instant(Category::Detection, "suspect", Domain::Sim, 500, ctx());
        rec.instant(Category::Detection, "crash", Domain::Sim, 1000, ctx());
        let chains = rec.take().crash_chains();
        assert_eq!(chains[0].suspected_us, None);
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let t = skewed_trace();
        let s = t.summary(None);
        let json = serde_json::to_string(&s).unwrap();
        let back: ObsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_trace_summary_is_default_shaped() {
        let s = TraceData::default().summary(None);
        assert_eq!(s.spans, 0);
        assert_eq!(s.node_util.len(), 0);
        assert_eq!(s.crash_chains.len(), 0);
    }
}
