//! Fixed-bucket histograms with Fibonacci-width intervals.
//!
//! Same observation as the block scanner's `buckets.rs`: latency and size
//! distributions are heavy-tailed, so "larger values get sparser intervals"
//! captures them in a few dozen integer counters with no per-sample
//! allocation. Bounds follow `0, b, 2b, 3b, 5b, 8b, …` until the next
//! Fibonacci multiple would overflow `u64`.

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// For each bit length `L` (1..=64), the largest base-1 bound index `i`
/// with `bounds[i] <= 2^(L-1)` — the jump-in point for
/// [`FibHistogram::observe`]'s fast path. Fibonacci numbers grow by
/// φ ≈ 1.618 per index, so from that start at most two fix-up steps
/// reach any value of the bit length (φ² > 2).
fn fib_start_by_bits() -> &'static [u8; 65] {
    static LUT: OnceLock<[u8; 65]> = OnceLock::new();
    LUT.get_or_init(|| {
        let bounds = FibHistogram::new(1).bounds;
        let mut lut = [0u8; 65];
        for (l, slot) in lut.iter_mut().enumerate().skip(1) {
            let v = 1u64 << (l - 1);
            *slot = (bounds.partition_point(|&b| b <= v) - 1) as u8;
        }
        lut
    })
}

/// A histogram over `u64` samples with Fibonacci-progression bucket bounds.
/// Bucket `i` covers `[bounds[i], bounds[i+1])`; the last bucket is
/// unbounded above.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FibHistogram {
    /// Bucket lower bounds; `bounds[0]` is always 0.
    bounds: Vec<u64>,
    /// Sample count per bucket (same length as `bounds`).
    counts: Vec<u64>,
    /// Total samples observed.
    total: u64,
    /// Saturating sum of all samples (for the mean).
    sum: u64,
}

impl FibHistogram {
    /// Fibonacci bounds scaled by `base`: `0, base, 2·base, 3·base, …`,
    /// extended until the next bound would overflow `u64` (93 buckets at
    /// `base = 1`, fewer for larger bases).
    ///
    /// # Panics
    /// Panics if `base == 0`.
    pub fn new(base: u64) -> Self {
        assert!(base > 0, "histogram base must be positive");
        let mut bounds = vec![0u64];
        let (mut a, mut b) = (1u64, 2u64);
        while let Some(bound) = a.checked_mul(base) {
            bounds.push(bound);
            let Some(next) = a.checked_add(b) else {
                break;
            };
            a = b;
            b = next;
        }
        let counts = vec![0; bounds.len()];
        Self {
            bounds,
            counts,
            total: 0,
            sum: 0,
        }
    }

    /// Microsecond-latency histogram: base 1 µs, covering the full `u64`
    /// range (~93 buckets).
    pub fn micros() -> Self {
        Self::new(1)
    }

    /// Byte-size histogram: base 1 KiB, matching the paper's scan buckets.
    pub fn bytes() -> Self {
        Self::new(1024)
    }

    /// Record one sample. O(1) for base-1 (microsecond) histograms — the
    /// metrics hot path — via a bit-length jump table; O(log #buckets)
    /// binary search otherwise.
    pub fn observe(&mut self, value: u64) {
        let i = if value == 0 {
            0
        } else if self.bounds[1] == 1 {
            // Base-1 bounds are the full Fibonacci sequence, so the
            // jump table (built from the same sequence) indexes
            // directly into `self.bounds`.
            let bits = (64 - value.leading_zeros()) as usize;
            let mut i = fib_start_by_bits()[bits] as usize;
            while i + 1 < self.bounds.len() && self.bounds[i + 1] <= value {
                i += 1;
            }
            i
        } else {
            self.bounds.partition_point(|&b| b <= value) - 1
        };
        self.counts[i] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Always false — there is at least the `[0, base)` bucket.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lower bound of bucket `i`.
    pub fn lower_bound(&self, i: usize) -> u64 {
        self.bounds[i]
    }

    /// Smallest bucket lower bound `q` of the quantile: the bound below
    /// which at least `q` (0..=1) of the samples fall. Returns 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds[i];
            }
        }
        *self.bounds.last().unwrap()
    }

    /// Merge another histogram into this one. Bucket counts add pointwise;
    /// the merged total always equals the sum of the parts' totals.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms with
    /// different scales would silently misplace every sample.
    pub fn merge(&mut self, other: &FibHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, for compact
    /// export.
    pub fn sparse(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
            .collect()
    }
}

impl Default for FibHistogram {
    fn default() -> Self {
        Self::micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_bounds() {
        let h = FibHistogram::new(10);
        assert_eq!(h.lower_bound(0), 0);
        assert_eq!(h.lower_bound(1), 10);
        assert_eq!(h.lower_bound(2), 20);
        assert_eq!(h.lower_bound(3), 30);
        assert_eq!(h.lower_bound(4), 50);
        assert_eq!(h.lower_bound(5), 80);
        assert_eq!(h.lower_bound(6), 130);
    }

    #[test]
    fn covers_full_u64_range() {
        let mut h = FibHistogram::micros();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(h.len() - 1), 1);
    }

    #[test]
    fn observe_places_boundaries() {
        let mut h = FibHistogram::new(10);
        h.observe(9); // bucket 0
        h.observe(10); // bucket 1
        h.observe(19); // bucket 1
        h.observe(20); // bucket 2
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.total(), 4);
        assert!((h.mean() - 14.5).abs() < 1e-12);
    }

    /// The base-1 jump-table fast path must agree with the binary search
    /// on every bucket boundary (±1) and across random values.
    #[test]
    fn fast_path_matches_binary_search() {
        let reference = FibHistogram::micros();
        let check = |v: u64| {
            let expect = reference.bounds.partition_point(|&b| b <= v) - 1;
            let mut h = FibHistogram::micros();
            h.observe(v);
            assert_eq!(h.count(expect), 1, "value {v} landed in the wrong bucket");
        };
        for i in 0..reference.len() {
            let b = reference.lower_bound(i);
            check(b);
            check(b.saturating_add(1));
            check(b.saturating_sub(1));
        }
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            check(x);
            check(x % 1_000_000);
        }
    }

    #[test]
    fn quantiles() {
        let mut h = FibHistogram::new(10);
        for v in 0..100 {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.0), 0);
        // Half the samples are below 50, the 4th bound.
        assert_eq!(h.quantile_bound(0.5), 30);
        assert_eq!(h.quantile_bound(1.0), 80);
    }

    #[test]
    fn sparse_skips_empty_buckets() {
        let mut h = FibHistogram::new(10);
        h.observe(5);
        h.observe(85);
        assert_eq!(h.sparse(), vec![(0, 1), (80, 1)]);
    }

    /// Property (satellite): for any split of a sample stream across
    /// histograms, merged bucket counts equal the sum of the parts.
    #[test]
    fn merge_counts_equal_sum_of_parts() {
        // Deterministic pseudo-random sample stream.
        let samples: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_003).collect();
        for parts in [1usize, 2, 3, 7] {
            let mut split: Vec<FibHistogram> = (0..parts).map(|_| FibHistogram::micros()).collect();
            let mut whole = FibHistogram::micros();
            for (i, &s) in samples.iter().enumerate() {
                split[i % parts].observe(s);
                whole.observe(s);
            }
            let mut merged = FibHistogram::micros();
            for p in &split {
                merged.merge(p);
            }
            assert_eq!(merged, whole, "merge of {parts} parts must equal whole");
            assert_eq!(
                merged.total(),
                split.iter().map(FibHistogram::total).sum::<u64>()
            );
        }
    }

    #[test]
    #[should_panic]
    fn merge_rejects_different_bounds() {
        let mut a = FibHistogram::new(1);
        let b = FibHistogram::new(1024);
        a.merge(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let mut h = FibHistogram::bytes();
        h.observe(4096);
        let json = serde_json::to_string(&h).unwrap();
        let back: FibHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
