//! Recorded event storage and the Chrome-trace / JSONL exporters.

use crate::hist::FibHistogram;
use crate::recorder::{Category, Domain, SpanCtx};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// A closed or still-open interval event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Event taxonomy bucket.
    pub cat: Category,
    /// Human-readable name ("map", "shard", …).
    pub name: String,
    /// Which clock the timestamps belong to.
    pub domain: Domain,
    /// Start, microseconds in `domain`.
    pub start_us: u64,
    /// End, microseconds in `domain`; `None` while the span is open.
    pub end_us: Option<u64>,
    /// Node/block/sub-dataset attribution.
    pub ctx: SpanCtx,
}

impl Span {
    /// Span duration in microseconds (0 while open).
    pub fn duration_us(&self) -> u64 {
        self.end_us.map_or(0, |e| e - self.start_us)
    }
}

/// A point event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantEvent {
    /// Event taxonomy bucket.
    pub cat: Category,
    /// Event name ("crash", "suspect", "replan", …).
    pub name: String,
    /// Which clock `at_us` belongs to.
    pub domain: Domain,
    /// Timestamp, microseconds in `domain`.
    pub at_us: u64,
    /// Node/block/sub-dataset attribution.
    pub ctx: SpanCtx,
}

/// One sample of a named gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Gauge name.
    pub name: String,
    /// Which clock `at_us` belongs to.
    pub domain: Domain,
    /// Sample time, microseconds in `domain`.
    pub at_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// Everything one recorder collected: the in-memory event log the
/// exporters and derived views read.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceData {
    /// Interval events, in begin order.
    pub spans: Vec<Span>,
    /// Point events, in record order.
    pub instants: Vec<InstantEvent>,
    /// Monotonic counters (final totals).
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples, in record order.
    pub gauges: Vec<GaugeSample>,
    /// Named Fibonacci histograms.
    pub hists: BTreeMap<String, FibHistogram>,
}

/// Chrome-trace pid for each clock domain: the two clocks become two
/// "processes" so Perfetto lays them out as separate tracks.
fn pid(domain: Domain) -> u64 {
    match domain {
        Domain::Sim => 0,
        Domain::Wall => 1,
    }
}

/// Chrome-trace tid: nodes are threads (tid = node + 1); events with no
/// node attribution share tid 0.
fn tid(ctx: &SpanCtx) -> u64 {
    ctx.node.map_or(0, |n| n + 1)
}

fn args_value(ctx: &SpanCtx) -> Value {
    let mut entries = Vec::new();
    if let Some(n) = ctx.node {
        entries.push(("node".to_string(), Value::U64(n)));
    }
    if let Some(b) = ctx.block {
        entries.push(("block".to_string(), Value::U64(b)));
    }
    if let Some(s) = ctx.sub {
        entries.push(("sub".to_string(), Value::U64(s)));
    }
    if let Some(q) = ctx.query {
        entries.push(("query".to_string(), Value::U64(q)));
    }
    if let Some(t) = &ctx.tenant {
        entries.push(("tenant".to_string(), Value::Str(t.clone())));
    }
    if let Some(note) = &ctx.note {
        entries.push(("note".to_string(), Value::Str(note.clone())));
    }
    Value::Object(entries)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl TraceData {
    /// Number of spans never closed — always 0 after a healthy run.
    pub fn unclosed_spans(&self) -> usize {
        self.spans.iter().filter(|s| s.end_us.is_none()).count()
    }

    /// Latest simulated-clock microsecond any event touches (the traced
    /// makespan).
    pub fn sim_end_us(&self) -> u64 {
        let span_end = self
            .spans
            .iter()
            .filter(|s| s.domain == Domain::Sim)
            .map(|s| s.end_us.unwrap_or(s.start_us))
            .max()
            .unwrap_or(0);
        let instant_end = self
            .instants
            .iter()
            .filter(|i| i.domain == Domain::Sim)
            .map(|i| i.at_us)
            .max()
            .unwrap_or(0);
        span_end.max(instant_end)
    }

    /// Per-node `(busy_us, task_count)` summed over closed sim-clock
    /// [`Category::Task`] spans — the utilisation timeline's integral.
    pub fn node_busy_us(&self) -> BTreeMap<u64, (u64, u64)> {
        let mut busy = BTreeMap::new();
        for s in &self.spans {
            if s.cat != Category::Task || s.domain != Domain::Sim {
                continue;
            }
            let Some(node) = s.ctx.node else { continue };
            let entry = busy.entry(node).or_insert((0u64, 0u64));
            entry.0 += s.duration_us();
            entry.1 += 1;
        }
        busy
    }

    /// Last recorded value of every gauge.
    pub fn gauge_finals(&self) -> BTreeMap<String, f64> {
        let mut finals = BTreeMap::new();
        for g in &self.gauges {
            finals.insert(g.name.clone(), g.value);
        }
        finals
    }

    /// Serialize to Chrome `trace_event` JSON (object form), loadable in
    /// `chrome://tracing` and Perfetto.
    ///
    /// Layout: the simulated clock is pid 0 and the wall clock pid 1;
    /// each node is a thread (tid = node + 1, tid 0 for unattributed
    /// events). Spans are `ph:"X"` complete events, instants `ph:"i"`,
    /// gauge samples `ph:"C"` counter tracks. Counters and histograms,
    /// which have totals but no timestamps, ride in `otherData` along
    /// with the unclosed-span count CI gates on.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::new();
        // Process/thread naming metadata.
        for (p, label) in [(0u64, "simulated clock"), (1u64, "wall clock")] {
            events.push(obj(vec![
                ("name", Value::Str("process_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(p)),
                ("tid", Value::U64(0)),
                ("args", obj(vec![("name", Value::Str(label.to_string()))])),
            ]));
        }
        let mut threads: Vec<(u64, u64)> = self
            .spans
            .iter()
            .map(|s| (pid(s.domain), tid(&s.ctx)))
            .chain(self.instants.iter().map(|i| (pid(i.domain), tid(&i.ctx))))
            .collect();
        threads.sort_unstable();
        threads.dedup();
        for &(p, t) in &threads {
            let label = if t == 0 {
                "global".to_string()
            } else {
                format!("node {}", t - 1)
            };
            events.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(p)),
                ("tid", Value::U64(t)),
                ("args", obj(vec![("name", Value::Str(label))])),
            ]));
        }
        for s in &self.spans {
            events.push(obj(vec![
                ("name", Value::Str(s.name.clone())),
                ("cat", Value::Str(s.cat.as_str().into())),
                ("ph", Value::Str("X".into())),
                ("pid", Value::U64(pid(s.domain))),
                ("tid", Value::U64(tid(&s.ctx))),
                ("ts", Value::U64(s.start_us)),
                ("dur", Value::U64(s.duration_us())),
                ("args", args_value(&s.ctx)),
            ]));
        }
        for i in &self.instants {
            events.push(obj(vec![
                ("name", Value::Str(i.name.clone())),
                ("cat", Value::Str(i.cat.as_str().into())),
                ("ph", Value::Str("i".into())),
                ("s", Value::Str("t".into())),
                ("pid", Value::U64(pid(i.domain))),
                ("tid", Value::U64(tid(&i.ctx))),
                ("ts", Value::U64(i.at_us)),
                ("args", args_value(&i.ctx)),
            ]));
        }
        for g in &self.gauges {
            events.push(obj(vec![
                ("name", Value::Str(g.name.clone())),
                ("ph", Value::Str("C".into())),
                ("pid", Value::U64(pid(g.domain))),
                ("tid", Value::U64(0)),
                ("ts", Value::U64(g.at_us)),
                ("args", obj(vec![("value", Value::F64(g.value))])),
            ]));
        }
        let hists = Value::Object(
            self.hists
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        obj(vec![
                            ("total", Value::U64(h.total())),
                            ("mean", Value::F64(h.mean())),
                            (
                                "sparse",
                                Value::Array(
                                    h.sparse()
                                        .into_iter()
                                        .map(|(b, c)| {
                                            Value::Array(vec![Value::U64(b), Value::U64(c)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::Str("ms".into())),
            (
                "otherData",
                obj(vec![
                    ("unclosed_spans", Value::U64(self.unclosed_spans() as u64)),
                    ("counters", self.counters.to_value()),
                    ("histograms", hists),
                ]),
            ),
        ]);
        serde_json::to_string(&doc).expect("chrome trace serialization is infallible")
    }

    /// Serialize to a JSONL event log: one JSON object per line, spans
    /// then instants then gauges, followed by one `counters` line and one
    /// line per histogram.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |v: &Value| {
            out.push_str(&serde_json::to_string(v).expect("jsonl serialization is infallible"));
            out.push('\n');
        };
        for s in &self.spans {
            let mut entries = vec![
                ("type", Value::Str("span".into())),
                ("cat", Value::Str(s.cat.as_str().into())),
                ("name", Value::Str(s.name.clone())),
                ("clock", Value::Str(s.domain.as_str().into())),
                ("start_us", Value::U64(s.start_us)),
            ];
            match s.end_us {
                Some(e) => entries.push(("end_us", Value::U64(e))),
                None => entries.push(("end_us", Value::Null)),
            }
            entries.push(("args", args_value(&s.ctx)));
            push(&obj(entries));
        }
        for i in &self.instants {
            push(&obj(vec![
                ("type", Value::Str("instant".into())),
                ("cat", Value::Str(i.cat.as_str().into())),
                ("name", Value::Str(i.name.clone())),
                ("clock", Value::Str(i.domain.as_str().into())),
                ("at_us", Value::U64(i.at_us)),
                ("args", args_value(&i.ctx)),
            ]));
        }
        for g in &self.gauges {
            push(&obj(vec![
                ("type", Value::Str("gauge".into())),
                ("name", Value::Str(g.name.clone())),
                ("clock", Value::Str(g.domain.as_str().into())),
                ("at_us", Value::U64(g.at_us)),
                ("value", Value::F64(g.value)),
            ]));
        }
        if !self.counters.is_empty() {
            push(&obj(vec![
                ("type", Value::Str("counters".into())),
                ("values", self.counters.to_value()),
            ]));
        }
        for (name, h) in &self.hists {
            push(&obj(vec![
                ("type", Value::Str("histogram".into())),
                ("name", Value::Str(name.clone())),
                ("total", Value::U64(h.total())),
                ("mean", Value::F64(h.mean())),
                (
                    "sparse",
                    Value::Array(
                        h.sparse()
                            .into_iter()
                            .map(|(b, c)| Value::Array(vec![Value::U64(b), Value::U64(c)]))
                            .collect(),
                    ),
                ),
            ]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, SpanCtx};

    fn sample_trace() -> TraceData {
        let rec = Recorder::new();
        let a = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            0,
            SpanCtx::default().node(0).block(1),
        );
        rec.end(a, 100);
        let b = rec.begin(
            Category::Task,
            "map",
            Domain::Sim,
            50,
            SpanCtx::default().node(1).block(2),
        );
        rec.end(b, 350);
        rec.instant(
            Category::Detection,
            "crash",
            Domain::Sim,
            40,
            SpanCtx::default().node(2),
        );
        rec.gauge("fpr", Domain::Wall, 10, 0.004);
        rec.add("tasks_executed", 2);
        rec.observe("task_us", 100);
        rec.observe("task_us", 300);
        rec.take()
    }

    #[test]
    fn node_busy_sums_task_spans() {
        let t = sample_trace();
        let busy = t.node_busy_us();
        assert_eq!(busy[&0], (100, 1));
        assert_eq!(busy[&1], (300, 1));
        assert_eq!(t.sim_end_us(), 350);
        assert_eq!(t.unclosed_spans(), 0);
    }

    #[test]
    fn chrome_export_parses_and_has_every_event() {
        let t = sample_trace();
        let json = t.to_chrome_json();
        let v = serde_json::parse_value(json.as_bytes()).unwrap();
        let events = match v.get("traceEvents").unwrap() {
            Value::Array(items) => items,
            other => panic!("traceEvents must be an array, got {}", other.kind()),
        };
        let xs = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "X"))
            .count();
        let is = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "i"))
            .count();
        let cs = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "C"))
            .count();
        assert_eq!((xs, is, cs), (2, 1, 1));
        let other = v.get("otherData").unwrap();
        assert_eq!(other.get("unclosed_spans"), Some(&Value::U64(0)));
        assert_eq!(
            other.get("counters").unwrap().get("tasks_executed"),
            Some(&Value::U64(2))
        );
        assert!(other.get("histograms").unwrap().get("task_us").is_some());
    }

    #[test]
    fn unclosed_spans_are_counted_in_export() {
        let rec = Recorder::new();
        rec.begin(Category::Task, "map", Domain::Sim, 0, SpanCtx::default());
        let t = rec.take();
        assert_eq!(t.unclosed_spans(), 1);
        let v = serde_json::parse_value(t.to_chrome_json().as_bytes()).unwrap();
        assert_eq!(
            v.get("otherData").unwrap().get("unclosed_spans"),
            Some(&Value::U64(1))
        );
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let t = sample_trace();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 2 spans + 1 instant + 1 gauge + 1 counters + 1 histogram.
        assert_eq!(lines.len(), 6);
        for line in lines {
            serde_json::parse_value(line.as_bytes()).unwrap();
        }
    }

    #[test]
    fn trace_data_roundtrips_through_serde() {
        let t = sample_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: TraceData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
