//! Seeded multi-tenant query streams.
//!
//! A stream is the serving plane's entire input: who asks for which
//! sub-dataset, when. It is expanded from a seed exactly once, up front —
//! the server never draws randomness of its own on the decision path, so
//! one `(seed, config)` pair always produces the same admission story.

use datanet_dfs::SubDatasetId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How tenant identities and sub-dataset choices are distributed across
/// the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantMix {
    /// Every tenant equally likely; sub-datasets uniform.
    Uniform,
    /// Tenant `t` drawn with weight `1/(t+1)` (tenant 0 dominates);
    /// sub-datasets uniform.
    Skewed,
    /// Tenant 0 floods: it issues ~3/4 of all queries and always asks for
    /// the hottest sub-dataset (rank 0), the exact pattern fair-share
    /// quotas exist to contain. Other tenants uniform.
    Adversarial,
}

impl TenantMix {
    /// All mixes, for sweep tests.
    pub const ALL: [TenantMix; 3] = [
        TenantMix::Uniform,
        TenantMix::Skewed,
        TenantMix::Adversarial,
    ];

    /// Lower-case name (CLI flag value / report field).
    pub fn as_str(self) -> &'static str {
        match self {
            TenantMix::Uniform => "uniform",
            TenantMix::Skewed => "skewed",
            TenantMix::Adversarial => "adversarial",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(TenantMix::Uniform),
            "skewed" => Some(TenantMix::Skewed),
            "adversarial" => Some(TenantMix::Adversarial),
            _ => None,
        }
    }
}

/// One query in the stream: tenant `tenant` asks for sub-dataset `sub` at
/// simulated instant `arrival_us`. Ids are dense stream positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Dense query id (= position in the stream).
    pub id: u64,
    /// Issuing tenant, `0..tenants`.
    pub tenant: u32,
    /// Requested sub-dataset.
    pub sub: SubDatasetId,
    /// Arrival instant on the simulated clock.
    pub arrival_us: u64,
}

/// Shape of a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of tenants (≥ 1).
    pub tenants: u32,
    /// Number of queries in the stream.
    pub queries: u32,
    /// Simulated microseconds between consecutive arrivals.
    pub gap_us: u64,
    /// Sub-dataset id space the queries draw from (≥ 1).
    pub subdatasets: u64,
    /// Tenant/sub-dataset distribution.
    pub mix: TenantMix,
    /// Stream RNG seed.
    pub seed: u64,
}

/// Expand a [`StreamConfig`] into its query stream, sorted by arrival
/// (ids are arrival order). Deterministic: same config, same stream.
///
/// # Panics
/// Panics on zero tenants or zero sub-datasets.
pub fn generate_stream(cfg: &StreamConfig) -> Vec<QuerySpec> {
    assert!(cfg.tenants >= 1, "need at least one tenant");
    assert!(cfg.subdatasets >= 1, "need at least one sub-dataset");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5E4E_57EA_0000_0001);
    (0..cfg.queries as u64)
        .map(|i| {
            let tenant = draw_tenant(&mut rng, cfg);
            let sub = draw_sub(&mut rng, cfg, tenant);
            QuerySpec {
                id: i,
                tenant,
                sub,
                arrival_us: i * cfg.gap_us,
            }
        })
        .collect()
}

fn draw_tenant(rng: &mut StdRng, cfg: &StreamConfig) -> u32 {
    match cfg.mix {
        TenantMix::Uniform => rng.gen_range(0..cfg.tenants),
        TenantMix::Skewed => {
            // Weight 1/(t+1): sample by inverse-cumulative walk over the
            // (small) tenant count.
            let total: f64 = (0..cfg.tenants).map(|t| 1.0 / (t as f64 + 1.0)).sum();
            let mut x = rng.gen_range(0.0..total);
            for t in 0..cfg.tenants {
                x -= 1.0 / (t as f64 + 1.0);
                if x <= 0.0 {
                    return t;
                }
            }
            cfg.tenants - 1
        }
        TenantMix::Adversarial => {
            if cfg.tenants == 1 || rng.gen_bool(0.75) {
                0
            } else {
                rng.gen_range(1..cfg.tenants)
            }
        }
    }
}

fn draw_sub(rng: &mut StdRng, cfg: &StreamConfig, tenant: u32) -> SubDatasetId {
    match cfg.mix {
        // The flooding tenant hammers the hottest sub-dataset.
        TenantMix::Adversarial if tenant == 0 => SubDatasetId(0),
        _ => SubDatasetId(rng.gen_range(0..cfg.subdatasets)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mix: TenantMix) -> StreamConfig {
        StreamConfig {
            tenants: 4,
            queries: 200,
            gap_us: 1_000,
            subdatasets: 6,
            mix,
            seed: 11,
        }
    }

    #[test]
    fn streams_are_deterministic_and_well_formed() {
        for mix in TenantMix::ALL {
            let c = cfg(mix);
            let a = generate_stream(&c);
            assert_eq!(a, generate_stream(&c));
            assert_eq!(a.len(), 200);
            for (i, q) in a.iter().enumerate() {
                assert_eq!(q.id, i as u64);
                assert_eq!(q.arrival_us, i as u64 * 1_000);
                assert!(q.tenant < 4);
                assert!(q.sub.0 < 6);
            }
        }
    }

    #[test]
    fn adversarial_mix_floods_from_tenant_zero() {
        let a = generate_stream(&cfg(TenantMix::Adversarial));
        let from_zero = a.iter().filter(|q| q.tenant == 0).count();
        assert!(
            from_zero > a.len() / 2,
            "tenant 0 should dominate, got {from_zero}/{}",
            a.len()
        );
        assert!(
            a.iter().filter(|q| q.tenant == 0).all(|q| q.sub.0 == 0),
            "the flooding tenant always asks for the hottest sub-dataset"
        );
        // The other tenants still appear.
        assert!(a.iter().any(|q| q.tenant != 0));
    }

    #[test]
    fn skewed_mix_orders_tenants_by_volume() {
        let a = generate_stream(&StreamConfig {
            queries: 2_000,
            ..cfg(TenantMix::Skewed)
        });
        let mut counts = [0usize; 4];
        for q in &a {
            counts[q.tenant as usize] += 1;
        }
        assert!(counts[0] > counts[3], "1/(t+1) weights: got {counts:?}");
    }

    #[test]
    fn mix_names_roundtrip() {
        for mix in TenantMix::ALL {
            assert_eq!(TenantMix::parse(mix.as_str()), Some(mix));
        }
        assert_eq!(TenantMix::parse("nope"), None);
    }
}
