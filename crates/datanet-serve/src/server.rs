//! The serving plane: admission control, deficit-round-robin fair-share
//! quotas, the epoch-keyed plan cache, and a seeded worker pool.
//!
//! # Decision plane vs execution plane
//!
//! The run is split in two:
//!
//! 1. **Decision plane** — a single-threaded pass over the arrival
//!    timeline. It admits, queues, sheds, rejects, plans (through the
//!    cache) and prices every query, in scheduling rounds on the simulated
//!    clock. Nothing here depends on worker count or worker interleaving,
//!    so the canonical [`ServeAnswers`] section of the report is provably
//!    byte-identical across any concurrency level — the property
//!    `tests/serve.rs` checks seed by seed.
//! 2. **Execution plane** — a pool of workers drains the admitted queries
//!    in admission order. Each query's execution *cost* was already fixed
//!    by the decision plane (the engine's closed-form
//!    `planned_makespan`), so interleaving only moves *when* and *where*
//!    work runs, never what it produces. Worker choice on ties is drawn
//!    from the schedule seed; everything it can influence lands in
//!    [`ServeTiming`], outside the canonical section.
//!
//! # Fair-share invariants (the fairness oracle's contract)
//!
//! Deficit round robin grants each backlogged tenant `quantum_bytes` of
//! estimated plan bytes (Equation 6) per round and serves its queue while
//! the head fits the accumulated deficit. Grant a tenant cannot use (its
//! queue empties) is *forfeited*, never banked. The following follow from
//! the loop structure alone — no tuning — and are checked for **every**
//! seed by the `serve-fairness` oracle:
//!
//! * `granted == rounds_backlogged × quantum` — grants accrue exactly one
//!   quantum per backlogged round, nothing else;
//! * `served + forfeited == granted` — every granted byte is either spent
//!   on admissions or explicitly returned, so `served ≤ granted`: no
//!   tenant is ever served past its share;
//! * `forfeited ≤ busy_periods × (quantum + max_est)` — grant is only
//!   returned when a backlog drains, at most once per backlog episode and
//!   bounded by one quantum plus one query estimate. So a *continuously*
//!   backlogged tenant (one busy period, no drain) is served to within
//!   `quantum + max_est` of its full grant — the calibrated deviation
//!   bound on admitted-bytes shares.

use crate::stream::QuerySpec;
use crate::world::{plan_digest, ScriptedEvent, World};
use datanet::{Assignment, EpochKey, FastMap, PlanCache};
use datanet_mapreduce::{planned_makespan, SelectionConfig};
use datanet_obs::{Category, Domain, QueryCtx, Recorder, SpanCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Knobs of one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Execution workers (≥ 1). Affects timing only, never answers.
    pub workers: u32,
    /// Bounded admission queue: total queries queued across all tenants.
    /// Arrivals past the bound get a typed [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// DRR quantum: estimated plan bytes granted per tenant per round (≥ 1).
    pub quantum_bytes: u64,
    /// Simulated microseconds per scheduling round.
    pub round_us: u64,
    /// Shed a queued query once it has waited this many whole rounds
    /// without being admitted (load shedding; 0 sheds anything not
    /// admitted in its arrival round).
    pub max_wait_rounds: u32,
    /// Consult the epoch-keyed plan cache.
    pub cache: bool,
    /// Plan with the max-flow optimal planner instead of the greedy
    /// balancer.
    pub maxflow: bool,
    /// Seed for worker tie-breaking in the execution plane.
    pub schedule_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_cap: 32,
            quantum_bytes: 64 * 1024,
            round_us: 2_000,
            max_wait_rounds: 16,
            cache: true,
            maxflow: false,
            schedule_seed: 0,
        }
    }
}

/// Why an arrival was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded admission queue was full.
    QueueFull,
}

/// What finally happened to one query. Exactly one disposition per stream
/// query — the conservation oracle's unit of account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Disposition {
    /// Admitted, planned and executed.
    Completed {
        /// Requested sub-dataset.
        sub: u64,
        /// Epoch the plan was served at.
        epoch: EpochKey,
        /// Whether the plan came out of the cache.
        cache_hit: bool,
        /// Digest of the served plan's wire form ([`plan_digest`]).
        plan_digest: u64,
        /// Equation-6 estimate charged against the tenant's quota.
        est_bytes: u64,
        /// Blocks in the served plan.
        assigned_blocks: usize,
        /// Scheduling round of admission.
        round: u64,
    },
    /// Turned away at arrival.
    Rejected {
        /// The typed reason.
        reason: RejectReason,
    },
    /// Queued, then dropped by load shedding.
    Shed {
        /// Whole rounds the query waited before being dropped.
        waited_rounds: u64,
    },
}

/// One query's final record in the canonical answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Stream query id.
    pub id: u64,
    /// Issuing tenant.
    pub tenant: u32,
    /// The disposition.
    pub disposition: Disposition,
}

/// Per-tenant fair-share accounting (the fairness oracle's inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant index.
    pub tenant: u32,
    /// Estimated bytes granted by DRR: exactly one quantum per backlogged
    /// round.
    pub granted_bytes: u64,
    /// Estimated bytes of admitted queries.
    pub served_bytes: u64,
    /// Grant returned unused when the tenant's backlog drained (and any
    /// residue at run end). `served + forfeited == granted` always.
    pub forfeited_bytes: u64,
    /// Largest single-query estimate that entered this tenant's queue.
    pub max_est_bytes: u64,
    /// Rounds in which this tenant was backlogged at its DRR turn.
    pub rounds_backlogged: u64,
    /// Backlog episodes: transitions of this tenant's queue from empty to
    /// non-empty.
    pub busy_periods: u32,
    /// Queries admitted (and therefore completed).
    pub admitted: u32,
    /// Queries rejected at the door.
    pub rejected: u32,
    /// Queries shed after queuing.
    pub shed: u32,
}

/// The canonical section of a serve report: everything the decision plane
/// determined. Byte-identical across worker counts and schedule seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeAnswers {
    /// One outcome per stream query, in stream order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-tenant quota accounting.
    pub tenants: Vec<TenantStats>,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// The DRR quantum the run used.
    pub quantum_bytes: u64,
}

impl ServeAnswers {
    /// The canonical wire form — what the concurrent ≡ sequential
    /// property compares.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("answers always serialise")
    }

    /// A copy with every cache-visible field cleared (`cache_hit` flags
    /// and hit/miss counters), for comparing cache-on and cache-off runs:
    /// a coherent cache may change *where* plans come from, never what
    /// they are.
    pub fn normalized(&self) -> ServeAnswers {
        let mut c = self.clone();
        c.cache_hits = 0;
        c.cache_misses = 0;
        for o in &mut c.outcomes {
            if let Disposition::Completed { cache_hit, .. } = &mut o.disposition {
                *cache_hit = false;
            }
        }
        c
    }
}

/// The timing section: everything the execution plane (worker count,
/// schedule seed) can influence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeTiming {
    /// Worker-pool size of the run.
    pub workers: u32,
    /// Tie-break seed of the run.
    pub schedule_seed: u64,
    /// When the last execution finished (simulated µs).
    pub makespan_us: u64,
    /// Median completed-query latency (arrival → execution end, sim µs).
    pub p50_latency_us: u64,
    /// 99th-percentile completed-query latency (sim µs).
    pub p99_latency_us: u64,
    /// Completed queries per simulated second.
    pub throughput_qps: f64,
    /// Busy µs accumulated per worker.
    pub worker_busy_us: Vec<u64>,
}

/// A full serve run's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Decision-plane section (canonical).
    pub answers: ServeAnswers,
    /// Execution-plane section (worker-dependent).
    pub timing: ServeTiming,
}

struct Queued {
    idx: usize,
    est: u64,
    entered_round: u64,
}

struct ExecItem {
    idx: usize,
    ready_us: u64,
    duration_us: u64,
}

/// Run the serving plane over `stream` against `world`, applying the
/// scripted `events` at their anchored stream positions. Consumes the
/// world (it mutates under events); clone the initial world first if you
/// need to replay prefixes afterwards.
///
/// # Panics
/// Panics on a zero quantum, zero workers, a zero round length, or an
/// unsorted stream.
pub fn serve(
    world: World,
    stream: &[QuerySpec],
    events: &[ScriptedEvent],
    cfg: &ServeConfig,
    rec: &Recorder,
) -> ServeReport {
    serve_inner(world, stream, events, cfg, rec, false)
}

fn serve_inner(
    mut world: World,
    stream: &[QuerySpec],
    events: &[ScriptedEvent],
    cfg: &ServeConfig,
    rec: &Recorder,
    plant_staleness: bool,
) -> ServeReport {
    assert!(cfg.quantum_bytes >= 1, "quantum must be positive");
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.round_us >= 1, "rounds must advance the clock");
    assert!(
        stream
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us),
        "stream must be sorted by arrival"
    );
    let tenants = stream
        .iter()
        .map(|q| q.tenant)
        .max()
        .map_or(1, |m| m as usize + 1);
    let sel_cfg = SelectionConfig::default();

    let mut queues: Vec<VecDeque<Queued>> = (0..tenants).map(|_| VecDeque::new()).collect();
    let mut queued_total = 0usize;
    let mut outcomes: Vec<Option<Disposition>> = vec![None; stream.len()];
    let mut exec: Vec<ExecItem> = Vec::new();

    let mut deficit = vec![0u64; tenants];
    let mut granted = vec![0u64; tenants];
    let mut served = vec![0u64; tenants];
    let mut forfeited = vec![0u64; tenants];
    let mut max_est = vec![0u64; tenants];
    let mut rounds_backlogged = vec![0u64; tenants];
    let mut busy_periods = vec![0u32; tenants];
    let mut admitted = vec![0u32; tenants];
    let mut rejected = vec![0u32; tenants];
    let mut shed = vec![0u32; tenants];

    let mut cache = PlanCache::new();
    if plant_staleness {
        cache.plant_staleness();
    }
    // Equation-6 estimates and per-plan execution prices are memoised
    // independently of the plan cache: they are deterministic functions of
    // (sub-dataset, epoch) and of the plan bytes respectively, so
    // recomputing them would only add noise to the cache-on/off
    // comparison.
    let mut est_memo: FastMap<(u64, EpochKey), u64> = FastMap::default();
    let mut exec_memo: FastMap<u64, (u64, usize)> = FastMap::default();

    let mut next_arrival = 0usize;
    let mut next_event = 0usize;
    let mut round: u64 = 0;

    while next_arrival < stream.len() || queued_total > 0 {
        let now = round * cfg.round_us;

        // 1. Arrivals up to this round's instant, with scripted events
        // firing immediately before their anchored arrival.
        while next_arrival < stream.len() && stream[next_arrival].arrival_us <= now {
            while next_event < events.len()
                && (events[next_event].at_query as usize) <= next_arrival
            {
                world.apply(&events[next_event].event);
                next_event += 1;
            }
            let q = &stream[next_arrival];
            let t = q.tenant as usize;
            if queued_total >= cfg.queue_cap {
                outcomes[next_arrival] = Some(Disposition::Rejected {
                    reason: RejectReason::QueueFull,
                });
                rejected[t] += 1;
                rec.scoped(QueryCtx::new(q.id).tenant(tenant_name(q.tenant)))
                    .add("serve_rejected_total", 1);
            } else {
                let key = world.epoch_key();
                let est = *est_memo
                    .entry((q.sub.0, key))
                    .or_insert_with(|| world.array().view(q.sub).estimated_total().max(1));
                max_est[t] = max_est[t].max(est);
                if queues[t].is_empty() {
                    busy_periods[t] += 1;
                }
                queues[t].push_back(Queued {
                    idx: next_arrival,
                    est,
                    entered_round: round,
                });
                queued_total += 1;
            }
            next_arrival += 1;
        }
        // Events anchored past the end of the stream fire once every
        // arrival is in.
        if next_arrival >= stream.len() {
            while next_event < events.len() {
                world.apply(&events[next_event].event);
                next_event += 1;
            }
        }
        rec.gauge("serve_queue_depth", Domain::Sim, now, queued_total as f64);

        // 2. Deficit round robin: grant each backlogged tenant a quantum,
        // admit from its queue head while the head fits the deficit.
        let mut batch: Vec<Queued> = Vec::new();
        for t in 0..tenants {
            if queues[t].is_empty() {
                // Backlog drained: whatever deficit is left is unused
                // grant — forfeit it. A tenant with nothing queued holds
                // no claim on future rounds.
                forfeited[t] += deficit[t];
                deficit[t] = 0;
                continue;
            }
            rounds_backlogged[t] += 1;
            deficit[t] += cfg.quantum_bytes;
            granted[t] += cfg.quantum_bytes;
            while let Some(head) = queues[t].front() {
                if head.est <= deficit[t] {
                    deficit[t] -= head.est;
                    served[t] += head.est;
                    batch.push(queues[t].pop_front().unwrap());
                    queued_total -= 1;
                } else {
                    break;
                }
            }
        }

        // 3. Load shedding: queue heads that have waited out their budget.
        for t in 0..tenants {
            while let Some(head) = queues[t].front() {
                if round >= head.entered_round + cfg.max_wait_rounds as u64 {
                    let waited = round - head.entered_round;
                    let idx = head.idx;
                    queues[t].pop_front();
                    queued_total -= 1;
                    outcomes[idx] = Some(Disposition::Shed {
                        waited_rounds: waited,
                    });
                    shed[t] += 1;
                    let q = &stream[idx];
                    rec.scoped(QueryCtx::new(q.id).tenant(tenant_name(q.tenant)))
                        .add("serve_shed_total", 1);
                } else {
                    break;
                }
            }
        }

        // 4. Plan the admitted batch through the cache, one batched
        // planner walk for all the misses.
        if !batch.is_empty() {
            let key = world.epoch_key();
            let mut subs: Vec<u64> = batch.iter().map(|b| stream[b.idx].sub.0).collect();
            subs.sort_unstable();
            subs.dedup();
            let mut plans: FastMap<u64, Assignment> = FastMap::default();
            let mut hit_subs: FastMap<u64, bool> = FastMap::default();
            let mut missing: Vec<datanet_dfs::SubDatasetId> = Vec::new();
            for &s in &subs {
                let id = datanet_dfs::SubDatasetId(s);
                if cfg.cache {
                    if let Some(plan) = cache.get(id, key) {
                        plans.insert(s, plan.clone());
                        hit_subs.insert(s, true);
                        continue;
                    }
                }
                missing.push(id);
            }
            if !missing.is_empty() {
                for (id, plan) in missing.iter().zip(world.plan_batch(&missing, cfg.maxflow)) {
                    if cfg.cache {
                        cache.insert(*id, key, plan.clone());
                    }
                    plans.insert(id.0, plan);
                    hit_subs.insert(id.0, false);
                }
            }
            for item in batch {
                let q = &stream[item.idx];
                let plan = &plans[&q.sub.0];
                let digest = plan_digest(plan);
                let (duration_us, blocks) = *exec_memo.entry(digest).or_insert_with(|| {
                    let truth = world.dfs().subdataset_distribution(q.sub);
                    let makespan = planned_makespan(world.dfs(), &truth, plan, &sel_cfg);
                    (makespan.as_micros().max(1), plan.assigned_blocks())
                });
                outcomes[item.idx] = Some(Disposition::Completed {
                    sub: q.sub.0,
                    epoch: key,
                    cache_hit: hit_subs[&q.sub.0],
                    plan_digest: digest,
                    est_bytes: item.est,
                    assigned_blocks: blocks,
                    round,
                });
                admitted[q.tenant as usize] += 1;
                rec.scoped(QueryCtx::new(q.id).tenant(tenant_name(q.tenant)))
                    .add("serve_admitted_total", 1);
                exec.push(ExecItem {
                    idx: item.idx,
                    ready_us: now,
                    duration_us,
                });
            }
        }
        round += 1;
    }

    // Final settlement: the run ends with every queue empty, so residual
    // deficits are unused grant — forfeit them. After this,
    // `served + forfeited == granted` holds exactly for every tenant.
    for t in 0..tenants {
        forfeited[t] += deficit[t];
        deficit[t] = 0;
    }

    rec.add("serve_cache_hits_total", cache.hits());
    rec.add("serve_cache_misses_total", cache.misses());

    // 5. Execution plane: drain admitted queries in admission order over
    // the worker pool. Ties on the earliest-free worker break by the
    // schedule seed — by construction this can only relabel *which*
    // worker runs a query at the same instant, so answers and even
    // latencies are independent of the seed.
    let workers = cfg.workers as usize;
    let mut rng = StdRng::seed_from_u64(cfg.schedule_seed ^ 0x5E4E_57EA_0000_0002);
    let mut free = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut makespan_us = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(exec.len());
    for item in &exec {
        let min_free = *free.iter().min().unwrap();
        let ties: Vec<usize> = (0..workers).filter(|&w| free[w] == min_free).collect();
        let w = ties[rng.gen_range(0..ties.len())];
        let q = &stream[item.idx];
        let start = item.ready_us.max(free[w]);
        let end = start + item.duration_us;
        free[w] = end;
        busy[w] += item.duration_us;
        makespan_us = makespan_us.max(end);
        let latency = end - q.arrival_us;
        latencies.push(latency);
        let scoped = rec.scoped(QueryCtx::new(q.id).tenant(tenant_name(q.tenant)));
        let span = scoped.begin(
            Category::Serve,
            "execute",
            Domain::Sim,
            start,
            SpanCtx::default().sub(q.sub.0).node(w),
        );
        scoped.end(span, end);
        scoped.observe_at("serve_latency_us", end, latency);
    }

    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let timing = ServeTiming {
        workers: cfg.workers,
        schedule_seed: cfg.schedule_seed,
        makespan_us,
        p50_latency_us: percentile(&sorted, 50),
        p99_latency_us: percentile(&sorted, 99),
        throughput_qps: if makespan_us == 0 {
            0.0
        } else {
            exec.len() as f64 / (makespan_us as f64 / 1e6)
        },
        worker_busy_us: busy,
    };

    let answers = ServeAnswers {
        outcomes: outcomes
            .into_iter()
            .enumerate()
            .map(|(i, d)| QueryOutcome {
                id: stream[i].id,
                tenant: stream[i].tenant,
                disposition: d.expect("every query gets exactly one disposition"),
            })
            .collect(),
        tenants: (0..tenants)
            .map(|t| TenantStats {
                tenant: t as u32,
                granted_bytes: granted[t],
                served_bytes: served[t],
                forfeited_bytes: forfeited[t],
                max_est_bytes: max_est[t],
                rounds_backlogged: rounds_backlogged[t],
                busy_periods: busy_periods[t],
                admitted: admitted[t],
                rejected: rejected[t],
                shed: shed[t],
            })
            .collect(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        quantum_bytes: cfg.quantum_bytes,
    };
    ServeReport { answers, timing }
}

/// `serve` with the cache-staleness fault planted in the plan cache (the
/// sim-check harness's self-test). Never call outside tests.
#[doc(hidden)]
pub fn serve_with_planted_staleness(
    world: World,
    stream: &[QuerySpec],
    events: &[ScriptedEvent],
    cfg: &ServeConfig,
    rec: &Recorder,
) -> ServeReport {
    serve_inner(world, stream, events, cfg, rec, true)
}

fn tenant_name(t: u32) -> String {
    format!("t{t}")
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{generate_stream, StreamConfig, TenantMix};
    use crate::world::ServeEvent;
    use datanet::Separation;
    use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};

    fn small_world(seed: u64) -> World {
        let records: Vec<Record> = (0..120)
            .map(|i| Record::new(SubDatasetId(i % 5), i, 280, seed ^ i))
            .collect();
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 2_000,
                replication: 2,
                topology: Topology::single_rack(4),
                seed,
            },
            records,
        );
        World::new(dfs, 5, Separation::Alpha(0.4), seed)
    }

    fn small_stream(mix: TenantMix, seed: u64) -> Vec<QuerySpec> {
        generate_stream(&StreamConfig {
            tenants: 3,
            queries: 40,
            gap_us: 500,
            subdatasets: 5,
            mix,
            seed,
        })
    }

    fn run(cfg: &ServeConfig, mix: TenantMix, seed: u64) -> ServeReport {
        serve(
            small_world(seed),
            &small_stream(mix, seed),
            &[],
            cfg,
            &Recorder::off(),
        )
    }

    #[test]
    fn every_query_gets_exactly_one_disposition_and_counts_balance() {
        for mix in TenantMix::ALL {
            let report = run(&ServeConfig::default(), mix, 3);
            let a = &report.answers;
            assert_eq!(a.outcomes.len(), 40);
            for (i, o) in a.outcomes.iter().enumerate() {
                assert_eq!(o.id, i as u64, "outcomes stay in stream order");
            }
            for ts in &a.tenants {
                let of_tenant = a.outcomes.iter().filter(|o| o.tenant == ts.tenant);
                let (mut c, mut r, mut s) = (0u32, 0u32, 0u32);
                for o in of_tenant {
                    match o.disposition {
                        Disposition::Completed { .. } => c += 1,
                        Disposition::Rejected { .. } => r += 1,
                        Disposition::Shed { .. } => s += 1,
                    }
                }
                assert_eq!((c, r, s), (ts.admitted, ts.rejected, ts.shed));
            }
        }
    }

    #[test]
    fn drr_invariants_hold_for_every_tenant() {
        for mix in TenantMix::ALL {
            // A tight quantum forces multi-round backlogs so the
            // invariants are exercised, not vacuous.
            let cfg = ServeConfig {
                quantum_bytes: 4 * 1024,
                queue_cap: 8,
                max_wait_rounds: 4,
                ..ServeConfig::default()
            };
            let report = run(&cfg, mix, 5);
            for ts in &report.answers.tenants {
                assert_eq!(
                    ts.granted_bytes,
                    ts.rounds_backlogged * cfg.quantum_bytes,
                    "grant accrues exactly one quantum per backlogged round"
                );
                assert_eq!(
                    ts.served_bytes + ts.forfeited_bytes,
                    ts.granted_bytes,
                    "every granted byte is spent or returned"
                );
                assert!(
                    ts.forfeited_bytes
                        <= ts.busy_periods as u64 * (cfg.quantum_bytes + ts.max_est_bytes),
                    "forfeit is bounded per backlog episode"
                );
            }
        }
    }

    #[test]
    fn answers_are_identical_across_worker_counts_and_schedule_seeds() {
        let base = run(&ServeConfig::default(), TenantMix::Skewed, 7);
        for (workers, schedule_seed) in [(1, 0), (4, 9), (16, 1234)] {
            let other = run(
                &ServeConfig {
                    workers,
                    schedule_seed,
                    ..ServeConfig::default()
                },
                TenantMix::Skewed,
                7,
            );
            assert_eq!(
                base.answers.canonical_json(),
                other.answers.canonical_json(),
                "decision plane must not see the execution plane"
            );
        }
    }

    #[test]
    fn cache_on_and_cache_off_agree_after_normalisation() {
        let events = [
            ScriptedEvent {
                at_query: 12,
                event: ServeEvent::IngestCommit { blocks: 2 },
            },
            ScriptedEvent {
                at_query: 25,
                event: ServeEvent::NodeLoss { node: 1 },
            },
        ];
        for mix in TenantMix::ALL {
            let on = serve(
                small_world(11),
                &small_stream(mix, 11),
                &events,
                &ServeConfig::default(),
                &Recorder::off(),
            );
            let off = serve(
                small_world(11),
                &small_stream(mix, 11),
                &events,
                &ServeConfig {
                    cache: false,
                    ..ServeConfig::default()
                },
                &Recorder::off(),
            );
            assert!(on.answers.cache_hits > 0, "the cache should be exercised");
            assert_eq!(off.answers.cache_hits, 0);
            assert_eq!(
                on.answers.normalized(),
                off.answers.normalized(),
                "a coherent cache changes where plans come from, never what they are"
            );
        }
    }

    #[test]
    fn a_full_queue_rejects_and_stale_waiters_shed() {
        let cfg = ServeConfig {
            queue_cap: 4,
            quantum_bytes: 1, // nearly nothing admits per round
            max_wait_rounds: 2,
            ..ServeConfig::default()
        };
        let report = run(&cfg, TenantMix::Adversarial, 13);
        let a = &report.answers;
        let rejected = a
            .outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Rejected {
                        reason: RejectReason::QueueFull
                    }
                )
            })
            .count();
        let shed = a
            .outcomes
            .iter()
            .filter(|o| matches!(o.disposition, Disposition::Shed { .. }))
            .count();
        assert!(rejected > 0, "the bounded queue must reject under flood");
        assert!(shed > 0, "waiters past the budget must shed");
        for o in &a.outcomes {
            if let Disposition::Shed { waited_rounds } = o.disposition {
                assert!(waited_rounds >= cfg.max_wait_rounds as u64);
            }
        }
    }

    #[test]
    fn planted_staleness_serves_an_old_plan_across_an_ingest_commit() {
        let events = [ScriptedEvent {
            at_query: 10,
            event: ServeEvent::IngestCommit { blocks: 3 },
        }];
        let cfg = ServeConfig::default();
        let stream = small_stream(TenantMix::Adversarial, 17);
        let clean = serve(small_world(17), &stream, &events, &cfg, &Recorder::off());
        let buggy =
            serve_with_planted_staleness(small_world(17), &stream, &events, &cfg, &Recorder::off());
        // Find a query completed after the commit in both runs: the buggy
        // run must hand back the pre-commit digest.
        let mut diverged = false;
        for (c, b) in clean.answers.outcomes.iter().zip(&buggy.answers.outcomes) {
            if let (
                Disposition::Completed {
                    epoch: ce,
                    plan_digest: cd,
                    ..
                },
                Disposition::Completed {
                    epoch: be,
                    plan_digest: bd,
                    ..
                },
            ) = (&c.disposition, &b.disposition)
            {
                if ce.ingest > 0 && be.ingest > 0 && cd != bd {
                    diverged = true;
                }
            }
        }
        assert!(
            diverged,
            "the planted fault must observably serve a stale plan"
        );
    }

    #[test]
    fn timing_varies_with_workers_while_answers_do_not() {
        let one = run(
            &ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            TenantMix::Uniform,
            19,
        );
        let four = run(
            &ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
            TenantMix::Uniform,
            19,
        );
        assert_eq!(one.answers, four.answers);
        assert_eq!(one.timing.worker_busy_us.len(), 1);
        assert_eq!(four.timing.worker_busy_us.len(), 4);
        assert!(
            four.timing.makespan_us <= one.timing.makespan_us,
            "more workers never lengthen the schedule"
        );
        assert!(one.timing.throughput_qps > 0.0);
    }
}
