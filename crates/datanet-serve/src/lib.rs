//! Multi-tenant serving plane for sub-dataset analysis.
//!
//! The paper positions DataNet as infrastructure for *interactive*
//! sub-dataset analysis under heavy multi-user traffic; this crate is the
//! long-lived frontend that multiplexes a stream of tenant queries over
//! one shared ElasticMap array and planner:
//!
//! * [`generate_stream`] expands a seed into a deterministic multi-tenant
//!   query stream ([`TenantMix`] controls who floods whom);
//! * [`World`] holds the DFS/metadata/liveness state and evolves only
//!   through scripted [`ServeEvent`]s, each bumping a mutation counter
//!   snapshotted by `EpochKey`;
//! * [`serve`] runs admission control (bounded queue + typed rejections +
//!   load shedding), deficit-round-robin fair-share quotas over
//!   Equation-6 byte estimates, an epoch-keyed plan cache, and a seeded
//!   worker pool — and returns a [`ServeReport`] split into a canonical
//!   [`ServeAnswers`] section (independent of worker count and
//!   interleaving, by construction) and a worker-dependent
//!   [`ServeTiming`] section.
//!
//! The crate ships with its test rig: `datanet-check` draws a `ServePlan`
//! axis per seed and runs serve oracles (conservation, fairness,
//! cache-coherence, interleaving determinism) over these entry points,
//! with a planted cache-staleness bug behind a `#[doc(hidden)]` hook.

mod server;
mod stream;
mod world;

pub use server::{
    serve, Disposition, QueryOutcome, RejectReason, ServeAnswers, ServeConfig, ServeReport,
    ServeTiming, TenantStats,
};
pub use stream::{generate_stream, QuerySpec, StreamConfig, TenantMix};
pub use world::{plan_digest, ScriptedEvent, ServeEvent, World};

#[doc(hidden)]
pub use server::serve_with_planted_staleness;
