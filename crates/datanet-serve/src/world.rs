//! The mutable world a serve run executes against, and the scripted
//! events that move it.
//!
//! A [`World`] bundles the DFS, its ElasticMap array, the node-liveness
//! mask and the cluster's membership epoch. It evolves **only** through
//! [`World::apply`], and each evolution step is a pure function of the
//! initial state and the event — so any observer (the serve oracles in
//! `datanet-check`) can rebuild the exact world at any epoch by replaying
//! an event prefix against a clone of the initial DFS. That replayability
//! is what lets the cache-coherence oracle recompute a *fresh* plan at a
//! historical epoch and demand it be byte-identical to what the cache
//! served.

use datanet::{
    plan_balanced_batch, plan_maxflow_batch, Assignment, ElasticMapArray, EpochKey, Separation,
};
use datanet_cluster::SimCluster;
use datanet_dfs::{BlockId, Dfs, NodeId, Record, SubDatasetId};
use serde::{Deserialize, Serialize};
use std::hash::Hasher;

/// A scripted world mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeEvent {
    /// An ingest batch commits: `blocks` new blocks (records round-robined
    /// over every sub-dataset, so *every* sub-dataset's plan changes) are
    /// appended and the metadata array is rebuilt. Bumps the ingest epoch
    /// (and, via block registration, the NameNode epoch).
    IngestCommit {
        /// Blocks appended by this commit (≥ 1).
        blocks: u32,
    },
    /// Fail-stop loss of one node: the liveness mask drops it and the
    /// cluster membership epoch bumps. Ignored if the node is already
    /// down, out of range, or the last one alive.
    NodeLoss {
        /// Dying node index.
        node: u32,
    },
}

/// A [`ServeEvent`] anchored to a stream position: it applies immediately
/// before the arrival with stream index `at_query` is admitted (positions
/// past the end of the stream apply after the last arrival).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedEvent {
    /// Stream position the event fires before.
    pub at_query: u32,
    /// The mutation.
    pub event: ServeEvent,
}

/// The serving plane's view of the cluster: DFS + metadata array +
/// liveness, with the three mutation counters a [`EpochKey`] snapshots.
#[derive(Debug, Clone)]
pub struct World {
    dfs: Dfs,
    array: ElasticMapArray,
    alive: Vec<bool>,
    cluster: SimCluster,
    /// Sub-dataset id space (ingest round-robins new records over it).
    subdatasets: u64,
    policy: Separation,
    /// Seed for synthetic ingest-commit record content.
    ingest_seed: u64,
    ingest_epoch: u64,
}

impl World {
    /// Wrap a DFS. The metadata array is built up front; all nodes start
    /// alive; every epoch counter starts at its DFS-determined value.
    pub fn new(dfs: Dfs, subdatasets: u64, policy: Separation, ingest_seed: u64) -> Self {
        assert!(subdatasets >= 1, "need at least one sub-dataset");
        let nodes = dfs.config().topology.len();
        let array = ElasticMapArray::build_sequential(&dfs, &policy);
        Self {
            dfs,
            array,
            alive: vec![true; nodes],
            cluster: SimCluster::marmot(nodes),
            subdatasets,
            policy,
            ingest_seed,
            ingest_epoch: 0,
        }
    }

    /// The DFS as currently ingested.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The metadata array over the current DFS.
    pub fn array(&self) -> &ElasticMapArray {
        &self.array
    }

    /// Node-liveness mask.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Sub-dataset id space.
    pub fn subdatasets(&self) -> u64 {
        self.subdatasets
    }

    /// Snapshot of every mutation counter a plan depends on. Equal keys ⇒
    /// plan-equivalent worlds.
    pub fn epoch_key(&self) -> EpochKey {
        EpochKey::new(
            self.dfs.namenode().epoch(),
            self.ingest_epoch,
            self.cluster.epoch(),
        )
    }

    /// Apply one scripted event. Deterministic: the post state is a pure
    /// function of the pre state and the event.
    pub fn apply(&mut self, event: &ServeEvent) {
        match *event {
            ServeEvent::IngestCommit { blocks } => {
                let per_block = ((self.dfs.config().block_size / 250).max(1)) as usize;
                for _ in 0..blocks.max(1) {
                    let base = self.dfs.block_count() as u64;
                    let records: Vec<Record> = (0..per_block as u64)
                        .map(|i| {
                            // Round-robin over the whole id space: every
                            // sub-dataset gains bytes, so every cached
                            // plan is genuinely stale after the commit.
                            let s = SubDatasetId((base + i) % self.subdatasets);
                            Record::new(
                                s,
                                base * 1_000 + i,
                                250,
                                self.ingest_seed ^ (base << 16) ^ i,
                            )
                        })
                        .collect();
                    self.dfs.append_block(records);
                }
                self.array = ElasticMapArray::build_sequential(&self.dfs, &self.policy);
                self.ingest_epoch += 1;
            }
            ServeEvent::NodeLoss { node } => {
                let n = node as usize;
                let survivors = self.alive.iter().filter(|&&a| a).count();
                if n < self.alive.len() && self.alive[n] && survivors > 1 {
                    self.alive[n] = false;
                    self.cluster.set_down(n);
                }
            }
        }
    }

    /// Fresh plans for `subs` at the current epoch: the batched planner
    /// walk ([`plan_balanced_batch`] / [`plan_maxflow_batch`]) followed by
    /// the deterministic dead-node patch. This **is** the definition of
    /// "the plan at this epoch" — the serve oracles call it to recompute
    /// what the cache should have served.
    pub fn plan_batch(&self, subs: &[SubDatasetId], maxflow: bool) -> Vec<Assignment> {
        let plans = if maxflow {
            plan_maxflow_batch(&self.dfs, &self.array, subs)
        } else {
            plan_balanced_batch(&self.dfs, &self.array, subs)
        };
        subs.iter()
            .zip(plans)
            .map(|(&s, p)| self.patch_dead(s, p))
            .collect()
    }

    /// Re-home every task the plan put on a dead node: in block order, each
    /// orphan goes to the currently least-loaded alive node (lowest id on
    /// ties). A no-op while every node is alive.
    fn patch_dead(&self, sub: SubDatasetId, plan: Assignment) -> Assignment {
        if self.alive.iter().all(|&a| a) {
            return plan;
        }
        let view = self.array.view(sub);
        let nn = self.dfs.namenode();
        let n = plan.node_count();
        let mut patched = Assignment::new(n);
        let mut orphans: Vec<BlockId> = Vec::new();
        for i in 0..n {
            let node = NodeId(i as u32);
            if self.alive[i] {
                for &b in plan.tasks_of(node) {
                    patched.assign(node, b, view.weight(b), nn.is_local(b, node));
                }
            } else {
                orphans.extend_from_slice(plan.tasks_of(node));
            }
        }
        for b in orphans {
            let target = (0..n)
                .filter(|&i| self.alive[i])
                .min_by_key(|&i| (patched.workloads()[i], i))
                .expect("at least one alive node");
            let node = NodeId(target as u32);
            patched.assign(node, b, view.weight(b), nn.is_local(b, node));
        }
        patched
    }
}

/// Stable 64-bit digest of a plan's full serialised form. Two plans share
/// a digest iff their byte-level wire representations match — the unit of
/// the cache-coherence oracle's "byte-identical" claim.
pub fn plan_digest(plan: &Assignment) -> u64 {
    let json = serde_json::to_string(plan).expect("plans always serialise");
    let mut h = datanet::FxHasher64::default();
    h.write(json.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datanet_dfs::{DfsConfig, Topology};

    fn tiny_world() -> World {
        let records: Vec<Record> = (0..60)
            .map(|i| Record::new(SubDatasetId(i % 4), i, 300, i))
            .collect();
        let dfs = Dfs::write_random(
            DfsConfig {
                block_size: 2_000,
                replication: 2,
                topology: Topology::single_rack(4),
                seed: 99,
            },
            records,
        );
        World::new(dfs, 4, Separation::Alpha(0.4), 7)
    }

    #[test]
    fn ingest_commit_moves_every_epoch_source_it_touches() {
        let mut w = tiny_world();
        let before = w.epoch_key();
        let blocks = w.dfs().block_count();
        w.apply(&ServeEvent::IngestCommit { blocks: 2 });
        let after = w.epoch_key();
        assert_eq!(w.dfs().block_count(), blocks + 2);
        assert_eq!(after.ingest, before.ingest + 1);
        assert!(after.namenode > before.namenode, "appends register blocks");
        assert_eq!(after.cluster, before.cluster);
    }

    #[test]
    fn node_loss_bumps_cluster_epoch_once_and_ignores_repeats() {
        let mut w = tiny_world();
        let before = w.epoch_key();
        w.apply(&ServeEvent::NodeLoss { node: 2 });
        assert_eq!(w.epoch_key().cluster, before.cluster + 1);
        assert!(!w.alive()[2]);
        // Repeats and out-of-range nodes change nothing.
        w.apply(&ServeEvent::NodeLoss { node: 2 });
        w.apply(&ServeEvent::NodeLoss { node: 99 });
        assert_eq!(w.epoch_key().cluster, before.cluster + 1);
    }

    #[test]
    fn node_loss_never_kills_the_last_node() {
        let mut w = tiny_world();
        for n in 0..4 {
            w.apply(&ServeEvent::NodeLoss { node: n });
        }
        assert_eq!(w.alive().iter().filter(|&&a| a).count(), 1);
    }

    #[test]
    fn replayed_event_prefixes_reproduce_the_world_exactly() {
        let events = [
            ServeEvent::IngestCommit { blocks: 1 },
            ServeEvent::NodeLoss { node: 1 },
            ServeEvent::IngestCommit { blocks: 2 },
        ];
        let mut live = tiny_world();
        for (i, ev) in events.iter().enumerate() {
            live.apply(ev);
            // Rebuild from scratch with the same prefix: identical plans
            // and identical epoch key.
            let mut replay = tiny_world();
            for e in &events[..=i] {
                replay.apply(e);
            }
            assert_eq!(replay.epoch_key(), live.epoch_key());
            let subs = [SubDatasetId(0), SubDatasetId(3)];
            let a = live.plan_batch(&subs, false);
            let b = replay.plan_batch(&subs, false);
            assert_eq!(a, b, "replayed world must plan identically");
        }
    }

    #[test]
    fn dead_node_patch_reassigns_all_orphans_deterministically() {
        let mut w = tiny_world();
        let sub = SubDatasetId(0);
        let before = &w.plan_batch(&[sub], false)[0];
        let total = before.assigned_blocks();
        w.apply(&ServeEvent::NodeLoss { node: 1 });
        let after = &w.plan_batch(&[sub], false)[0];
        assert_eq!(after.assigned_blocks(), total, "no block is dropped");
        assert!(
            after.tasks_of(NodeId(1)).is_empty(),
            "nothing stays on the dead node"
        );
        assert_eq!(
            after,
            &w.plan_batch(&[sub], false)[0],
            "patching is deterministic"
        );
    }

    #[test]
    fn plan_digest_tracks_wire_identity() {
        let mut w = tiny_world();
        let a = w.plan_batch(&[SubDatasetId(0)], false).remove(0);
        let b = w.plan_batch(&[SubDatasetId(0)], false).remove(0);
        assert_eq!(plan_digest(&a), plan_digest(&b));
        // An ingest commit grows the sub-dataset, so the fresh plan (and
        // its digest) must move — this is what makes staleness observable.
        w.apply(&ServeEvent::IngestCommit { blocks: 2 });
        let c = w.plan_batch(&[SubDatasetId(0)], false).remove(0);
        assert_ne!(
            plan_digest(&a),
            plan_digest(&c),
            "distinct plans, distinct digests"
        );
    }

    #[test]
    fn maxflow_batch_also_plans_and_patches() {
        let mut w = tiny_world();
        w.apply(&ServeEvent::NodeLoss { node: 3 });
        let plan = &w.plan_batch(&[SubDatasetId(0)], true)[0];
        assert!(plan.tasks_of(NodeId(3)).is_empty());
        assert!(plan.assigned_blocks() > 0);
    }
}
