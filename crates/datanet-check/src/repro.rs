//! Self-contained repro files.
//!
//! A [`Repro`] embeds the fully-expanded (usually shrunk) [`Scenario`]
//! plus the planted-bug options and the violations observed, so a
//! failure found on one machine replays anywhere with
//! `datanet check --repro FILE` — no seed stream, corpus or generator
//! version needed to reproduce it.

use crate::harness::{check_scenario_with, CheckOptions, CheckOutcome, Violation};
use crate::scenario::Scenario;
use datanet_obs::FlightDump;
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::Path;

/// A serialised failing world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repro {
    /// The seed whose expansion (before shrinking) first failed.
    pub original_seed: u64,
    /// The (shrunk) scenario that still fails.
    pub scenario: Scenario,
    /// Planted-bug options the failure was observed under (all-default
    /// outside the harness's self-test).
    pub options: CheckOptions,
    /// The violations observed when the repro was written.
    pub violations: Vec<Violation>,
    /// Flight-recorder dump of the shrunk failing run ([`FlightDump`] as
    /// a JSON tree; `Null` when no ring was attached) — the last
    /// significant events before the violations, preserved alongside the
    /// world that produced them.
    pub flight: Value,
}

impl Repro {
    /// Write the repro as pretty JSON.
    ///
    /// # Errors
    /// Propagates file-system errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }

    /// Read a repro back.
    ///
    /// # Errors
    /// File-system errors, or a file that is not a valid repro.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Re-run the embedded scenario under the embedded options.
    pub fn replay(&self) -> CheckOutcome {
        check_scenario_with(&self.scenario, &self.options)
    }

    /// The embedded flight dump, if one was recorded.
    pub fn flight_dump(&self) -> Option<FlightDump> {
        FlightDump::from_value(&self.flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_roundtrips_through_disk() {
        let mut ring = datanet_obs::FlightRing::new(4);
        ring.push(datanet_obs::FlightEvent {
            seq: 0,
            kind: datanet_obs::FlightKind::OracleViolation,
            domain: datanet_obs::Domain::Wall,
            at_us: 42,
            node: None,
            query: None,
            tenant: None,
            detail: "greedy-conservation: credited 1 byte too many".into(),
        });
        let repro = Repro {
            original_seed: 9,
            scenario: Scenario::from_seed(9),
            options: CheckOptions {
                credit_skew: 1,
                ..CheckOptions::default()
            },
            violations: vec![Violation {
                oracle: "greedy-conservation".into(),
                detail: "credited 1 byte too many".into(),
            }],
            flight: ring.dump().to_value(),
        };
        let path = std::env::temp_dir().join(format!(
            "datanet-check-repro-test-{}.json",
            std::process::id()
        ));
        repro.save(&path).unwrap();
        let back = Repro::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, repro);
        let dump = back.flight_dump().expect("flight dump embedded");
        assert_eq!(dump.events.len(), 1);
        assert!(dump.events[0].detail.contains("greedy-conservation"));
    }
}
