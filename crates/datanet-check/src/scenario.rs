//! Seed → world expansion.
//!
//! A [`Scenario`] is the fully-expanded description of one simulated
//! world: dataset shape, cluster size, fault schedule, metadata
//! corruption and detection mode. It is a plain serialisable value —
//! the shrinker mutates it field by field, and a repro file embeds it
//! verbatim so a failure replays without the original seed stream.
//!
//! [`Scenario::from_seed`] is the only place randomness enters the
//! harness; everything downstream (dataset bytes, placement, fault
//! times) derives deterministically from the expanded fields.

use datanet_analytics::{AggJob, PipelineSpec, StageOp};
use datanet_cluster::{DetectorConfig, FaultPlan, SimTime};
use datanet_dfs::{Dfs, DfsConfig, Record, SubDatasetId, Topology};
use datanet_mapreduce::FaultConfig;
use datanet_stats::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A scripted fail-stop crash of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Crashing node (never 0 — the namenode host stays up).
    pub node: usize,
    /// Crash instant, microseconds on the simulated clock.
    pub at_us: u64,
}

/// A transient slow-node window (degraded disk/CPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowEvent {
    pub node: usize,
    pub from_us: u64,
    pub until_us: u64,
    /// Task-duration stretch factor (≥ 1).
    pub factor: f64,
}

/// A permanent NIC degradation on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicEvent {
    pub node: usize,
    /// Remaining fraction of NIC bandwidth, in `(0, 1]`.
    pub fraction: f64,
}

/// Which metadata files get corrupted on disk before the degraded runs.
///
/// Corruption hits every replica directory, so replica failover cannot
/// mask it — that is the point: it forces the store down the degradation
/// ladder (shard lost → summary rung 2; summary also lost → rung 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Corruption {
    /// Metadata untouched: the degraded view must stay rung 1 everywhere.
    None,
    /// Every `stride`-th shard file corrupted in all replicas → those
    /// shards fall back to their summary sidecars (rung 2).
    Shards { stride: usize },
    /// Every `stride`-th shard *and* its summary corrupted in all
    /// replicas → those blocks become unknown (rung 3).
    Total { stride: usize },
}

/// Streaming-ingest schedule: how the scenario's blocks arrive over the
/// simulated clock, how often the ingestor compacts, and where a
/// mid-commit crash (if any) hits the write plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestPlan {
    /// Compact after this many contiguous arrivals.
    pub compact_every: usize,
    /// Simulated microseconds between block arrivals.
    pub gap_us: u64,
    /// Crash during the n-th commit (1-based); `None` for a clean stream.
    pub crash_commit: Option<u64>,
    /// Raw draw selecting how many of the interrupted commit's plan writes
    /// land before the crash (the harness takes it modulo plan length + 1).
    pub crash_write: u64,
}

/// One extra pipeline stage between the leading filter and the trailing
/// output (PR 7's checkpointed-pipeline axis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PipeOp {
    /// Append sub-dataset `rank % subdatasets`.
    Append(u64),
    /// Semi-join against sub-dataset `rank % subdatasets`.
    Join(u64),
    /// Aggregate with job selector `% 4` (word count / moving average /
    /// histogram / top-k).
    Aggregate(u64),
}

/// Multi-stage pipeline schedule: the stage list plus a scripted
/// mid-checkpoint crash point for the resume-equivalence oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Stages between the leading `Filter(target)` and trailing `Output`.
    pub ops: Vec<PipeOp>,
    /// Crash during stage `raw % stage_count`'s checkpoint; `None` runs
    /// the pipeline uninterrupted only.
    pub crash_stage: Option<u64>,
    /// Raw draw selecting how many of the interrupted checkpoint's plan
    /// writes land (the harness takes it modulo plan length + 1).
    pub crash_write: u64,
}

/// Distribution-aware shuffle axis: how finely the shuffle planner
/// prices the key space, the heavy-key split threshold factor, and the
/// fragment-arrival permutation the split-merge oracle replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleAxis {
    /// Key ranges the planner prices (Equation 6 evaluated per range).
    pub key_ranges: usize,
    /// Heavy-key split threshold factor (≥ 1; 1 splits most eagerly).
    pub split_factor: f64,
    /// Seed for the fragment arrival permutation in the
    /// `split-merge-equivalence` oracle.
    pub permutation_seed: u64,
}

/// One scripted world mutation in the serving axis, in raw drawn form:
/// node indices and anchor positions are reduced modulo the live ranges
/// at use, so shrinking `nodes` or `queries` keeps the plan well-formed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServeEventPlan {
    /// An ingest batch commits `blocks` (reduced to `1..=4`) immediately
    /// before stream position `at_query`.
    Ingest { at_query: u32, blocks: u32 },
    /// Node `node % nodes` fail-stops immediately before stream position
    /// `at_query`.
    NodeLoss { at_query: u32, node: u32 },
}

/// Multi-tenant serving axis (PR 10): the query-stream shape, the
/// admission/quota knobs of the `datanet-serve` frontend, and the
/// scripted world mutations the epoch-keyed plan cache must track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePlan {
    /// Tenants issuing queries (≥ 1).
    pub tenants: u32,
    /// Queries in the stream (≥ 1).
    pub queries: u32,
    /// Simulated microseconds between arrivals (also the DRR round
    /// length).
    pub gap_us: u64,
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
    /// DRR quantum in KiB (≥ 1).
    pub quantum_kb: u64,
    /// Raw tenant-mix selector (`% 3` picks uniform / skewed /
    /// adversarial).
    pub mix: u64,
    /// Execution-pool workers (≥ 1; answers must not depend on it).
    pub workers: u32,
    /// Load-shedding budget in whole rounds.
    pub max_wait_rounds: u32,
    /// Worker tie-break seed (answers must not depend on it).
    pub schedule_seed: u64,
    /// Scripted world mutations, anchored to stream positions.
    pub events: Vec<ServeEventPlan>,
}

/// One fully-expanded simulated world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed for the dataset/placement RNG (not the scenario seed — the
    /// shrinker keeps this fixed while it shrinks the structure).
    pub seed: u64,
    /// Number of distinct sub-datasets (Zipf support).
    pub subdatasets: u64,
    /// Zipf popularity exponent for record→sub-dataset assignment.
    pub zipf_exponent: f64,
    /// Records written into the DFS.
    pub records: usize,
    /// Cluster size.
    pub nodes: u32,
    /// DFS replication factor (≤ nodes).
    pub replication: usize,
    /// DFS block size in bytes.
    pub block_size: u64,
    /// ElasticMap separation threshold α (Section III-B).
    pub alpha: f64,
    /// The sub-dataset under analysis (a popular Zipf rank, so the view
    /// is non-empty and stays non-empty while shrinking).
    pub target: u64,
    /// Blocks per metadata shard file.
    pub shard_blocks: usize,
    /// Scripted crashes (distinct nodes, never node 0).
    pub crashes: Vec<CrashEvent>,
    /// Transient slow windows.
    pub slow: Vec<SlowEvent>,
    /// NIC degradations.
    pub nic: Vec<NicEvent>,
    /// Metadata corruption pattern.
    pub corruption: Corruption,
    /// `true` → crashes are learned through the heartbeat failure
    /// detector; `false` → the PR 1 oracle notifies at the crash instant.
    pub detection: bool,
    /// Re-execution budget per block.
    pub max_retries: u32,
    /// Streaming-ingest arrival schedule and mid-commit crash point.
    pub ingest: IngestPlan,
    /// Multi-stage pipeline schedule and mid-checkpoint crash point.
    pub pipeline: PipelinePlan,
    /// Distribution-aware shuffle planning knobs.
    pub shuffle: ShuffleAxis,
    /// Multi-tenant serving-plane axis.
    pub serve: ServePlan,
}

impl Scenario {
    /// Expand `seed` into a world. Deterministic: same seed, same world.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_BEEF);
        let nodes = rng.gen_range(2u32..10);
        let subdatasets = rng.gen_range(4u64..18);
        let records = rng.gen_range(80usize..700);
        let replication = rng.gen_range(1usize..=3).min(nodes as usize);
        let zipf_exponent = rng.gen_range(0.8..1.6);
        let alpha = rng.gen_range(0.2..0.6);
        let target = rng.gen_range(0..subdatasets.min(4));
        let shard_blocks = rng.gen_range(2usize..16);

        // Crashes: distinct nodes, node 0 exempt so the cluster never
        // loses its namenode host and at least one node survives.
        let crash_count = rng.gen_range(0usize..=2).min(nodes as usize - 1);
        let mut pool: Vec<usize> = (1..nodes as usize).collect();
        let mut crashes = Vec::new();
        for _ in 0..crash_count {
            let i = rng.gen_range(0..pool.len());
            crashes.push(CrashEvent {
                node: pool.swap_remove(i),
                at_us: rng.gen_range(2_000u64..400_000),
            });
        }
        crashes.sort_by_key(|c| (c.at_us, c.node));

        let slow = if rng.gen_bool(0.35) {
            let node = rng.gen_range(0..nodes as usize);
            let from_us = rng.gen_range(0u64..200_000);
            vec![SlowEvent {
                node,
                from_us,
                until_us: from_us + rng.gen_range(10_000u64..300_000),
                factor: rng.gen_range(1.5..4.0),
            }]
        } else {
            Vec::new()
        };
        let nic = if rng.gen_bool(0.3) {
            vec![NicEvent {
                node: rng.gen_range(0..nodes as usize),
                fraction: rng.gen_range(0.3..0.9),
            }]
        } else {
            Vec::new()
        };

        let corruption = match rng.gen_range(0u32..5) {
            0..=2 => Corruption::None,
            3 => Corruption::Shards {
                stride: rng.gen_range(2usize..4),
            },
            _ => Corruption::Total {
                stride: rng.gen_range(2usize..4),
            },
        };

        // The two in-literal draws below predate the ingest axis; they are
        // pulled out in their original order so every new draw appends to
        // the END of the seed stream — existing seeds (the whole corpus)
        // expand to exactly the world they always did.
        let dataset_seed = rng.gen();
        let detection = rng.gen_bool(0.4);
        let ingest = IngestPlan {
            compact_every: rng.gen_range(1usize..6),
            gap_us: rng.gen_range(500u64..5_000),
            crash_commit: if rng.gen_bool(0.5) {
                Some(rng.gen_range(1u64..4))
            } else {
                None
            },
            crash_write: rng.gen(),
        };

        // Pipeline draws append after the ingest draws — again at the END
        // of the seed stream, so the whole corpus still expands to exactly
        // the world it always did (plus a pipeline axis).
        let pipeline = {
            let extra = rng.gen_range(1usize..4);
            let mut ops = Vec::with_capacity(extra);
            for _ in 0..extra {
                ops.push(match rng.gen_range(0u32..4) {
                    0 => PipeOp::Append(rng.gen_range(0..subdatasets)),
                    1 => PipeOp::Join(rng.gen_range(0..subdatasets)),
                    _ => PipeOp::Aggregate(rng.gen_range(0u64..4)),
                });
            }
            PipelinePlan {
                ops,
                crash_stage: if rng.gen_bool(0.6) {
                    Some(rng.gen_range(0u64..8))
                } else {
                    None
                },
                crash_write: rng.gen(),
            }
        };

        // Shuffle draws append after the pipeline draws — again at the
        // END of the seed stream, so the whole corpus still expands to
        // exactly the world it always did (plus a shuffle axis).
        let shuffle = ShuffleAxis {
            key_ranges: rng.gen_range(8usize..48),
            split_factor: rng.gen_range(1.0..1.6),
            permutation_seed: rng.gen(),
        };

        // Serving-plane draws append after the shuffle draws — again at
        // the END of the seed stream, so the whole corpus still expands to
        // exactly the world it always did (plus a serving axis).
        let serve = {
            let queries = rng.gen_range(8u32..40);
            let ingest_events = rng.gen_range(0usize..=2);
            let mut events = Vec::new();
            for _ in 0..ingest_events {
                events.push(ServeEventPlan::Ingest {
                    at_query: rng.gen_range(0..=queries),
                    blocks: rng.gen_range(1u32..=4),
                });
            }
            if rng.gen_bool(0.4) {
                events.push(ServeEventPlan::NodeLoss {
                    at_query: rng.gen_range(0..=queries),
                    node: rng.gen(),
                });
            }
            events.sort_by_key(|e| match *e {
                ServeEventPlan::Ingest { at_query, .. } => at_query,
                ServeEventPlan::NodeLoss { at_query, .. } => at_query,
            });
            ServePlan {
                tenants: rng.gen_range(1u32..=4),
                queries,
                gap_us: rng.gen_range(200u64..2_000),
                queue_cap: rng.gen_range(4usize..24),
                quantum_kb: rng.gen_range(1u64..48),
                mix: rng.gen(),
                workers: rng.gen_range(1u32..=4),
                max_wait_rounds: rng.gen_range(2u32..12),
                schedule_seed: rng.gen(),
                events,
            }
        };

        Self {
            seed: dataset_seed,
            subdatasets,
            zipf_exponent,
            records,
            nodes,
            replication,
            block_size: 2_000,
            alpha,
            target,
            shard_blocks,
            crashes,
            slow,
            nic,
            corruption,
            detection,
            max_retries: 3,
            ingest,
            pipeline,
            shuffle,
            serve,
        }
    }

    /// The scenario's pipeline spec: `Filter(target)`, then the drawn ops
    /// (sub-dataset ranks and job selectors reduced modulo the live
    /// ranges, so shrinking `subdatasets` keeps the spec well-formed),
    /// then an `Output`.
    pub fn pipeline_spec(&self) -> PipelineSpec {
        let mut seq = vec![StageOp::Filter(self.target)];
        for op in &self.pipeline.ops {
            seq.push(match op {
                PipeOp::Append(rank) => StageOp::Append(rank % self.subdatasets),
                PipeOp::Join(rank) => StageOp::Join(rank % self.subdatasets),
                PipeOp::Aggregate(job) => StageOp::Aggregate(match job % 4 {
                    0 => AggJob::WordCount,
                    1 => AggJob::MovingAverage(86_400),
                    2 => AggJob::Histogram,
                    _ => AggJob::TopK,
                }),
            });
        }
        seq.push(StageOp::Output("check".into()));
        PipelineSpec {
            name: "scenario-pipeline".into(),
            seq,
        }
    }

    /// Materialise the scenario's DFS: `records` Zipf-distributed records
    /// written with random placement. Deterministic in `self`.
    pub fn build_dfs(&self) -> Dfs {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.subdatasets as usize, self.zipf_exponent);
        let records: Vec<Record> = (0..self.records)
            .map(|i| {
                let s = SubDatasetId(zipf.sample(&mut rng) as u64 - 1);
                let size = rng.gen_range(50u32..500);
                Record::new(s, i as u64, size, i as u64)
            })
            .collect();
        Dfs::write_random(
            DfsConfig {
                block_size: self.block_size,
                replication: self.replication,
                topology: Topology::single_rack(self.nodes),
                seed: rng.gen(),
            },
            records,
        )
    }

    /// The scripted [`FaultPlan`] for this world.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none(self.nodes as usize);
        for c in &self.crashes {
            plan = plan.crash(c.node, SimTime::from_micros(c.at_us));
        }
        for s in &self.slow {
            plan = plan.slow(
                s.node,
                SimTime::from_micros(s.from_us),
                SimTime::from_micros(s.until_us),
                s.factor,
            );
        }
        for n in &self.nic {
            plan = plan.degrade_nic(n.node, n.fraction);
        }
        plan
    }

    /// The engine-facing [`FaultConfig`] (oracle or detector-driven).
    pub fn fault_config(&self) -> FaultConfig {
        let mut cfg = if self.detection {
            FaultConfig::with_detection(self.fault_plan(), DetectorConfig::default())
        } else {
            FaultConfig::new(self.fault_plan())
        };
        cfg.max_retries = self.max_retries;
        cfg
    }

    /// Whether any fault is scripted at all.
    pub fn has_faults(&self) -> bool {
        !self.crashes.is_empty() || !self.slow.is_empty() || !self.nic.is_empty()
    }

    /// The sub-dataset under analysis.
    pub fn target_id(&self) -> SubDatasetId {
        SubDatasetId(self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        for seed in 0..40 {
            assert_eq!(Scenario::from_seed(seed), Scenario::from_seed(seed));
        }
    }

    #[test]
    fn expanded_scenarios_are_well_formed() {
        for seed in 0..200 {
            let sc = Scenario::from_seed(seed);
            assert!(sc.nodes >= 2);
            assert!(sc.replication >= 1 && sc.replication <= sc.nodes as usize);
            assert!(sc.target < sc.subdatasets);
            assert!(sc.shard_blocks >= 1);
            for c in &sc.crashes {
                assert!(c.node != 0 && c.node < sc.nodes as usize);
            }
            let distinct: std::collections::HashSet<usize> =
                sc.crashes.iter().map(|c| c.node).collect();
            assert_eq!(distinct.len(), sc.crashes.len(), "crash nodes distinct");
            for s in &sc.slow {
                assert!(s.node < sc.nodes as usize && s.from_us < s.until_us && s.factor >= 1.0);
            }
            for n in &sc.nic {
                assert!(n.node < sc.nodes as usize && n.fraction > 0.0 && n.fraction <= 1.0);
            }
            assert!(sc.ingest.compact_every >= 1);
            assert!(sc.ingest.gap_us > 0);
            if let Some(c) = sc.ingest.crash_commit {
                assert!(c >= 1);
            }
            assert!(!sc.pipeline.ops.is_empty());
            assert!(sc.shuffle.key_ranges >= 2, "planner needs ≥ 2 key ranges");
            assert!(
                sc.shuffle.split_factor >= 1.0 && sc.shuffle.split_factor.is_finite(),
                "split factor must be a finite value ≥ 1"
            );
            assert!(sc.serve.tenants >= 1 && sc.serve.tenants <= 4);
            assert!(sc.serve.queries >= 1);
            assert!(sc.serve.gap_us > 0);
            assert!(sc.serve.queue_cap >= 1);
            assert!(sc.serve.quantum_kb >= 1);
            assert!(sc.serve.workers >= 1);
            assert!(sc.serve.max_wait_rounds >= 1);
            assert!(sc.serve.events.len() <= 3);
            assert!(
                sc.serve.events.windows(2).all(|w| {
                    let at = |e: &ServeEventPlan| match *e {
                        ServeEventPlan::Ingest { at_query, .. } => at_query,
                        ServeEventPlan::NodeLoss { at_query, .. } => at_query,
                    };
                    at(&w[0]) <= at(&w[1])
                }),
                "serve events stay sorted by anchor"
            );
            let spec = sc.pipeline_spec();
            assert!(matches!(spec.seq[0], StageOp::Filter(_)));
            assert!(spec.seq.len() == sc.pipeline.ops.len() + 2);
            for op in &spec.seq {
                if let Some(s) = op.subdataset() {
                    assert!(s.0 < sc.subdatasets, "pipeline names a live sub-dataset");
                }
            }
        }
    }

    #[test]
    fn dfs_build_is_deterministic_and_non_trivial() {
        let sc = Scenario::from_seed(7);
        let a = sc.build_dfs();
        let b = sc.build_dfs();
        assert_eq!(a.block_count(), b.block_count());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert!(a.block_count() > 1);
    }

    #[test]
    fn scenario_json_roundtrips() {
        let sc = Scenario::from_seed(3);
        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sc);
    }
}
