//! Deterministic simulation checking for the DataNet stack — the
//! FoundationDB idea applied to this workspace: a seed is a whole world.
//!
//! One `u64` seed expands into a [`Scenario`] (Zipf workload shape, block
//! count, cluster size, fault plan, shard-corruption pattern, detection
//! config). The harness drives the full pipeline for that world — scan →
//! [`datanet::ElasticMapArray`] → [`datanet::MetaStore`] round-trip → all
//! four schedulers → faulty/resilient/traced execution — and checks a
//! catalog of invariant oracles after every run:
//!
//! * **byte conservation** — `processed + lost == input` per
//!   `FaultStats`, for every scheduler, healthy or crashing;
//! * **Equation 6 envelope** — `|Z − T| ≤ Σ_{b∈τ₂} |truth_b − δ|` at
//!   every degradation rung, plus τ₁-is-ground-truth and
//!   no-false-negatives;
//! * **planner bounds** — greedy credit conservation, Ford–Fulkerson
//!   all-locality and the fractional-optimum lower bound, and the
//!   makespan ordering FF ≤ greedy ≤ locality (with a documented
//!   task-overhead tolerance);
//! * **traced twins** — every `*_traced` run is bit-identical to its
//!   untraced twin, and no observability span is left unclosed;
//! * **streaming ingest** — replaying the world's blocks as a stream
//!   through [`datanet::Ingestor`] yields a snapshot byte-identical to a
//!   from-scratch rebuild at every arrival prefix, including across a
//!   scripted mid-commit crash (resume from the last durable epoch), and
//!   every committed epoch time-travels to exactly the snapshot it froze;
//! * **distribution-aware shuffle** — the reduce-side partitioner's
//!   planned and received loads stay under the provable LPT bound
//!   (`reduce-skew`), every shuffled byte is conserved local-plus-network
//!   for the aware *and* hash plans (`shuffle-byte-conservation`), and
//!   heavy-key split fragments merge to the unrouted job's exact output
//!   under seeded arrival permutations, with a routed pipeline run
//!   fingerprint-identical to an unrouted one
//!   (`split-merge-equivalence`);
//! * **multi-tenant serving** — every stream query gets exactly one
//!   disposition with per-tenant counters to match
//!   (`serve-conservation`), the deficit-round-robin grant accounting
//!   balances exactly (`serve-fairness`), every completed query's served
//!   plan is byte-identical to a fresh plan at the epoch it claims —
//!   rebuilt by replaying the scripted event prefix
//!   (`serve-cache-coherence`) — and the canonical answers are identical
//!   across worker counts, schedule seeds and cache on/off
//!   (`serve-interleaving`).
//!
//! On a violation, [`shrink`] reduces the failing scenario to a minimal
//! repro (fewer records, nodes, fault events, less corruption) that still
//! trips the same oracle, and [`Repro`] serialises it to a self-contained
//! JSON file that `datanet check --repro FILE` replays.
//!
//! Everything is deterministic: same seed → same scenario → same verdict,
//! bit for bit. The fixed-seed corpus under `tests/corpus/` plus a fresh
//! batch run in CI (`sim-check` job).

pub mod harness;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub use harness::{
    check_scenario, check_scenario_instrumented, check_scenario_with, CheckOptions, CheckOutcome,
    Violation,
};
pub use repro::Repro;
pub use scenario::{
    Corruption, CrashEvent, IngestPlan, NicEvent, Scenario, ServeEventPlan, ServePlan, ShuffleAxis,
    SlowEvent,
};
pub use shrink::{shrink, Shrunk};

/// Expand `seed` into its scenario and check every invariant oracle.
pub fn check_seed(seed: u64) -> (Scenario, CheckOutcome) {
    let sc = Scenario::from_seed(seed);
    let out = check_scenario(&sc);
    (sc, out)
}
